// DVLC_HOT — zero-allocation sample path (see common/arena.hpp).
#include "phy/frame_codec.hpp"

#include <algorithm>

#include "common/arena.hpp"
#include "phy/interleaver.hpp"

namespace densevlc::phy {
namespace {

constexpr std::size_t kHeaderBytes = 9;

}  // namespace

void FrameCodec::encode_into(const MacFrame& frame,
                             std::vector<std::uint8_t>& out,
                             Scratch& scratch) const {
  serialize_frame_into(frame, out);
  if (depth_ <= 1 || out.size() <= kHeaderBytes) return;
  // Stage the clear body, then interleave it back into place.
  arena_resize(scratch.body, out.size() - kHeaderBytes);
  std::copy(out.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes),
            out.end(), scratch.body.begin());
  interleave_into(scratch.body, depth_,
                  std::span<std::uint8_t>{out}.subspan(kHeaderBytes));
}

std::vector<std::uint8_t> FrameCodec::encode(const MacFrame& frame) const {
  Scratch scratch;
  std::vector<std::uint8_t> out;
  encode_into(frame, out, scratch);
  return out;
}

bool FrameCodec::decode_into(std::span<const std::uint8_t> bytes,
                             ParsedFrame& out, Scratch& scratch) const {
  if (depth_ <= 1 || bytes.size() <= kHeaderBytes) {
    return parse_frame_into(bytes, out, scratch.frame);
  }
  arena_resize(scratch.wire, bytes.size());
  std::copy(bytes.begin(), bytes.end(), scratch.wire.begin());
  arena_resize(scratch.body, bytes.size() - kHeaderBytes);
  std::copy(bytes.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes),
            bytes.end(), scratch.body.begin());
  deinterleave_into(scratch.body, depth_,
                    std::span<std::uint8_t>{scratch.wire}.subspan(kHeaderBytes));
  return parse_frame_into(scratch.wire, out, scratch.frame);
}

std::optional<ParsedFrame> FrameCodec::decode(
    std::span<const std::uint8_t> bytes) const {
  Scratch scratch;
  ParsedFrame out;
  if (!decode_into(bytes, out, scratch)) return std::nullopt;
  return out;
}

std::size_t FrameCodec::matched_depth(std::size_t payload_bytes) {
  const std::size_t blocks =
      (payload_bytes + kRsBlockData - 1) / kRsBlockData;
  return blocks <= 1 ? 1 : blocks;
}

}  // namespace densevlc::phy
