// DenseVLC frame format (paper Table 3).
//
// On-air layout produced by a transmitter:
//
//   [pilot: 32 chips] [TX id: 1 byte]          -- only from the leading TX,
//                                                  consumed by peer TXs for
//                                                  NLOS synchronization
//   [preamble: 32 chips] [SFD: 1 B] [Length: 2 B] [Dst: 2 B] [Src: 2 B]
//   [Protocol: 2 B] [Payload: x B] [Reed-Solomon: ceil(x/200) * 16 B]
//
// Pilot and preamble are fixed chip patterns (not Manchester-coded data);
// everything from SFD onward is Manchester-coded bytes. The Ethernet
// encapsulation from controller to TXs prepends an 8-byte TX-ID mask
// selecting which transmitters must radiate the frame (Sec. 7.2).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "phy/manchester.hpp"
#include "phy/reed_solomon.hpp"

namespace densevlc::phy {

/// Start-of-frame delimiter byte following the preamble.
inline constexpr std::uint8_t kSfd = 0xA7;

/// Number of chips in the synchronization pilot and in the preamble.
inline constexpr std::size_t kPilotChips = 32;
inline constexpr std::size_t kPreambleChips = 32;

/// Payload bytes covered by each 16-parity-byte Reed-Solomon block.
inline constexpr std::size_t kRsBlockData = 200;
inline constexpr std::size_t kRsBlockParity = 16;

/// Maximum payload accepted by the serializer (fits common MTUs).
inline constexpr std::size_t kMaxPayload = 1500;

/// Protocol field values used by the MAC.
enum class Protocol : std::uint16_t {
  kData = 0x0001,           ///< application payload downlink
  kChannelProbe = 0x0002,   ///< controller pilot for channel measurement
  kChannelReport = 0x0003,  ///< RX -> controller link-quality report
  kAck = 0x0004,            ///< RX -> controller MAC acknowledgement
};

/// The MAC frame carried between SFD and RS parity.
struct MacFrame {
  std::uint16_t dst = 0;
  std::uint16_t src = 0;
  std::uint16_t protocol = static_cast<std::uint16_t>(Protocol::kData);
  std::vector<std::uint8_t> payload;

  bool operator==(const MacFrame&) const = default;
};

/// The fixed pilot chip pattern (a 13-chip Barker code extended to 32
/// chips), chosen for a sharp correlation peak under the oversampled NLOS
/// detection of Sec. 6.2.
std::span<const Chip> pilot_pattern();

/// The fixed preamble chip pattern used for frame alignment at data RXs.
std::span<const Chip> preamble_pattern();

/// Serialized byte count for a given payload size: header (SFD + length +
/// dst + src + protocol = 9 bytes) + payload + RS parity.
std::size_t serialized_frame_bytes(std::size_t payload_bytes);

/// The shared RS(.., 16-parity) codec instance the frame layer encodes
/// and decodes blocks with (exposed for the batch codec in frame_batch).
const ReedSolomon& frame_rs_codec();

/// Serializes SFD..parity. Throws std::invalid_argument when the payload
/// exceeds kMaxPayload.
std::vector<std::uint8_t> serialize_frame(const MacFrame& frame);

/// Result of parsing a received byte stream back into a frame.
struct ParsedFrame {
  MacFrame frame;
  std::size_t corrected_bytes = 0;  ///< RS corrections applied
};

/// Parses bytes produced by serialize_frame (possibly corrupted). Returns
/// nullopt when the SFD is wrong, the length field is implausible, or any
/// RS block fails to decode.
[[nodiscard]] std::optional<ParsedFrame> parse_frame(std::span<const std::uint8_t> bytes);

/// Full on-air chip sequence for a frame: preamble chips followed by the
/// Manchester coding of the serialized bytes. (The pilot is prepended
/// separately by the leading TX only.)
std::vector<Chip> frame_to_chips(const MacFrame& frame);

// --- Zero-allocation overloads (see common/arena.hpp) -------------------

/// Reusable workspace for parse_frame_into: codeword staging plus the
/// Reed-Solomon decoder buffers. Keep one per receive chain.
struct FrameScratch {
  std::vector<std::uint8_t> codeword;
  RsDecodeResult block;
  RsScratch rs;
};

/// serialize_frame into a reused buffer. RS parity is computed straight
/// into the output tail (no staging codeword). Throws like
/// serialize_frame on over-long payloads.
void serialize_frame_into(const MacFrame& frame,
                          std::vector<std::uint8_t>& out);

/// parse_frame into a reused result; false replaces nullopt. On failure
/// `out` is left partially filled and must not be read.
[[nodiscard]] bool parse_frame_into(std::span<const std::uint8_t> bytes,
                                    ParsedFrame& out, FrameScratch& scratch);

/// frame_to_chips into a reused chip buffer; `wire_scratch` holds the
/// serialized bytes between calls (the byte-at-a-time Manchester LUT
/// encodes them straight into `out`).
void frame_to_chips_into(const MacFrame& frame, std::vector<Chip>& out,
                         std::vector<std::uint8_t>& wire_scratch);

/// Controller -> TX Ethernet encapsulation (Sec. 7.2): 64-bit mask of TX
/// ids that must transmit, the appointed leading TX, and the MAC frame.
struct ControllerFrame {
  std::uint64_t tx_mask = 0;      ///< bit i set => TX i transmits
  std::uint8_t leading_tx = 0;    ///< TX appointed to emit the pilot
  MacFrame frame;

  bool operator==(const ControllerFrame&) const = default;

  /// True if TX `id` (0-based) is selected.
  bool selects(std::size_t id) const {
    return id < 64 && ((tx_mask >> id) & 1) != 0;
  }
};

/// Serializes / parses the Ethernet payload (mask + leading + frame bytes).
std::vector<std::uint8_t> serialize_controller_frame(const ControllerFrame& cf);
[[nodiscard]] std::optional<ControllerFrame> parse_controller_frame(
    std::span<const std::uint8_t> bytes);

}  // namespace densevlc::phy
