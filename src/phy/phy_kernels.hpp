// Backend-generic vector kernels for the PHY byte pipelines.
//
// Same scheme as src/dsp/dsp_kernels.hpp: each kernel is a template over
// a simd backend (common/simd.hpp), instantiated for the scalar backend
// in the regular TUs and for `simd::VectorBackend` in phy_simd.cpp (the
// only PHY TU compiled with the vector ISA flags). All kernels here work
// in the byte domain — XORs, table lookups, copies — so scalar and
// vector instantiations are exactly identical, not merely close.
//
// Manchester tables live here (shared by manchester.cpp and the
// kernels): the MSB-first pack8 decode LUT from the PR 5 scalar fast
// path, plus an LSB-first variant matching the bit order movemask
// produces (mask bit i == chip i within a 16-chip group).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/simd.hpp"
#include "phy/gf256.hpp"

namespace densevlc::phy::detail {

// --- Manchester chip tables ----------------------------------------------

/// 256-entry chip-pattern table: row b holds the 16 chips of byte b,
/// MSB-first, bit 1 = (HIGH, LOW), bit 0 = (LOW, HIGH). Stored as raw
/// bytes so the kernels can vector-copy rows; values are Chip enumerators.
constexpr std::array<std::array<std::uint8_t, 16>, 256> build_encode_lut() {
  std::array<std::array<std::uint8_t, 16>, 256> lut{};
  for (unsigned b = 0; b < 256; ++b) {
    for (unsigned i = 0; i < 8; ++i) {
      const bool bit = ((b >> (7 - i)) & 1u) != 0;
      lut[b][2 * i] = bit ? 1 : 0;      // 1: Ih -> Il
      lut[b][2 * i + 1] = bit ? 0 : 1;  // 0: Il -> Ih
    }
  }
  return lut;
}
inline constexpr auto kEncodeLut = build_encode_lut();

/// Lenient decode of 8 chips (4 Manchester pairs) at once: the entry is
/// the decoded nibble plus the number of coding violations (violating
/// pairs resolve to bit 0, matching manchester_decode_lenient).
struct HalfDecode {
  std::uint8_t nibble = 0;
  std::uint8_t violations = 0;
};

/// Index = 8 chips packed MSB-first (chip i at bit 7-i), as produced by
/// pack8 in the scalar tail path.
constexpr std::array<HalfDecode, 256> build_decode_lut_msb() {
  std::array<HalfDecode, 256> lut{};
  for (unsigned idx = 0; idx < 256; ++idx) {
    std::uint8_t nibble = 0;
    std::uint8_t violations = 0;
    for (unsigned p = 0; p < 4; ++p) {
      const unsigned c0 = (idx >> (7 - 2 * p)) & 1u;
      const unsigned c1 = (idx >> (6 - 2 * p)) & 1u;
      unsigned bit = 0;
      if (c0 == 0 && c1 == 1) {
        bit = 0;
      } else if (c0 == 1 && c1 == 0) {
        bit = 1;
      } else {
        bit = 0;
        ++violations;
      }
      nibble = static_cast<std::uint8_t>((nibble << 1) | bit);
    }
    lut[idx] = HalfDecode{nibble, static_cast<std::uint8_t>(violations)};
  }
  return lut;
}
inline constexpr auto kDecodeLutMsb = build_decode_lut_msb();

/// Index = 8 chips packed LSB-first (chip i at bit i), the order
/// movemask_nonzero emits. Same pair semantics as the MSB table.
constexpr std::array<HalfDecode, 256> build_decode_lut_lsb() {
  std::array<HalfDecode, 256> lut{};
  for (unsigned idx = 0; idx < 256; ++idx) {
    std::uint8_t nibble = 0;
    std::uint8_t violations = 0;
    for (unsigned p = 0; p < 4; ++p) {
      const unsigned c0 = (idx >> (2 * p)) & 1u;
      const unsigned c1 = (idx >> (2 * p + 1)) & 1u;
      unsigned bit = 0;
      if (c0 == 0 && c1 == 1) {
        bit = 0;
      } else if (c0 == 1 && c1 == 0) {
        bit = 1;
      } else {
        bit = 0;
        ++violations;
      }
      nibble = static_cast<std::uint8_t>((nibble << 1) | bit);
    }
    lut[idx] = HalfDecode{nibble, static_cast<std::uint8_t>(violations)};
  }
  return lut;
}
inline constexpr auto kDecodeLutLsb = build_decode_lut_lsb();

/// Packs 8 chips into a kDecodeLutMsb index, MSB-first.
inline unsigned pack8(const std::uint8_t* chips) {
  unsigned idx = 0;
  for (unsigned i = 0; i < 8; ++i) {
    idx = (idx << 1) | static_cast<unsigned>(chips[i]);
  }
  return idx;
}

// --- Manchester kernels --------------------------------------------------

/// Fused bytes -> chips: one 16-byte LUT row store per byte.
template <class B>
void manchester_encode_bytes_kernel(const std::uint8_t* bytes,
                                    std::size_t n_bytes,
                                    std::uint8_t* out_chips) {
  for (std::size_t i = 0; i < n_bytes; ++i) {
    B::store16(out_chips + 16 * i, B::load16(kEncodeLut[bytes[i]].data()));
  }
}

/// Fused lenient chips -> bytes. Main loop: one native-width load turns
/// kU8Lanes chips into a nonzero-mask whose 16-bit groups index the
/// LSB-first decode LUT (two hits per output byte). Ragged tail uses the
/// scalar pack8 path. Returns the coding-violation count.
template <class B>
std::size_t manchester_decode_bytes_kernel(const std::uint8_t* chips,
                                           std::size_t n_bytes,
                                           std::uint8_t* out_bytes) {
  constexpr std::size_t kLanes = B::kU8Lanes;
  static_assert(kLanes % 16 == 0, "lane width must cover whole bytes");
  const std::size_t n_chips = n_bytes * 16;
  std::size_t violations = 0;
  std::size_t i = 0;
  std::size_t o = 0;
  for (; i + kLanes <= n_chips; i += kLanes) {
    const std::uint32_t m = B::movemask_nonzero(B::loadu(chips + i));
    for (std::size_t g = 0; g < kLanes / 16; ++g, ++o) {
      const HalfDecode hi = kDecodeLutLsb[(m >> (16 * g)) & 0xFFu];
      const HalfDecode lo = kDecodeLutLsb[(m >> (16 * g + 8)) & 0xFFu];
      out_bytes[o] = static_cast<std::uint8_t>((hi.nibble << 4) | lo.nibble);
      violations += hi.violations + lo.violations;
    }
  }
  for (; o < n_bytes; ++o, i += 16) {
    const HalfDecode hi = kDecodeLutMsb[pack8(chips + i)];
    const HalfDecode lo = kDecodeLutMsb[pack8(chips + i + 8)];
    out_bytes[o] = static_cast<std::uint8_t>((hi.nibble << 4) | lo.nibble);
    violations += hi.violations + lo.violations;
  }
  return violations;
}

// --- GF(256) Reed-Solomon column kernels ---------------------------------

/// Upper bound on parity symbols the column kernels support (the system
/// code is RS(.., 16 parity); 32 leaves headroom).
inline constexpr std::size_t kMaxRsParity = 32;

/// Split-nibble multiply of a whole vector by the fixed constant whose
/// tables are (lo, hi): mul(c, x) = lo[x & 0xF] ^ hi[x >> 4] per byte.
template <class B>
inline typename B::u8v gf_mul_vec(const typename B::tbl16& lo,
                                  const typename B::tbl16& hi,
                                  typename B::u8v x, typename B::u8v nib) {
  return B::xor_(B::lookup(lo, B::and_(x, nib)), B::lookup(hi, B::srl4(x)));
}

/// RS systematic-encoder LFSR advanced over `width` codewords at once.
/// Column-major staging: msg_cols[r * width + l] is byte r of codeword l;
/// parity_cols[i * width + l] receives parity symbol i of codeword l.
/// `width` must be a multiple of B::kU8Lanes; taps[i] are the nibble
/// tables of generator coefficient i+1 (matching ReedSolomon's
/// encode_rows_). Per column this is exactly encode_parity_into's
/// recurrence in the byte domain.
template <class B>
void rs_parity_cols_kernel(const std::uint8_t* msg_cols, std::size_t msg_len,
                           const gf256::NibbleTables* taps, std::size_t np,
                           std::uint8_t* parity_cols, std::size_t width) {
  using V = typename B::u8v;
  using T = typename B::tbl16;
  constexpr std::size_t kLanes = B::kU8Lanes;
  T lo[kMaxRsParity], hi[kMaxRsParity];
  for (std::size_t i = 0; i < np; ++i) {
    lo[i] = B::load_table(taps[i].lo.data());
    hi[i] = B::load_table(taps[i].hi.data());
  }
  const V nib = B::broadcast(0x0F);
  for (std::size_t c = 0; c < width; c += kLanes) {
    V par[kMaxRsParity];
    for (std::size_t i = 0; i < np; ++i) par[i] = B::broadcast(0);
    for (std::size_t r = 0; r < msg_len; ++r) {
      const V fb = B::xor_(B::loadu(msg_cols + r * width + c), par[0]);
      for (std::size_t i = 0; i + 1 < np; ++i) {
        par[i] = B::xor_(par[i + 1], gf_mul_vec<B>(lo[i], hi[i], fb, nib));
      }
      par[np - 1] = gf_mul_vec<B>(lo[np - 1], hi[np - 1], fb, nib);
    }
    for (std::size_t i = 0; i < np; ++i) {
      B::storeu(parity_cols + i * width + c, par[i]);
    }
  }
}

/// RS syndromes over `width` codewords at once (Horner over each column
/// for every root). roots[i] are the nibble tables of alpha^i, matching
/// ReedSolomon's syndrome_rows_. synd_cols[i * width + l] receives
/// syndrome i of codeword l.
template <class B>
void rs_syndrome_cols_kernel(const std::uint8_t* cw_cols,
                             std::size_t cw_len,
                             const gf256::NibbleTables* roots,
                             std::size_t np, std::uint8_t* synd_cols,
                             std::size_t width) {
  using V = typename B::u8v;
  using T = typename B::tbl16;
  constexpr std::size_t kLanes = B::kU8Lanes;
  T lo[kMaxRsParity], hi[kMaxRsParity];
  for (std::size_t i = 0; i < np; ++i) {
    lo[i] = B::load_table(roots[i].lo.data());
    hi[i] = B::load_table(roots[i].hi.data());
  }
  const V nib = B::broadcast(0x0F);
  for (std::size_t c = 0; c < width; c += kLanes) {
    for (std::size_t i = 0; i < np; ++i) {
      V acc = B::broadcast(0);
      for (std::size_t r = 0; r < cw_len; ++r) {
        acc = B::xor_(gf_mul_vec<B>(lo[i], hi[i], acc, nib),
                      B::loadu(cw_cols + r * width + c));
      }
      B::storeu(synd_cols + i * width + c, acc);
    }
  }
}

// --- Vector-backend entry points (defined in phy_simd.cpp) ---------------

void manchester_encode_bytes_vec(const std::uint8_t* bytes,
                                 std::size_t n_bytes,
                                 std::uint8_t* out_chips);
std::size_t manchester_decode_bytes_vec(const std::uint8_t* chips,
                                        std::size_t n_bytes,
                                        std::uint8_t* out_bytes);
void rs_parity_cols_vec(const std::uint8_t* msg_cols, std::size_t msg_len,
                        const gf256::NibbleTables* taps, std::size_t np,
                        std::uint8_t* parity_cols, std::size_t width);
void rs_syndrome_cols_vec(const std::uint8_t* cw_cols, std::size_t cw_len,
                          const gf256::NibbleTables* roots, std::size_t np,
                          std::uint8_t* synd_cols, std::size_t width);

/// Name of the vector backend phy_simd.cpp was compiled against
/// ("avx2", "neon", or "scalar" when no vector ISA is available).
const char* phy_vector_backend_name();

}  // namespace densevlc::phy::detail
