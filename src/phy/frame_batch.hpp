// Batch-of-frames codec: encode/decode many frames in one call.
//
// The per-epoch PHY loop handles every active beamspot's frame; doing
// them one at a time leaves the SIMD column kernels (phy_kernels.hpp)
// starved — an RS codeword is only 216 bytes, but 30 codewords side by
// side fill a 32-lane AVX2 vector. This layer stages all frames of a
// batch into struct-of-arrays scratch (`FrameBatch`), routes every RS
// block through the batch column kernels, and falls back to the scalar
// per-codeword paths only for blocks that actually carry errors (the
// syndrome screen separates them exactly).
//
// Contract: per lane, the outputs are bit-identical to FrameCodec
// encode_into/decode_into — same wire bytes, same parse results, same
// accept/reject decisions. Zero heap allocations once the batch scratch
// has warmed up (see common/arena.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/arena.hpp"
#include "phy/frame.hpp"
#include "phy/frame_codec.hpp"
#include "phy/reed_solomon.hpp"

namespace densevlc::phy {

/// Struct-of-arrays scratch for the batch codec paths. One instance per
/// pipeline (transmit or receive side); reused across epochs.
struct FrameBatch {
  /// Extent of one lane (frame) inside `wire`.
  struct Lane {
    std::size_t off = 0;
    std::size_t len = 0;
  };

  std::vector<Lane> lanes;             ///< per-lane extents into `wire`
  AlignedVector<std::uint8_t> wire;    ///< concatenated per-lane wire bytes
  AlignedVector<std::uint8_t> body;    ///< (de)interleave staging
  std::vector<RsParityJob> parity_jobs;          ///< encode-side RS work
  AlignedVector<std::uint8_t> codewords;         ///< decode-side staging
  std::vector<std::span<const std::uint8_t>> block_views;
  std::vector<std::uint8_t> block_clean;         ///< syndrome screen out
  std::vector<std::size_t> lane_first_block;     ///< per-lane block range
  std::vector<std::span<const std::uint8_t>> wire_views;
  std::vector<ParsedFrame*> out_ptrs;
  RsBatchScratch rs;
  FrameScratch frame;                  ///< scalar fallback (dirty blocks)

  /// Wire bytes of lane `i` after encode_frames_batch.
  std::span<const std::uint8_t> lane_wire(std::size_t i) const {
    return {wire.data() + lanes[i].off, lanes[i].len};
  }
};

/// Serializes every frame into `batch.wire` (extents in `batch.lanes`,
/// readable via lane_wire), paper format (no interleaving). Per lane
/// bit-identical to serialize_frame_into; throws std::invalid_argument
/// on over-long payloads like the scalar path.
void serialize_frames_batch(std::span<const MacFrame* const> frames,
                            FrameBatch& batch);

/// Encodes every frame into `batch.wire` (extents in `batch.lanes`,
/// readable via lane_wire). Per lane bit-identical to
/// codec.encode_into; throws std::invalid_argument on over-long payloads
/// like the scalar path.
void encode_frames_batch(const FrameCodec& codec,
                         std::span<const MacFrame* const> frames,
                         FrameBatch& batch);

/// Parses many paper-format (non-interleaved) wire streams at once:
/// out[i] receives the parse of wires[i], ok[i] = 1 on success. The
/// outcome per lane is bit-identical to parse_frame_into. Returns the
/// number of successfully parsed lanes.
std::size_t parse_frames_batch(
    std::span<const std::span<const std::uint8_t>> wires,
    std::span<ParsedFrame* const> out, std::span<std::uint8_t> ok,
    FrameBatch& batch);

/// Full batch decode with the codec's interleave depth: deinterleaves
/// each lane (when configured) and parses all lanes through the batch RS
/// path. Per lane bit-identical to codec.decode_into. Returns the number
/// of successfully decoded lanes.
std::size_t decode_frames_batch(
    const FrameCodec& codec,
    std::span<const std::span<const std::uint8_t>> wires,
    std::span<ParsedFrame> out, std::span<std::uint8_t> ok,
    FrameBatch& batch);

}  // namespace densevlc::phy
