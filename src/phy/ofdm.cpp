#include "phy/ofdm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace densevlc::phy {
namespace {

/// Gray decode: index of the amplitude whose Gray code equals v.
std::uint32_t gray_decode(std::uint32_t v) {
  std::uint32_t a = v;
  while (v >>= 1) a ^= v;
  return a;
}

std::uint32_t gray_encode(std::uint32_t a) { return a ^ (a >> 1); }

/// Per-axis PAM amplitude for Gray-coded bits `v` with 2^half levels,
/// normalized later at the constellation level.
double pam_level(std::uint32_t v, std::size_t half_bits) {
  const auto levels = std::uint32_t{1} << half_bits;
  const std::uint32_t idx = gray_decode(v);
  return 2.0 * static_cast<double>(idx) - static_cast<double>(levels - 1);
}

std::uint32_t pam_slice(double value, std::size_t half_bits) {
  const auto levels = std::uint32_t{1} << half_bits;
  // Invert: idx = (value + (levels-1)) / 2, clamped.
  const double raw = (value + static_cast<double>(levels - 1)) / 2.0;
  const auto idx = static_cast<std::uint32_t>(std::clamp(
      std::lround(raw), 0L, static_cast<long>(levels - 1)));
  return gray_encode(idx);
}

/// Unit-average-power scaling for square QAM with 2^bits points.
double qam_scale(std::size_t bits) {
  const auto levels_sq = static_cast<double>(std::uint32_t{1} << (bits / 2));
  // Average energy of (2i - (L-1)) per axis over L levels: (L^2 - 1)/3.
  const double per_axis = (levels_sq * levels_sq - 1.0) / 3.0;
  return 1.0 / std::sqrt(2.0 * per_axis);
}

}  // namespace

dsp::Complex qam_modulate(std::uint32_t symbol, std::size_t bits) {
  const std::size_t half = bits / 2;
  const std::uint32_t mask = (std::uint32_t{1} << half) - 1;
  const std::uint32_t i_bits = (symbol >> half) & mask;
  const std::uint32_t q_bits = symbol & mask;
  const double scale = qam_scale(bits);
  return {pam_level(i_bits, half) * scale, pam_level(q_bits, half) * scale};
}

std::uint32_t qam_demodulate(dsp::Complex point, std::size_t bits) {
  const std::size_t half = bits / 2;
  const double scale = qam_scale(bits);
  const std::uint32_t i_bits = pam_slice(point.real() / scale, half);
  const std::uint32_t q_bits = pam_slice(point.imag() / scale, half);
  return (i_bits << half) | q_bits;
}

OfdmModem::OfdmModem(const OfdmConfig& cfg) : cfg_{cfg} {
  if (!dsp::is_power_of_two(cfg_.fft_size) || cfg_.fft_size < 8) {
    throw std::invalid_argument{"OfdmModem: fft_size must be 2^k >= 8"};
  }
  if (cfg_.bits_per_symbol != 2 && cfg_.bits_per_symbol != 4 &&
      cfg_.bits_per_symbol != 6) {
    throw std::invalid_argument{
        "OfdmModem: bits_per_symbol must be 2, 4 or 6"};
  }
  if (cfg_.cyclic_prefix >= cfg_.fft_size) {
    throw std::invalid_argument{"OfdmModem: cyclic prefix >= fft size"};
  }
}

std::vector<dsp::Complex> OfdmModem::pilot_points() const {
  // Deterministic QPSK pilot: LFSR-driven phases, unit magnitude.
  std::vector<dsp::Complex> points(cfg_.data_subcarriers());
  unsigned lfsr = 0xB5AD;
  for (auto& p : points) {
    const unsigned bit =
        ((lfsr >> 0) ^ (lfsr >> 2) ^ (lfsr >> 3) ^ (lfsr >> 5)) & 1u;
    lfsr = (lfsr >> 1) | (bit << 15);
    const unsigned bit2 =
        ((lfsr >> 0) ^ (lfsr >> 2) ^ (lfsr >> 3) ^ (lfsr >> 5)) & 1u;
    lfsr = (lfsr >> 1) | (bit2 << 15);
    const double i = bit ? 1.0 : -1.0;
    const double q = bit2 ? 1.0 : -1.0;
    p = dsp::Complex{i, q} / std::sqrt(2.0);
  }
  return points;
}

std::vector<dsp::Complex> OfdmModem::load_subcarriers(
    std::span<const dsp::Complex> points) const {
  std::vector<dsp::Complex> freq(cfg_.fft_size, dsp::Complex{0.0, 0.0});
  for (std::size_t k = 1; k < cfg_.fft_size / 2; ++k) {
    const dsp::Complex p = points[k - 1];
    freq[k] = p;
    freq[cfg_.fft_size - k] = std::conj(p);  // Hermitian: real output
  }
  return freq;
}

std::size_t OfdmModem::symbols_for_bits(std::size_t bit_count) const {
  const std::size_t per_symbol = cfg_.bits_per_ofdm_symbol();
  return (bit_count + per_symbol - 1) / per_symbol;
}

double OfdmModem::bit_rate_bps() const {
  const double symbol_time =
      static_cast<double>(samples_per_symbol()) / cfg_.sample_rate_hz;
  return static_cast<double>(cfg_.bits_per_ofdm_symbol()) / symbol_time;
}

dsp::Waveform OfdmModem::modulate(std::span<const std::uint8_t> bits) const {
  const std::size_t n_data = symbols_for_bits(bits.size());

  // Collect time-domain symbols (pilot first), unbiased.
  std::vector<std::vector<double>> symbols;
  symbols.reserve(n_data + 1);

  auto render = [&](std::span<const dsp::Complex> points) {
    auto freq = load_subcarriers(points);
    dsp::ifft(freq);
    std::vector<double> time(cfg_.fft_size);
    for (std::size_t t = 0; t < cfg_.fft_size; ++t) {
      time[t] = freq[t].real();  // imaginary part is ~0 by symmetry
    }
    return time;
  };

  symbols.push_back(render(pilot_points()));

  std::size_t bit_at = 0;
  for (std::size_t s = 0; s < n_data; ++s) {
    std::vector<dsp::Complex> points(cfg_.data_subcarriers());
    for (auto& p : points) {
      std::uint32_t word = 0;
      for (std::size_t b = 0; b < cfg_.bits_per_symbol; ++b) {
        const std::uint8_t bit =
            bit_at < bits.size() ? bits[bit_at] : 0;  // zero padding
        word = (word << 1) | (bit & 1);
        ++bit_at;
      }
      p = qam_modulate(word, cfg_.bits_per_symbol);
    }
    symbols.push_back(render(points));
  }

  // Common RMS normalization so swing_scale_a sets the AC current RMS.
  double power = 0.0;
  std::size_t count = 0;
  for (const auto& sym : symbols) {
    for (double v : sym) {
      power += v * v;
      ++count;
    }
  }
  const double rms = std::sqrt(power / static_cast<double>(count));
  const double gain = rms > 0.0 ? cfg_.swing_scale_a / rms : 0.0;

  dsp::Waveform wf;
  wf.sample_rate_hz = cfg_.sample_rate_hz;
  wf.samples.reserve(symbols.size() * samples_per_symbol());
  const double clip_hi = 2.0 * cfg_.bias_current_a;
  for (const auto& sym : symbols) {
    // Cyclic prefix then body, biased and clipped to the LED range.
    auto emit = [&](double v) {
      const double current =
          std::clamp(cfg_.bias_current_a + gain * v, 0.0, clip_hi);
      wf.samples.push_back(current);
    };
    for (std::size_t t = cfg_.fft_size - cfg_.cyclic_prefix;
         t < cfg_.fft_size; ++t) {
      emit(sym[t]);
    }
    for (double v : sym) emit(v);
  }
  return wf;
}

std::optional<std::vector<std::uint8_t>> OfdmModem::demodulate(
    const dsp::Waveform& rx, std::size_t bit_count) const {
  const std::size_t sps = samples_per_symbol();
  const std::size_t n_data = symbols_for_bits(bit_count);
  if (rx.samples.size() < sps * (n_data + 1)) return std::nullopt;

  auto spectrum = [&](std::size_t symbol_index) {
    std::vector<dsp::Complex> block(cfg_.fft_size);
    const std::size_t start = symbol_index * sps + cfg_.cyclic_prefix;
    for (std::size_t t = 0; t < cfg_.fft_size; ++t) {
      block[t] = dsp::Complex{rx.samples[start + t], 0.0};
    }
    dsp::fft(block);
    return block;
  };

  // One-tap equalizer from the pilot.
  const auto pilot_rx = spectrum(0);
  const auto pilot_tx = pilot_points();
  std::vector<dsp::Complex> eq(cfg_.fft_size / 2, dsp::Complex{0.0, 0.0});
  for (std::size_t k = 1; k < cfg_.fft_size / 2; ++k) {
    const dsp::Complex ref = pilot_tx[k - 1];
    if (std::abs(ref) > 1e-12) eq[k] = pilot_rx[k] / ref;
  }

  std::vector<std::uint8_t> bits;
  bits.reserve(n_data * cfg_.bits_per_ofdm_symbol());
  for (std::size_t s = 0; s < n_data; ++s) {
    const auto freq = spectrum(s + 1);
    for (std::size_t k = 1; k < cfg_.fft_size / 2; ++k) {
      dsp::Complex point{0.0, 0.0};
      if (std::abs(eq[k]) > 1e-12) point = freq[k] / eq[k];
      const std::uint32_t word =
          qam_demodulate(point, cfg_.bits_per_symbol);
      for (std::size_t b = cfg_.bits_per_symbol; b-- > 0;) {
        bits.push_back(static_cast<std::uint8_t>((word >> b) & 1));
      }
    }
  }
  bits.resize(bit_count);
  return bits;
}

}  // namespace densevlc::phy
