// DCO-OFDM: the "advanced modulation" extension (paper Sec. 9).
//
// The paper's TX front-end is limited to OOK by the BBB PRU's sampling
// budget; with faster hardware it suggests OFDM. DC-biased optical OFDM
// (DCO-OFDM) is the standard intensity-modulation variant: QAM symbols
// occupy subcarriers 1..N/2-1, Hermitian symmetry forces a real IFFT
// output, and a DC bias (here: the illumination bias current) shifts the
// bipolar waveform into the LED's positive-intensity range, with residual
// negative peaks clipped.
//
// Frames consist of one known pilot OFDM symbol (for one-tap per-
// subcarrier equalization) followed by data symbols, each with a cyclic
// prefix.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dsp/fft.hpp"
#include "dsp/waveform.hpp"

namespace densevlc::phy {

/// DCO-OFDM parameters.
struct OfdmConfig {
  std::size_t fft_size = 64;        ///< N (power of two)
  std::size_t cyclic_prefix = 8;    ///< samples of CP per OFDM symbol
  std::size_t bits_per_symbol = 4;  ///< QAM order exponent: 2=4QAM,
                                    ///< 4=16QAM, 6=64QAM
  double sample_rate_hz = 2e6;      ///< DAC/ADC rate of the OFDM PHY
  double bias_current_a = 0.45;     ///< Ib: the DC operating point
  double swing_scale_a = 0.3;       ///< RMS current of the AC waveform
                                    ///< (clipped to [0, 2*Ib])

  /// Data-bearing subcarriers: 1 .. N/2 - 1.
  std::size_t data_subcarriers() const { return fft_size / 2 - 1; }

  /// Payload bits carried by one OFDM data symbol.
  std::size_t bits_per_ofdm_symbol() const {
    return data_subcarriers() * bits_per_symbol;
  }
};

/// Square-QAM mapping helpers (Gray-coded per axis). Exposed for tests.
dsp::Complex qam_modulate(std::uint32_t symbol, std::size_t bits);
std::uint32_t qam_demodulate(dsp::Complex point, std::size_t bits);

/// DCO-OFDM modulator/demodulator pair.
class OfdmModem {
 public:
  /// Throws std::invalid_argument for non-power-of-two FFT sizes or
  /// unsupported QAM orders (supported: 2, 4, 6 bits per symbol).
  explicit OfdmModem(const OfdmConfig& cfg);

  const OfdmConfig& config() const { return cfg_; }

  /// Modulates bits into an LED current waveform: [pilot symbol | data
  /// symbols...], each with cyclic prefix, biased at Ib and clipped to
  /// the diode's conducting range. Bits are padded with zeros to fill
  /// the last OFDM symbol.
  dsp::Waveform modulate(std::span<const std::uint8_t> bits) const;

  /// Demodulates a received waveform (same sample rate, aligned to the
  /// frame start) back into bits. `bit_count` tells the demodulator how
  /// many of the recovered bits are payload (the zero padding is
  /// dropped). The pilot symbol provides the one-tap equalizer, so any
  /// flat channel gain cancels. Returns nullopt if the waveform is too
  /// short for even the pilot.
  std::optional<std::vector<std::uint8_t>> demodulate(
      const dsp::Waveform& rx, std::size_t bit_count) const;

  /// Number of OFDM data symbols needed for `bit_count` bits.
  std::size_t symbols_for_bits(std::size_t bit_count) const;

  /// Samples per OFDM symbol including cyclic prefix.
  std::size_t samples_per_symbol() const {
    return cfg_.fft_size + cfg_.cyclic_prefix;
  }

  /// Gross PHY bit rate (payload bits per second of data symbols).
  double bit_rate_bps() const;

 private:
  /// Builds the frequency-domain vector for one symbol from QAM points.
  std::vector<dsp::Complex> load_subcarriers(
      std::span<const dsp::Complex> points) const;

  /// Known pilot constellation (all subcarriers, deterministic).
  std::vector<dsp::Complex> pilot_points() const;

  OfdmConfig cfg_;
};

}  // namespace densevlc::phy
