// Manchester line coding (paper Sec. 3.3).
//
// DenseVLC keeps LED brightness constant across operating modes by
// Manchester-coding the OOK stream: every data bit becomes a transition,
// so HIGH and LOW chips are equiprobable regardless of payload. Paper
// convention: Il -> Ih (LOW then HIGH) encodes binary 0, Ih -> Il (HIGH
// then LOW) encodes binary 1.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace densevlc::phy {

/// A transmitted chip (half a Manchester symbol).
enum class Chip : std::uint8_t {
  kLow = 0,   ///< current Il = Ib - Isw/2
  kHigh = 1,  ///< current Ih = Ib + Isw/2
};

/// Encodes bits into chips; output has exactly 2 chips per bit.
std::vector<Chip> manchester_encode(std::span<const std::uint8_t> bits);

/// Decodes chips back into bits. Returns nullopt when the length is odd
/// or any chip pair lacks a transition (LL / HH is a coding violation —
/// either noise or loss of symbol lock).
std::optional<std::vector<std::uint8_t>> manchester_decode(
    std::span<const Chip> chips);

/// Decodes leniently: coding violations resolve to a best guess (0) and
/// are counted. Used by the demodulator so RS can mop up residual errors
/// instead of dropping whole frames on one bad chip pair.
struct LenientDecode {
  std::vector<std::uint8_t> bits;
  std::size_t violations = 0;
};
LenientDecode manchester_decode_lenient(std::span<const Chip> chips);

/// Unpacks bytes MSB-first into a bit vector (0/1 values).
std::vector<std::uint8_t> bytes_to_bits(std::span<const std::uint8_t> bytes);

/// Packs bits (0/1 values, length must be a multiple of 8) MSB-first into
/// bytes. Returns nullopt on ragged length.
std::optional<std::vector<std::uint8_t>> bits_to_bytes(
    std::span<const std::uint8_t> bits);

}  // namespace densevlc::phy
