// Manchester line coding (paper Sec. 3.3).
//
// DenseVLC keeps LED brightness constant across operating modes by
// Manchester-coding the OOK stream: every data bit becomes a transition,
// so HIGH and LOW chips are equiprobable regardless of payload. Paper
// convention: Il -> Ih (LOW then HIGH) encodes binary 0, Ih -> Il (HIGH
// then LOW) encodes binary 1.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace densevlc::phy {

/// A transmitted chip (half a Manchester symbol).
enum class Chip : std::uint8_t {
  kLow = 0,   ///< current Il = Ib - Isw/2
  kHigh = 1,  ///< current Ih = Ib + Isw/2
};

/// Encodes bits into chips; output has exactly 2 chips per bit.
std::vector<Chip> manchester_encode(std::span<const std::uint8_t> bits);

/// Decodes chips back into bits. Returns nullopt when the length is odd
/// or any chip pair lacks a transition (LL / HH is a coding violation —
/// either noise or loss of symbol lock).
std::optional<std::vector<std::uint8_t>> manchester_decode(
    std::span<const Chip> chips);

/// Decodes leniently: coding violations resolve to a best guess (0) and
/// are counted. Used by the demodulator so RS can mop up residual errors
/// instead of dropping whole frames on one bad chip pair.
struct LenientDecode {
  std::vector<std::uint8_t> bits;
  std::size_t violations = 0;
};
LenientDecode manchester_decode_lenient(std::span<const Chip> chips);

/// Unpacks bytes MSB-first into a bit vector (0/1 values).
std::vector<std::uint8_t> bytes_to_bits(std::span<const std::uint8_t> bytes);

/// Packs bits (0/1 values, length must be a multiple of 8) MSB-first into
/// bytes. Returns nullopt on ragged length.
std::optional<std::vector<std::uint8_t>> bits_to_bytes(
    std::span<const std::uint8_t> bits);

// --- Zero-allocation overloads (see common/arena.hpp) -------------------
//
// Each writes its result into a caller-owned buffer whose capacity is
// reused across calls; after the first (warm-up) frame they perform no
// heap allocation. Bit-identical to the value-returning functions above,
// which are now thin wrappers around these.

/// manchester_encode into a reused chip buffer.
void manchester_encode_into(std::span<const std::uint8_t> bits,
                            std::vector<Chip>& out);

/// manchester_decode into a reused bit buffer; false replaces nullopt
/// (odd length or coding violation). `out` is left empty on failure.
[[nodiscard]] bool manchester_decode_into(std::span<const Chip> chips,
                                          std::vector<std::uint8_t>& out);

/// manchester_decode_lenient into a reused result.
void manchester_decode_lenient_into(std::span<const Chip> chips,
                                    LenientDecode& out);

/// bytes_to_bits into a reused bit buffer (LUT-driven: one 8-entry row
/// copy per byte).
void bytes_to_bits_into(std::span<const std::uint8_t> bytes,
                        std::vector<std::uint8_t>& out);

/// bits_to_bytes into a reused byte buffer; false replaces nullopt on
/// ragged length. Packing directly assembles the byte that indexes the
/// encode/unpack LUTs, so there is no separate table for this direction;
/// the all-256-value parity test in tests/phy pins it to the LUTs.
[[nodiscard]] bool bits_to_bytes_into(std::span<const std::uint8_t> bits,
                                      std::vector<std::uint8_t>& out);

// --- Byte-at-a-time LUT fast paths --------------------------------------
//
// 256-entry chip-pattern tables replace the per-bit loops: one row copy
// encodes a whole byte, two table hits decode one. Exactly equivalent to
// composing the bit-level functions (the differential suite and the
// fingerprint benches hold them bit-identical).

/// Fused bytes -> chips: manchester_encode(bytes_to_bits(bytes)).
/// `out_chips.size()` must equal `16 * bytes.size()`.
void manchester_encode_bytes(std::span<const std::uint8_t> bytes,
                             std::span<Chip> out_chips);

/// Fused lenient chips -> bytes:
/// bits_to_bytes(manchester_decode_lenient(chips).bits) for an even,
/// byte-aligned chip stream. `chips.size()` must equal
/// `16 * out_bytes.size()`. Returns the coding-violation count.
std::size_t manchester_decode_bytes_lenient(std::span<const Chip> chips,
                                            std::span<std::uint8_t> out_bytes);

}  // namespace densevlc::phy
