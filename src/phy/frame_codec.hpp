// FrameCodec: the Table 3 serializer with optional burst protection.
//
// Composes serialize_frame/parse_frame with the block interleaver: the
// 9-byte header (SFD, length, dst, src, protocol) stays in the clear —
// receivers must read the length before they can deinterleave — while
// payload + parity are interleaved at a configurable depth. Depth 0/1
// reproduces the paper's exact wire format byte for byte.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "phy/frame.hpp"

namespace densevlc::phy {

/// Stateless codec configured once per link.
class FrameCodec {
 public:
  /// `interleave_depth` of 0 or 1 disables interleaving (paper format).
  explicit FrameCodec(std::size_t interleave_depth = 0)
      : depth_{interleave_depth} {}

  std::size_t interleave_depth() const { return depth_; }

  /// Serializes a frame to wire bytes (header clear, body optionally
  /// interleaved). Same length as serialize_frame for every depth.
  std::vector<std::uint8_t> encode(const MacFrame& frame) const;

  /// Parses wire bytes produced by encode() with the same depth.
  std::optional<ParsedFrame> decode(
      std::span<const std::uint8_t> bytes) const;

  /// Reusable workspace for the zero-allocation overloads below: wire and
  /// body staging plus the frame/RS scratch (see common/arena.hpp).
  struct Scratch {
    std::vector<std::uint8_t> wire;
    std::vector<std::uint8_t> body;
    FrameScratch frame;
  };

  /// encode() into a reused buffer. Bit-identical wire bytes.
  void encode_into(const MacFrame& frame, std::vector<std::uint8_t>& out,
                   Scratch& scratch) const;

  /// decode() into a reused result; false replaces nullopt.
  [[nodiscard]] bool decode_into(std::span<const std::uint8_t> bytes,
                                 ParsedFrame& out, Scratch& scratch) const;

  /// Depth that aligns interleaver rows with RS codewords for a given
  /// payload size — the configuration with the clean analytic burst
  /// bound (see phy::burst_tolerance). Returns 1 when the payload fits a
  /// single RS block (interleaving cannot help within one block).
  static std::size_t matched_depth(std::size_t payload_bytes);

 private:
  std::size_t depth_;
};

}  // namespace densevlc::phy
