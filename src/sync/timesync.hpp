// Software time-synchronization baselines (paper Sec. 6.1, Fig. 12,
// Table 4).
//
// The paper evaluates starting joint transmissions by absolute local
// timestamps under three regimes:
//   - no synchronization: TXs fire when the multicast frame arrives, so
//     the pairwise error is dominated by network-delivery and OS jitter;
//   - NTP + PTP: a coarse NTP correction plus PTP between TXs leaves a
//     few-microsecond residual clock offset;
//   - (NLOS VLC sync, Sec. 6.2, lives in nlos_sync.hpp).
//
// The measurement harness reproduces the paper's method: two TXs transmit
// the same Manchester frame, the edge-time difference of every
// "synchronized" symbol pair is recorded, the median over the frame is
// taken, and medians are averaged over repeated frames.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "sync/clock.hpp"

namespace densevlc::sync {

/// Which baseline prepares the TX clocks before a joint transmission.
enum class SyncMethod {
  kNone,    ///< fire on multicast arrival
  kNtpPtp,  ///< absolute-time fire after NTP/PTP correction
};

/// Calibration of the baselines. Defaults reproduce the medians of paper
/// Table 4 (no sync 10.040 us, NTP/PTP 4.565 us).
struct TimeSyncConfig {
  // No-sync: per-TX multicast delivery delay = base + Exp(mean_jitter).
  // |Exp(m) - Exp(m)| is again Exp(m), so the *expected* pair error —
  // what measure_sync_delay() reports after averaging per-frame medians —
  // equals m. Calibrated to Table 4's 10.040 us.
  double delivery_jitter_mean_s = 10.0e-6;
  // NTP/PTP residual clock offset sigma per TX. The expected pair error
  // is sqrt(2/pi) * sqrt(2 (sigma^2 + jitter^2)); 4.0 us reproduces
  // Table 4's 4.565 us.
  double ntp_ptp_residual_sigma_s = 4.0e-6;
  // OS/PRU handoff jitter applied per transmission event in both regimes.
  double event_jitter_sigma_s = 0.8e-6;
  // Unsynchronized *streaming* (Table 5's "no sync" row): with no common
  // time reference at all, each BBB starts its frame wherever its
  // userspace -> PRU pipeline happens to land — a uniform spread of
  // hundreds of microseconds, i.e. many chips. (Table 4 / Fig. 12 measure
  // the tighter absolute-timestamp trigger path instead.)
  double stack_start_spread_s = 150e-6;
  // Oscillator drift population (affects symbol spacing inside a frame).
  double drift_stddev_ppm = 10.0;
};

/// Start-time error realization for a pair of TXs about to transmit the
/// same frame "simultaneously". Values are true-time offsets from the
/// intended common start [s].
struct PairStart {
  double tx_a_s = 0.0;
  double tx_b_s = 0.0;
  double drift_a_ppm = 0.0;
  double drift_b_ppm = 0.0;
};

/// Draws the start-time errors for one joint frame under `method`.
PairStart draw_pair_start(SyncMethod method, const TimeSyncConfig& cfg,
                          Rng& rng);

/// Paper's measurement: median over `symbols_per_frame` of the absolute
/// edge-time difference between corresponding symbols of the two TXs
/// (each symbol edge k of TX t falls at start_t + k * T * (1 + drift_t)),
/// averaged over `frames` frames. Returns seconds.
double measure_sync_delay(SyncMethod method, const TimeSyncConfig& cfg,
                          double symbol_rate_hz, std::size_t symbols_per_frame,
                          std::size_t frames, Rng& rng);

/// Maximum symbol rate [Hz] at which the measured delay stays below
/// `overlap_fraction` of a symbol period (the paper's 10% criterion that
/// yields 14.28 Ksymbols/s for NTP/PTP).
double max_symbol_rate_for_overlap(double delay_s, double overlap_fraction);

}  // namespace densevlc::sync
