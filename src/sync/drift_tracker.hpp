// Drift tracking between synchronization pilots.
//
// One NLOS pilot aligns a follower's *phase*; its oscillator still runs
// at a slightly wrong *rate* (tens of ppm), so alignment decays until
// the next pilot. A follower that remembers successive pilot arrivals
// can estimate its rate error against the leader and extrapolate between
// pilots — stretching the usable re-sync interval by an order of
// magnitude. This module implements that estimator (least-squares slope
// over a sliding window of pilot observations) and quantifies the
// residual alignment error as a function of the pilot period.
#pragma once

#include <cstddef>
#include <deque>

namespace densevlc::sync {

/// Online drift estimator over pilot observations.
///
/// Each observation pairs the follower's local receive timestamp with
/// the pilot's nominal (leader-schedule) time. The slope of local-vs-
/// nominal minus one is the rate error; predictions extrapolate the
/// latest observation with the estimated rate.
class DriftTracker {
 public:
  /// `window` bounds how many past pilots inform the fit (>= 2 for a
  /// slope; older observations age out).
  explicit DriftTracker(std::size_t window = 8) : window_{window} {}

  /// Records a pilot: the follower clock read `local_s` when the leader
  /// schedule says `nominal_s`.
  void observe(double nominal_s, double local_s);

  /// Number of observations currently in the window.
  std::size_t observations() const { return samples_.size(); }

  /// Estimated rate error in parts per million (0 until two
  /// observations exist).
  double drift_ppm() const;

  /// Predicts the follower-local time corresponding to leader-nominal
  /// time `nominal_s`, extrapolating drift from the window. With fewer
  /// than two observations, falls back to offset-only prediction (or
  /// the identity when empty).
  double predict_local(double nominal_s) const;

  /// Alignment error at `nominal_s` if the follower fires by
  /// prediction while its true clock runs at `true_drift_ppm` with
  /// offset `true_offset_s` [s].
  double prediction_error(double nominal_s, double true_drift_ppm,
                          double true_offset_s) const;

 private:
  struct Sample {
    double nominal;
    double local;
  };
  std::size_t window_;
  std::deque<Sample> samples_;
};

}  // namespace densevlc::sync
