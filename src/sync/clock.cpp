#include "sync/clock.hpp"

namespace densevlc::sync {

ClockModel ClockModel::draw(const ClockPopulation& pop, Rng& rng) {
  return ClockModel{rng.gaussian(0.0, pop.offset_stddev_s),
                    rng.gaussian(0.0, pop.drift_stddev_ppm),
                    pop.jitter_stddev_s};
}

ClockModel ClockModel::corrected(double residual_sigma, Rng& rng) const {
  return ClockModel{rng.gaussian(0.0, residual_sigma), drift_ppm_,
                    jitter_stddev_s_};
}

}  // namespace densevlc::sync
