#include "sync/ptp.hpp"

#include <cmath>

namespace densevlc::sync {
namespace {

double exp_draw(double mean, Rng& rng) {
  if (mean <= 0.0) return 0.0;
  double u;
  do {
    u = rng.uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

}  // namespace

PtpResult ptp_exchange(double true_offset_s, const PtpLinkConfig& link,
                       Rng& rng) {
  PtpResult out;
  out.true_offset_s = true_offset_s;

  // Master->slave (SYNC): asymmetric component applies here.
  const double d_master_slave_s = link.base_delay_s + link.asymmetry_s +
                      exp_draw(link.jitter_mean_s, rng);
  // Slave->master (DELAY_REQ).
  const double d_slave_master_s =
      link.base_delay_s + exp_draw(link.jitter_mean_s, rng);

  auto stamp = [&](double t) {
    return t + rng.gaussian(0.0, link.timestamp_jitter_s);
  };

  const double t1 = 0.0;  // master clock
  const double t2 = stamp(t1 + d_master_slave_s + true_offset_s);  // slave clock
  const double t3 = stamp(t2 + 100e-6);                // slave clock
  const double t4 = stamp(t3 - true_offset_s + d_slave_master_s);  // master clock

  out.estimated_offset_s = ((t2 - t1) - (t4 - t3)) / 2.0;
  out.residual_s = out.estimated_offset_s - true_offset_s;
  return out;
}

double ptp_residual_after_sync(double true_offset_s,
                               const PtpLinkConfig& link,
                               std::size_t exchanges, Rng& rng) {
  if (exchanges == 0) return true_offset_s;
  double acc = 0.0;
  for (std::size_t i = 0; i < exchanges; ++i) {
    acc += ptp_exchange(true_offset_s, link, rng).estimated_offset_s;
  }
  const double corrected = acc / static_cast<double>(exchanges);
  // After applying the correction, the slave's remaining error is the
  // estimation error.
  return corrected - true_offset_s;
}

double ptp_asymmetry_floor(const PtpLinkConfig& link) {
  return link.asymmetry_s / 2.0;
}

}  // namespace densevlc::sync
