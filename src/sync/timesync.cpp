#include "sync/timesync.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"

namespace densevlc::sync {

PairStart draw_pair_start(SyncMethod method, const TimeSyncConfig& cfg,
                          Rng& rng) {
  PairStart out;
  out.drift_a_ppm = rng.gaussian(0.0, cfg.drift_stddev_ppm);
  out.drift_b_ppm = rng.gaussian(0.0, cfg.drift_stddev_ppm);
  switch (method) {
    case SyncMethod::kNone: {
      // Fire on multicast arrival: exponential delivery tails dominate.
      auto exp_draw = [&] {
        double u;
        do {
          u = rng.uniform();
        } while (u <= 0.0);
        return -cfg.delivery_jitter_mean_s * std::log(u);
      };
      out.tx_a_s = exp_draw() + rng.gaussian(0.0, cfg.event_jitter_sigma_s);
      out.tx_b_s = exp_draw() + rng.gaussian(0.0, cfg.event_jitter_sigma_s);
      break;
    }
    case SyncMethod::kNtpPtp: {
      // Fire at an absolute local timestamp: residual clock offsets.
      out.tx_a_s = rng.gaussian(0.0, cfg.ntp_ptp_residual_sigma_s) +
                   rng.gaussian(0.0, cfg.event_jitter_sigma_s);
      out.tx_b_s = rng.gaussian(0.0, cfg.ntp_ptp_residual_sigma_s) +
                   rng.gaussian(0.0, cfg.event_jitter_sigma_s);
      break;
    }
  }
  return out;
}

double measure_sync_delay(SyncMethod method, const TimeSyncConfig& cfg,
                          double symbol_rate_hz,
                          std::size_t symbols_per_frame, std::size_t frames,
                          Rng& rng) {
  const double period = 1.0 / symbol_rate_hz;
  std::vector<double> medians;
  medians.reserve(frames);
  std::vector<double> diffs;
  diffs.reserve(symbols_per_frame);
  for (std::size_t f = 0; f < frames; ++f) {
    const PairStart start = draw_pair_start(method, cfg, rng);
    diffs.clear();
    for (std::size_t k = 0; k < symbols_per_frame; ++k) {
      const double edge_a_s =
          start.tx_a_s +
          static_cast<double>(k) * period * (1.0 + start.drift_a_ppm * 1e-6);
      const double edge_b_s =
          start.tx_b_s +
          static_cast<double>(k) * period * (1.0 + start.drift_b_ppm * 1e-6);
      diffs.push_back(std::fabs(edge_a_s - edge_b_s));
    }
    medians.push_back(stats::median(diffs));
  }
  return stats::mean(medians);
}

double max_symbol_rate_for_overlap(double delay_s, double overlap_fraction) {
  if (delay_s <= 0.0) return 0.0;
  // delay <= overlap_fraction * (1 / rate)  =>  rate <= overlap / delay.
  return overlap_fraction / delay_s;
}

}  // namespace densevlc::sync
