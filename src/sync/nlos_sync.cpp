#include "sync/nlos_sync.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/correlate.hpp"
#include "phy/frame.hpp"
#include "phy/manchester.hpp"

namespace densevlc::sync {
namespace {

/// Chip sequence the leader radiates: pilot pattern then Manchester ID.
std::vector<phy::Chip> leader_chips(std::uint8_t leader_id) {
  std::vector<phy::Chip> chips;
  const auto pilot = phy::pilot_pattern();
  chips.insert(chips.end(), pilot.begin(), pilot.end());
  const std::uint8_t id_byte[1] = {leader_id};
  const auto id_chips = phy::manchester_encode(phy::bytes_to_bits(id_byte));
  chips.insert(chips.end(), id_chips.begin(), id_chips.end());
  return chips;
}

}  // namespace

NlosSynchronizer::NlosSynchronizer(const NlosSyncConfig& cfg) : cfg_{cfg} {
  // The reflected pilot is very weak; restrict the anti-aliasing corner
  // to ~2x the pilot chip rate so the chain passes the pilot but sheds
  // the out-of-band noise the data path tolerates. (The real RX does the
  // equivalent: its AC amplifier stage is tuned for the pilot band.)
  cfg_.frontend.butterworth_corner_hz =
      std::min(cfg_.frontend.butterworth_corner_hz,
               2.0 * cfg_.pilot_chip_rate_hz);
  gain_ = optics::nlos_floor_gain(cfg_.emitter, cfg_.pd, cfg_.leader_pose,
                                  cfg_.follower_pose, cfg_.floor,
                                  cfg_.occluders);

  // Calibrate the constant front-end group delay with a noiseless run so
  // measured start errors reflect only grid quantization and noise.
  NlosSyncConfig quiet = cfg_;
  quiet.frontend.noise_psd_a2_per_hz = 0.0;
  const double lead_in = 8.0;
  const dsp::Waveform wf = pilot_waveform(lead_in, 0.0);
  phy::ReceiverFrontEnd fe{quiet.frontend, Rng{1}};
  dsp::Waveform optical = wf;
  for (double& s : optical.samples) s *= gain_;
  const dsp::Waveform digitized = fe.process(optical);
  const auto tpl = pilot_template();
  const auto peak = dsp::detect_pattern(digitized.samples, tpl, 0.2);
  const double true_start =
      lead_in / cfg_.pilot_chip_rate_hz;
  if (peak) {
    const double detected =
        static_cast<double>(peak->index) / quiet.frontend.adc.sample_rate_hz;
    group_delay_s_ = detected - true_start;
  }
}

dsp::Waveform NlosSynchronizer::pilot_waveform(double lead_in_chips,
                                               double frac) const {
  phy::OokParams params;
  params.chip_rate_hz = cfg_.pilot_chip_rate_hz;
  params.samples_per_chip = cfg_.tx_samples_per_chip;
  params.bias_current_a = cfg_.led.operating_point().bias_current_a;
  params.swing_current_a = cfg_.swing_current_a;
  const phy::OokModulator mod{params};

  const auto chips = leader_chips(cfg_.leader_id);
  const dsp::Waveform data = mod.modulate(chips);

  dsp::Waveform wf;
  wf.sample_rate_hz = params.sample_rate_hz();
  const auto lead_samples = static_cast<std::size_t>(
      std::llround((lead_in_chips + frac) *
                   static_cast<double>(cfg_.tx_samples_per_chip)));
  const double bias = params.bias_current_a;
  wf.samples.assign(lead_samples, bias);
  wf.samples.insert(wf.samples.end(), data.samples.begin(),
                    data.samples.end());
  // Bias tail so AC-coupling transients settle inside the capture.
  wf.samples.insert(wf.samples.end(),
                    8 * cfg_.tx_samples_per_chip, bias);

  // Convert LED current to emitted optical power. Around the bias the
  // electro-optical transfer is locally linear; use the exact LED curve.
  for (double& s : wf.samples) {
    s = cfg_.led.electrical().wall_plug_efficiency *
        cfg_.led.power_at_current(Amperes{s}).value();
  }
  return wf;
}

std::vector<double> NlosSynchronizer::pilot_template() const {
  const auto pilot = phy::pilot_pattern();
  const double spc =
      cfg_.frontend.adc.sample_rate_hz / cfg_.pilot_chip_rate_hz;
  const auto total = static_cast<std::size_t>(
      std::ceil(static_cast<double>(pilot.size()) * spc));
  std::vector<double> tpl(total);
  for (std::size_t s = 0; s < total; ++s) {
    const auto idx = std::min<std::size_t>(
        static_cast<std::size_t>(static_cast<double>(s) / spc),
        pilot.size() - 1);
    tpl[s] = pilot[idx] == phy::Chip::kHigh ? 1.0 : -1.0;
  }
  return tpl;
}

NlosDetection NlosSynchronizer::simulate_once(Rng& rng) {
  NlosDetection out;

  // Injected pilot loss: the follower captures only noise, so there is
  // nothing to correlate against. (Guarded so a zero probability leaves
  // the historical draw sequence bit-identical.)
  if (cfg_.pilot_loss_probability > 0.0 &&
      rng.bernoulli(cfg_.pilot_loss_probability)) {
    return out;
  }

  // Random lead-in with sub-chip fraction: the pilot lands at an arbitrary
  // phase of the follower's sampling grid, which is exactly what bounds
  // the achievable sync accuracy.
  const double lead_in = 6.0 + 4.0 * rng.uniform();
  const double frac = rng.uniform();
  const dsp::Waveform wf = pilot_waveform(lead_in, frac);

  dsp::Waveform optical = wf;
  for (double& s : optical.samples) s *= gain_;

  phy::ReceiverFrontEnd fe{cfg_.frontend, rng.fork()};
  const dsp::Waveform digitized = fe.process(optical);

  const auto tpl = pilot_template();
  const auto peak =
      dsp::detect_pattern(digitized.samples, tpl, cfg_.detect_threshold);
  if (!peak) return out;
  out.detected = true;
  out.correlation = peak->score;

  // Verify the leader ID: slice the 16 Manchester chips after the pilot.
  const double frx = cfg_.frontend.adc.sample_rate_hz;
  const double spc = frx / cfg_.pilot_chip_rate_hz;
  phy::OokDemodulator demod{cfg_.pilot_chip_rate_hz, frx};
  const auto id_chips = demod.slice_chips(
      digitized.samples,
      static_cast<double>(peak->index) +
          static_cast<double>(phy::kPilotChips) * spc,
      16);
  const auto id_bits = phy::manchester_decode_lenient(id_chips);
  const auto id_bytes = phy::bits_to_bytes(id_bits.bits);
  out.id_matches =
      id_bytes && id_bytes->size() == 1 && (*id_bytes)[0] == cfg_.leader_id;

  const double true_start =
      (lead_in + frac) / cfg_.pilot_chip_rate_hz;
  const double detected = static_cast<double>(peak->index) / frx;
  out.start_error_s = detected - true_start - group_delay_s_;
  return out;
}

std::vector<double> NlosSynchronizer::measure_errors(std::size_t trials,
                                                     Rng& rng) {
  std::vector<double> errors;
  errors.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    const NlosDetection d = simulate_once(rng);
    if (d.detected && d.id_matches) {
      errors.push_back(std::fabs(d.start_error_s));
    }
  }
  return errors;
}

}  // namespace densevlc::sync
