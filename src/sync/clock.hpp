// Local-clock error model for the embedded transmitters.
//
// Each BBB-driven TX owns a free-running oscillator with a fixed offset
// from true time, a frequency error (drift, in parts per million) and
// white sampling jitter. Synchronization protocols differ only in how
// tightly they bound the offset that remains after correction; the clock
// model is shared.
#pragma once

#include "common/rng.hpp"

namespace densevlc::sync {

/// Distribution parameters for a population of clocks.
struct ClockPopulation {
  double offset_stddev_s = 5e-6;  ///< residual offset sigma after sync
  double drift_stddev_ppm = 10.0; ///< oscillator frequency error sigma
  double jitter_stddev_s = 0.2e-6;///< per-event scheduling jitter sigma
};

/// One realized clock.
class ClockModel {
 public:
  ClockModel() = default;

  /// Draws a clock from the population.
  static ClockModel draw(const ClockPopulation& pop, Rng& rng);

  /// Explicit construction (tests).
  ClockModel(double offset_s, double drift_ppm, double jitter_stddev_s)
      : offset_s_{offset_s},
        drift_ppm_{drift_ppm},
        jitter_stddev_s_{jitter_stddev_s} {}

  /// The local timestamp this clock shows at true time `t_true` [s].
  double local_time(double t_true_s) const {
    return t_true_s + offset_s_ + drift_ppm_ * 1e-6 * t_true_s;
  }

  /// The true time at which this clock's local reading crosses
  /// `t_local_s` — i.e. when a "transmit at T" order actually fires.
  double true_time_of_local(double t_local_s) const {
    return (t_local_s - offset_s_) / (1.0 + drift_ppm_ * 1e-6);
  }

  /// One realization of an event scheduled at local time `t_local_s`,
  /// including per-event jitter.
  double fire_time(double t_local_s, Rng& rng) const {
    return true_time_of_local(t_local_s) +
           rng.gaussian(0.0, jitter_stddev_s_);
  }

  double offset() const { return offset_s_; }
  double drift_ppm() const { return drift_ppm_; }

  /// Returns a copy with the offset reduced to `residual_sigma` (what a
  /// time-sync protocol achieves), keeping drift and jitter.
  ClockModel corrected(double residual_sigma, Rng& rng) const;

 private:
  double offset_s_ = 0.0;
  double drift_ppm_ = 0.0;
  double jitter_stddev_s_ = 0.0;
};

}  // namespace densevlc::sync
