// Two-way PTP offset estimation, simulated at the message level.
//
// The timesync baseline elsewhere in this repo draws *residual* offsets
// from a calibrated distribution; this module derives where those
// residuals come from by actually simulating IEEE-1588-style exchanges:
//
//   t1: master sends SYNC            (master clock)
//   t2: slave receives SYNC          (slave clock)   t2 = t1 + d_ms + o
//   t3: slave sends DELAY_REQ        (slave clock)
//   t4: master receives DELAY_REQ    (master clock)  t4 = t3 + d_sm - o
//
//   offset_estimate = ((t2 - t1) - (t4 - t3)) / 2
//
// which is exact only when the path delays d_ms and d_sm are equal.
// Queueing jitter and asymmetry leave a residual — the few-microsecond
// floor the paper measures over its Ethernet fabric. Averaging multiple
// exchanges (as real PTP daemons do) narrows the jitter component but
// cannot remove asymmetry.
#pragma once

#include <cstddef>

#include "common/rng.hpp"

namespace densevlc::sync {

/// Network-path characteristics of the PTP exchanges.
struct PtpLinkConfig {
  double base_delay_s = 50e-6;       ///< symmetric propagation + stack
  double jitter_mean_s = 4e-6;       ///< exponential queueing jitter mean,
                                     ///< drawn independently per message
  double asymmetry_s = 1.5e-6;       ///< fixed extra delay on the
                                     ///< master->slave direction (switch
                                     ///< port rates, stack differences)
  double timestamp_jitter_s = 0.3e-6;///< timestamping granularity sigma
};

/// One synchronization round.
struct PtpResult {
  double true_offset_s = 0.0;      ///< the slave clock's actual offset
  double estimated_offset_s = 0.0; ///< what the exchange concluded
  double residual_s = 0.0;         ///< estimate - truth (signed)
};

/// Simulates one two-way exchange for a slave whose clock leads the
/// master by `true_offset_s`.
PtpResult ptp_exchange(double true_offset_s, const PtpLinkConfig& link,
                       Rng& rng);

/// Simulates a full synchronization: `exchanges` rounds, offset estimate
/// = mean of the per-round estimates (what a PTP servo converges to).
/// Returns the *residual* clock error after correction [s, signed].
double ptp_residual_after_sync(double true_offset_s,
                               const PtpLinkConfig& link,
                               std::size_t exchanges, Rng& rng);

/// The analytic residual floor: half the path asymmetry (what averaging
/// cannot remove).
double ptp_asymmetry_floor(const PtpLinkConfig& link);

}  // namespace densevlc::sync
