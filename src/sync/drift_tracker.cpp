#include "sync/drift_tracker.hpp"

namespace densevlc::sync {

void DriftTracker::observe(double nominal_s, double local_s) {
  samples_.push_back({nominal_s, local_s});
  while (samples_.size() > window_) samples_.pop_front();
}

double DriftTracker::drift_ppm() const {
  if (samples_.size() < 2) return 0.0;
  // Least-squares slope of local over nominal.
  double mean_n = 0.0;
  double mean_l = 0.0;
  for (const auto& s : samples_) {
    mean_n += s.nominal;
    mean_l += s.local;
  }
  const auto count = static_cast<double>(samples_.size());
  mean_n /= count;
  mean_l /= count;
  double num = 0.0;
  double den = 0.0;
  for (const auto& s : samples_) {
    num += (s.nominal - mean_n) * (s.local - mean_l);
    den += (s.nominal - mean_n) * (s.nominal - mean_n);
  }
  if (den <= 0.0) return 0.0;
  return (num / den - 1.0) * 1e6;
}

double DriftTracker::predict_local(double nominal_s) const {
  if (samples_.empty()) return nominal_s;
  const auto& last = samples_.back();
  if (samples_.size() < 2) {
    // Offset-only: assume nominal rate.
    return last.local + (nominal_s - last.nominal);
  }
  const double rate = 1.0 + drift_ppm() * 1e-6;
  return last.local + (nominal_s - last.nominal) * rate;
}

double DriftTracker::prediction_error(double nominal_s,
                                      double true_drift_ppm,
                                      double true_offset_s) const {
  const double true_local =
      true_offset_s + nominal_s * (1.0 + true_drift_ppm * 1e-6);
  return predict_local(nominal_s) - true_local;
}

}  // namespace densevlc::sync
