// Synchronization over non-line-of-sight VLC (paper Sec. 6.2, Fig. 14).
//
// For every beamspot the controller appoints a leading TX. The leader
// radiates a pilot chip pattern plus its own Manchester-coded ID; the
// light bounces off the floor and reaches the photodiodes of the other
// ceiling TXs, whose receive chains oversample at frx >> ftx. Each
// follower correlates against the known pilot, verifies the leader ID,
// and starts its own transmission a fixed guard period after the detected
// pilot end. The residual start error is set by the frx sampling grid
// (about half a sample period) plus noise-induced peak wander — an order
// of magnitude tighter than NTP/PTP, with no wiring and no absolute time.
//
// This module simulates that chain end to end: LED current waveform ->
// floor-bounce optical channel -> analog front-end -> ADC -> correlation
// detection -> follower start-time error.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "geom/vec3.hpp"
#include "optics/lambertian.hpp"
#include "optics/led_model.hpp"
#include "optics/nlos.hpp"
#include "phy/frontend.hpp"
#include "phy/ook.hpp"

namespace densevlc::sync {

/// Static configuration of one leader-follower NLOS sync link.
struct NlosSyncConfig {
  geom::Pose leader_pose = geom::ceiling_pose(1.25, 1.25, 2.8);
  geom::Pose follower_pose = geom::ceiling_pose(1.75, 1.25, 2.8);
  optics::LambertianEmitter emitter{};
  optics::Photodiode pd{};        ///< follower's ceiling-facing-down PD
  optics::FloorSurface floor{};
  optics::LedModel led{};         ///< leader's LED model
  double pilot_chip_rate_hz = 100e3;  ///< ftx
  std::size_t tx_samples_per_chip = 40;  ///< leader DAC oversampling
  double swing_current_a = 0.9;   ///< pilot swing (full, for max range)
  phy::FrontEndConfig frontend{}; ///< follower receive chain (frx = ADC)
  double detect_threshold = 0.55; ///< normalized correlation floor
  std::uint8_t leader_id = 2;     ///< ID byte appended to the pilot
  /// Probability a pilot never reaches the follower at all (leader
  /// driver glitch, transient occlusion of the bounce path): the fault
  /// model's sync-pilot-loss knob. 0 keeps the draw stream untouched.
  double pilot_loss_probability = 0.0;
  std::vector<optics::FloorOccluder> occluders{};  ///< people/objects on
                                                   ///< the bounce path
};

/// One simulated detection attempt.
struct NlosDetection {
  bool detected = false;
  bool id_matches = false;
  double start_error_s = 0.0;  ///< follower start error vs. true pilot time
  double correlation = 0.0;
};

/// Simulates pilot emission, floor bounce, detection, and the follower's
/// quantized transmission start.
class NlosSynchronizer {
 public:
  explicit NlosSynchronizer(const NlosSyncConfig& cfg);

  const NlosSyncConfig& config() const { return cfg_; }

  /// The one-bounce channel gain of the configured geometry.
  double channel_gain() const { return gain_; }

  /// Runs one sync attempt. `rng` drives the front-end noise and the
  /// random sub-sample alignment of the pilot against the follower's
  /// sampling grid. The constant front-end group delay is calibrated out
  /// (the real system absorbs it into the guard period).
  NlosDetection simulate_once(Rng& rng);

  /// Measures the sync error distribution: runs `trials` attempts and
  /// returns the absolute start errors of successful detections [s].
  std::vector<double> measure_errors(std::size_t trials, Rng& rng);

 private:
  /// Builds the leader's pilot current waveform with `lead_in_chips` of
  /// bias ahead of it (sub-chip alignment comes from `frac` in [0,1)).
  dsp::Waveform pilot_waveform(double lead_in_chips, double frac) const;

  /// Pilot template (+1/-1) at the follower ADC rate.
  std::vector<double> pilot_template() const;

  NlosSyncConfig cfg_;
  double gain_ = 0.0;
  double group_delay_s_ = 0.0;  ///< calibrated constant chain delay
};

}  // namespace densevlc::sync
