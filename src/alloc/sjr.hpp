// Signal-to-Jamming-Ratio ranking heuristic (paper Sec. 5, Algorithm 1).
//
// The heuristic scores every (TX, RX) pair with
//
//   SJR_{i,j} = H_{i,j}^kappa / sum_{j'} H_{i,j'}
//
// where kappa tunes how much a strong own-channel outweighs interference
// caused at other receivers. It then repeatedly takes the globally best
// remaining pair, assigns that TX to that RX, and removes the TX from the
// search space, producing a ranked list of all N transmitters. Power is
// subsequently granted down the list (see assignment.hpp), implementing
// the paper's Insights 1-3 at a complexity of O(N^2 M) instead of a
// nonlinear program.
#pragma once

#include <cstddef>
#include <vector>

#include "channel/model.hpp"

namespace densevlc::alloc {

/// One entry of the ranking: TX `tx` is the `rank`-th transmitter to be
/// granted power, serving RX `rx`.
struct RankedTx {
  std::size_t tx = 0;
  std::size_t rx = 0;
  double sjr = 0.0;  ///< the score at selection time
};

/// Computes the full N x M SJR matrix (row-major, entry tx * M + rx).
/// TXs with no channel to any RX (all-zero row) score 0 everywhere.
std::vector<double> sjr_matrix(const channel::ChannelMatrix& h, double kappa);

/// Algorithm 1: produces the ranked TX list (length = num_tx), best first.
/// Deterministic: score ties break toward the lower TX index, then lower
/// RX index.
std::vector<RankedTx> rank_transmitters(const channel::ChannelMatrix& h,
                                        double kappa);

}  // namespace densevlc::alloc
