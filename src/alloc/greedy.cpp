#include "alloc/greedy.hpp"

#include "alloc/assignment.hpp"
#include "common/contracts.hpp"

namespace densevlc::alloc {

GreedyResult greedy_allocate(const channel::ChannelMatrix& h,
                             double power_budget_w,
                             const channel::LinkBudget& budget,
                             double max_swing_a) {
  DVLC_EXPECT(power_budget_w >= 0.0, "power budget must be non-negative");
  DVLC_EXPECT(max_swing_a > 0.0, "max swing must be positive");
  const std::size_t n = h.num_tx();
  const std::size_t m = h.num_rx();
  GreedyResult out;
  out.allocation = channel::Allocation{n, m};

  const double per_tx = full_swing_tx_power(max_swing_a, budget);
  double remaining = power_budget_w;
  std::vector<bool> used(n, false);
  double current_utility =
      channel::sum_log_utility(h, out.allocation, budget);

  while (remaining >= per_tx) {
    double best_utility = current_utility;
    std::size_t best_tx = n;
    std::size_t best_rx = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (used[j]) continue;
      for (std::size_t k = 0; k < m; ++k) {
        if (h.gain(j, k) <= 0.0) continue;
        out.allocation.set_swing(j, k, max_swing_a);
        const double utility =
            channel::sum_log_utility(h, out.allocation, budget);
        ++out.evaluations;
        out.allocation.set_swing(j, k, 0.0);
        if (utility > best_utility + 1e-12) {
          best_utility = utility;
          best_tx = j;
          best_rx = k;
        }
      }
    }
    if (best_tx == n) break;  // no grant improves the objective
    out.allocation.set_swing(best_tx, best_rx, max_swing_a);
    used[best_tx] = true;
    current_utility = best_utility;
    remaining -= per_tx;
    ++out.txs_assigned;
  }

  out.utility = current_utility;
  out.power_used_w = channel::total_comm_power(out.allocation, budget);
  return out;
}

}  // namespace densevlc::alloc
