#include "alloc/greedy.hpp"

#include <algorithm>
#include <limits>

#include "alloc/assignment.hpp"
#include "common/contracts.hpp"
#include "common/thread_pool.hpp"

namespace densevlc::alloc {

GreedyResult greedy_allocate(const channel::ChannelMatrix& h,
                             Watts power_budget,
                             const channel::LinkBudget& budget,
                             Amperes max_swing) {
  DVLC_EXPECT(power_budget >= Watts{0.0},
              "power budget must be non-negative");
  DVLC_EXPECT(max_swing > Amperes{0.0}, "max swing must be positive");
  const double max_swing_a = max_swing.value();
  const std::size_t n = h.num_tx();
  const std::size_t m = h.num_rx();
  GreedyResult out;
  out.allocation = channel::Allocation{n, m};

  const double per_tx = full_swing_tx_power(max_swing, budget).value();
  double remaining = power_budget.value();
  std::vector<bool> used(n, false);
  double current_utility =
      channel::sum_log_utility(h, out.allocation, budget);

  constexpr double kUnevaluated = -std::numeric_limits<double>::infinity();
  std::vector<double> candidate_utility(n * m, kUnevaluated);
  while (remaining >= per_tx) {
    // Evaluate every open (TX, RX) grant in parallel. Each candidate
    // scores an independent copy of the current allocation and writes its
    // own slot, so the utilities match the serial sweep bit for bit.
    std::fill(candidate_utility.begin(), candidate_utility.end(),
              kUnevaluated);
    parallel_for(0, n * m, [&](std::size_t idx) {
      const std::size_t j = idx / m;
      const std::size_t k = idx % m;
      if (used[j] || h.gain(j, k) <= 0.0) return;
      channel::Allocation trial = out.allocation;
      trial.set_swing(j, k, max_swing_a);
      candidate_utility[idx] = channel::sum_log_utility(h, trial, budget);
    });

    // Serial argmax in candidate order reproduces the serial tie-break
    // (first strictly-improving-by-margin candidate wins).
    double best_utility = current_utility;
    std::size_t best_tx = n;
    std::size_t best_rx = 0;
    for (std::size_t idx = 0; idx < n * m; ++idx) {
      const double utility = candidate_utility[idx];
      if (utility == kUnevaluated) continue;
      ++out.evaluations;
      if (utility > best_utility + 1e-12) {
        best_utility = utility;
        best_tx = idx / m;
        best_rx = idx % m;
      }
    }
    if (best_tx == n) break;  // no grant improves the objective
    out.allocation.set_swing(best_tx, best_rx, max_swing_a);
    used[best_tx] = true;
    current_utility = best_utility;
    remaining -= per_tx;
    ++out.txs_assigned;
  }

  out.utility = current_utility;
  out.power_used_w = channel::total_comm_power(out.allocation, budget).value();
  return out;
}

}  // namespace densevlc::alloc
