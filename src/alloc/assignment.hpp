// Sequential full-swing power assignment over a ranked TX list.
//
// Insight 2 of the paper: near-optimal allocations need only two LED
// states — zero swing (illumination mode) or full swing Isw,max. Given a
// ranked list (from the SJR heuristic) and a communication power budget,
// this walks the list granting each TX full swing for its RX while the
// budget allows; optionally the first TX that no longer fits is granted
// the partial swing that exactly exhausts the budget.
#pragma once

#include <cstddef>
#include <vector>

#include "alloc/sjr.hpp"
#include "channel/model.hpp"

namespace densevlc::alloc {

/// Assignment policy knobs.
struct AssignmentOptions {
  double max_swing_a = 0.9;        ///< Isw,max per TX
  bool allow_partial_tail = false; ///< grant a fractional swing to the
                                   ///< first TX that exceeds the budget
};

/// Result of walking the ranked list under a budget.
struct AssignmentResult {
  channel::Allocation allocation;
  double power_used_w = 0.0;
  std::size_t txs_assigned = 0;  ///< TXs with nonzero swing
};

/// Grants power down `ranking` until `power_budget` is exhausted.
AssignmentResult assign_by_ranking(const std::vector<RankedTx>& ranking,
                                   std::size_t num_tx, std::size_t num_rx,
                                   Watts power_budget,
                                   const channel::LinkBudget& budget,
                                   const AssignmentOptions& opts);

/// The full heuristic pipeline of Sec. 5: rank with kappa, then assign.
AssignmentResult heuristic_allocate(const channel::ChannelMatrix& h,
                                    double kappa, Watts power_budget,
                                    const channel::LinkBudget& budget,
                                    const AssignmentOptions& opts);

/// Electrical power cost of one full-swing TX:
/// P_C,tx,max = r * (Isw,max / 2)^2  (74.42 mW with Table 1 values).
Watts full_swing_tx_power(Amperes max_swing,
                          const channel::LinkBudget& budget);

}  // namespace densevlc::alloc
