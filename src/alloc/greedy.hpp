// Greedy marginal-utility allocation — the classic alternative to the
// paper's SJR ranking.
//
// Instead of pre-ranking TXs by a channel-only score, greedy allocation
// repeatedly grants one full-swing TX to whichever (TX, RX) pair
// currently yields the largest increase of the sum-log objective,
// re-evaluating the SINR coupling after every grant. It is the natural
// "do the math every step" baseline: O(N^2 M) utility evaluations versus
// the heuristic's O(N^2 M) scalar comparisons — hundreds of times more
// arithmetic — and the ablation bench measures what that buys.
#pragma once

#include <cstddef>

#include "channel/model.hpp"

namespace densevlc::alloc {

/// Result of greedy allocation.
struct GreedyResult {
  channel::Allocation allocation;
  double utility = 0.0;
  double power_used_w = 0.0;
  std::size_t txs_assigned = 0;
  std::size_t evaluations = 0;  ///< utility computations performed
};

/// Grants full-swing TXs one at a time by best marginal utility until
/// the budget is exhausted or no grant improves the objective.
GreedyResult greedy_allocate(const channel::ChannelMatrix& h,
                             Watts power_budget,
                             const channel::LinkBudget& budget,
                             Amperes max_swing = Amperes{0.9});

}  // namespace densevlc::alloc
