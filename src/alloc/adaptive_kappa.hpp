// Personalized and adaptive kappa (paper Sec. 9, "Personalized and
// adaptive kappa").
//
// The baseline heuristic scores every TX with a single global kappa. In
// a real cell-free system TXs sit in very different interference
// situations, so the paper suggests per-TX kappas could push the
// heuristic closer to the optimum. This module implements that idea:
//
//   SJR_{i,j} = H_{i,j}^{kappa_i} / sum_{j'} H_{i,j'}
//
// with kappa_i tuned by deterministic coordinate descent — each round
// perturbs one TX's kappa up/down by a step and keeps the change when
// the resulting end-to-end allocation improves the utility under the
// given power budget. The search is budget-aware: it optimizes exactly
// what the controller will deploy.
#pragma once

#include <cstddef>
#include <vector>

#include "alloc/assignment.hpp"
#include "channel/model.hpp"

namespace densevlc::alloc {

/// Ranking with a per-TX kappa vector (kappas.size() == num_tx).
std::vector<RankedTx> rank_transmitters_per_tx(
    const channel::ChannelMatrix& h, const std::vector<double>& kappas);

/// Coordinate-descent search configuration.
struct AdaptiveKappaConfig {
  double initial_kappa = 1.3;  ///< starting point for every TX
  double step = 0.15;          ///< initial perturbation size
  double min_step = 0.02;      ///< halt when the step shrinks below this
  double kappa_min = 0.5;      ///< search box
  double kappa_max = 2.5;
  std::size_t max_rounds = 8;  ///< full passes over the TXs
};

/// Result of the personalization search.
struct AdaptiveKappaResult {
  std::vector<double> kappas;       ///< per-TX, length num_tx
  channel::Allocation allocation;   ///< allocation under those kappas
  double utility = 0.0;
  double baseline_utility = 0.0;    ///< uniform initial_kappa for reference
  std::size_t evaluations = 0;      ///< allocations scored during search
};

/// Runs the search for the given channel and power budget.
AdaptiveKappaResult personalize_kappa(const channel::ChannelMatrix& h,
                                      Watts power_budget,
                                      const channel::LinkBudget& budget,
                                      const AssignmentOptions& opts,
                                      const AdaptiveKappaConfig& cfg = {});

}  // namespace densevlc::alloc
