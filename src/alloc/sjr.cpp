#include "alloc/sjr.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace densevlc::alloc {

std::vector<double> sjr_matrix(const channel::ChannelMatrix& h,
                               double kappa) {
  DVLC_EXPECT(kappa >= 0.0, "SJR exponent kappa must be non-negative");
  const std::size_t n = h.num_tx();
  const std::size_t m = h.num_rx();
  std::vector<double> out(n * m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < m; ++j) row_sum += h.gain(i, j);
    if (row_sum <= 0.0) continue;  // TX reaches no RX: score stays 0
    for (std::size_t j = 0; j < m; ++j) {
      const double gain = h.gain(i, j);
      out[i * m + j] = gain > 0.0 ? std::pow(gain, kappa) / row_sum : 0.0;
    }
  }
  return out;
}

std::vector<RankedTx> rank_transmitters(const channel::ChannelMatrix& h,
                                        double kappa) {
  const std::size_t n = h.num_tx();
  const std::size_t m = h.num_rx();
  const auto sjr = sjr_matrix(h, kappa);

  std::vector<RankedTx> ranking;
  ranking.reserve(n);
  std::vector<bool> tx_used(n, false);
  for (std::size_t round = 0; round < n; ++round) {
    std::size_t best_tx = 0;
    std::size_t best_rx = 0;
    double best_score = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (tx_used[i]) continue;
      for (std::size_t j = 0; j < m; ++j) {
        const double score = sjr[i * m + j];
        if (score > best_score) {
          best_score = score;
          best_tx = i;
          best_rx = j;
        }
      }
    }
    tx_used[best_tx] = true;
    ranking.push_back({best_tx, best_rx, best_score});
  }
  DVLC_ASSERT(ranking.size() == n, "ranking must cover every TX exactly once");
  return ranking;
}

}  // namespace densevlc::alloc
