#include "alloc/adaptive_kappa.hpp"

#include <algorithm>
#include <cmath>

namespace densevlc::alloc {

std::vector<RankedTx> rank_transmitters_per_tx(
    const channel::ChannelMatrix& h, const std::vector<double>& kappas) {
  const std::size_t n = h.num_tx();
  const std::size_t m = h.num_rx();

  std::vector<double> sjr(n * m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < m; ++j) row_sum += h.gain(i, j);
    if (row_sum <= 0.0) continue;
    for (std::size_t j = 0; j < m; ++j) {
      const double gain = h.gain(i, j);
      sjr[i * m + j] =
          gain > 0.0 ? std::pow(gain, kappas[i]) / row_sum : 0.0;
    }
  }

  std::vector<RankedTx> ranking;
  ranking.reserve(n);
  std::vector<bool> used(n, false);
  for (std::size_t round = 0; round < n; ++round) {
    std::size_t best_tx = 0;
    std::size_t best_rx = 0;
    double best_score = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      for (std::size_t j = 0; j < m; ++j) {
        if (sjr[i * m + j] > best_score) {
          best_score = sjr[i * m + j];
          best_tx = i;
          best_rx = j;
        }
      }
    }
    used[best_tx] = true;
    ranking.push_back({best_tx, best_rx, best_score});
  }
  return ranking;
}

AdaptiveKappaResult personalize_kappa(const channel::ChannelMatrix& h,
                                      Watts power_budget,
                                      const channel::LinkBudget& budget,
                                      const AssignmentOptions& opts,
                                      const AdaptiveKappaConfig& cfg) {
  const std::size_t n = h.num_tx();
  AdaptiveKappaResult out;
  out.kappas.assign(n, cfg.initial_kappa);

  auto evaluate = [&](const std::vector<double>& kappas) {
    const auto ranking = rank_transmitters_per_tx(h, kappas);
    const auto res = assign_by_ranking(ranking, n, h.num_rx(),
                                       power_budget, budget, opts);
    ++out.evaluations;
    return std::pair{channel::sum_log_utility(h, res.allocation, budget),
                     res.allocation};
  };

  auto [best_utility, best_alloc] = evaluate(out.kappas);
  out.baseline_utility = best_utility;

  double step = cfg.step;
  for (std::size_t round = 0; round < cfg.max_rounds; ++round) {
    bool improved = false;
    for (std::size_t j = 0; j < n; ++j) {
      for (const double direction : {+1.0, -1.0}) {
        const double candidate = std::clamp(
            out.kappas[j] + direction * step, cfg.kappa_min, cfg.kappa_max);
        if (candidate == out.kappas[j]) continue;
        std::vector<double> trial = out.kappas;
        trial[j] = candidate;
        auto [utility, alloc] = evaluate(trial);
        if (utility > best_utility + 1e-12) {
          best_utility = utility;
          best_alloc = std::move(alloc);
          out.kappas = std::move(trial);
          improved = true;
          break;  // take the first improving direction for this TX
        }
      }
    }
    if (!improved) {
      step /= 2.0;
      if (step < cfg.min_step) break;
    }
  }

  out.allocation = std::move(best_alloc);
  out.utility = best_utility;
  return out;
}

}  // namespace densevlc::alloc
