// Baseline allocation policies the paper compares against (Sec. 8.3).
//
// - Nearest-TX (SISO): each RX is served only by its strongest TX, all
//   other LEDs stay in illumination mode. 4 assigned TXs total.
// - All-TXs (D-MISO): position-independent dense service — each RX is
//   served by its `surrounding` strongest TXs (9 in the paper's setup,
//   i.e. the 3x3 neighbourhood), every selected TX at full swing. TXs
//   whose strongest RX differs are still assigned per-RX, so the total
//   power scales with the number of RXs times the group size.
#pragma once

#include <cstddef>

#include "channel/model.hpp"

namespace densevlc::alloc {

/// Baseline operating point: the allocation plus its cost.
struct BaselineResult {
  channel::Allocation allocation;
  double power_used_w = 0.0;
};

/// SISO: strongest TX per RX at full swing. A TX that is strongest for two
/// RXs serves only the one with the higher gain; the loser falls back to
/// its next-best unassigned TX.
BaselineResult siso_nearest_tx(const channel::ChannelMatrix& h,
                               Amperes max_swing,
                               const channel::LinkBudget& budget);

/// D-MISO: each RX is served by its `group_size` strongest TXs (ties on
/// ownership resolved toward the higher gain; each TX serves exactly one
/// RX). With group_size = 9 this reproduces the paper's "9 surrounding
/// TXs" configuration.
BaselineResult dmiso_all_tx(const channel::ChannelMatrix& h,
                            std::size_t group_size, Amperes max_swing,
                            const channel::LinkBudget& budget);

}  // namespace densevlc::alloc
