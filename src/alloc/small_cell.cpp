#include "alloc/small_cell.hpp"

#include <algorithm>

#include "alloc/assignment.hpp"

namespace densevlc::alloc {

std::size_t CellPartition::cell_of(double x, double y) const {
  const double cw = room.width / static_cast<double>(cells_x);
  const double ch = room.depth / static_cast<double>(cells_y);
  auto cx = static_cast<std::size_t>(std::clamp(
      x / cw, 0.0, static_cast<double>(cells_x) - 1.0));
  auto cy = static_cast<std::size_t>(std::clamp(
      y / ch, 0.0, static_cast<double>(cells_y) - 1.0));
  return cy * cells_x + cx;
}

SmallCellResult small_cell_allocate(
    const channel::ChannelMatrix& h, const CellPartition& cells,
    const std::vector<geom::Pose>& tx_poses,
    const std::vector<geom::Vec3>& rx_positions, Watts power_budget,
    Amperes max_swing, const channel::LinkBudget& budget) {
  const double max_swing_a = max_swing.value();
  const std::size_t n = h.num_tx();
  const std::size_t m = h.num_rx();
  SmallCellResult out;
  out.allocation = channel::Allocation{n, m};
  out.rx_cell.resize(m);

  // Assign TXs and RXs to cells.
  std::vector<std::size_t> tx_cell(n);
  for (std::size_t j = 0; j < n; ++j) {
    tx_cell[j] = cells.cell_of(tx_poses[j].position.x,
                               tx_poses[j].position.y);
  }
  std::vector<std::vector<std::size_t>> cell_rxs(cells.cell_count());
  for (std::size_t k = 0; k < m; ++k) {
    out.rx_cell[k] = cells.cell_of(rx_positions[k].x, rx_positions[k].y);
    cell_rxs[out.rx_cell[k]].push_back(k);
  }

  std::size_t occupied = 0;
  for (const auto& rxs : cell_rxs) {
    if (!rxs.empty()) ++occupied;
  }
  if (occupied == 0) return out;
  const double per_cell_budget =
      power_budget.value() / static_cast<double>(occupied);
  const double per_tx = full_swing_tx_power(max_swing, budget).value();

  // Within each occupied cell, grant its TXs to its RXs best-gain first.
  for (std::size_t c = 0; c < cells.cell_count(); ++c) {
    if (cell_rxs[c].empty()) continue;
    struct Pair {
      std::size_t tx;
      std::size_t rx;
      double gain;
    };
    std::vector<Pair> pairs;
    for (std::size_t j = 0; j < n; ++j) {
      if (tx_cell[j] != c) continue;
      for (std::size_t k : cell_rxs[c]) {
        if (h.gain(j, k) > 0.0) pairs.push_back({j, k, h.gain(j, k)});
      }
    }
    std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
      if (a.gain != b.gain) return a.gain > b.gain;
      if (a.tx != b.tx) return a.tx < b.tx;
      return a.rx < b.rx;
    });

    double remaining = per_cell_budget;
    std::vector<bool> tx_used(n, false);
    for (const auto& p : pairs) {
      if (tx_used[p.tx] || remaining < per_tx) continue;
      out.allocation.set_swing(p.tx, p.rx, max_swing_a);
      tx_used[p.tx] = true;
      remaining -= per_tx;
    }
  }

  out.power_used_w = channel::total_comm_power(out.allocation, budget).value();
  return out;
}

}  // namespace densevlc::alloc
