#include "alloc/baselines.hpp"

#include <algorithm>
#include <vector>

namespace densevlc::alloc {
namespace {

struct Candidate {
  std::size_t tx;
  std::size_t rx;
  double gain;
};

/// Greedy gain-ordered matching: every TX serves at most one RX; each RX
/// receives at most `per_rx` TXs.
channel::Allocation match_by_gain(const channel::ChannelMatrix& h,
                                  std::size_t per_rx, double max_swing_a) {
  const std::size_t n = h.num_tx();
  const std::size_t m = h.num_rx();
  std::vector<Candidate> candidates;
  candidates.reserve(n * m);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < m; ++k) {
      if (h.gain(j, k) > 0.0) candidates.push_back({j, k, h.gain(j, k)});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.gain != b.gain) return a.gain > b.gain;
              if (a.tx != b.tx) return a.tx < b.tx;
              return a.rx < b.rx;
            });

  channel::Allocation alloc{n, m};
  std::vector<bool> tx_used(n, false);
  std::vector<std::size_t> rx_count(m, 0);
  for (const auto& c : candidates) {
    if (tx_used[c.tx] || rx_count[c.rx] >= per_rx) continue;
    alloc.set_swing(c.tx, c.rx, max_swing_a);
    tx_used[c.tx] = true;
    ++rx_count[c.rx];
  }
  return alloc;
}

}  // namespace

BaselineResult siso_nearest_tx(const channel::ChannelMatrix& h,
                               Amperes max_swing,
                               const channel::LinkBudget& budget) {
  BaselineResult out;
  out.allocation = match_by_gain(h, 1, max_swing.value());
  out.power_used_w = channel::total_comm_power(out.allocation, budget).value();
  return out;
}

BaselineResult dmiso_all_tx(const channel::ChannelMatrix& h,
                            std::size_t group_size, Amperes max_swing,
                            const channel::LinkBudget& budget) {
  BaselineResult out;
  out.allocation = match_by_gain(h, group_size, max_swing.value());
  out.power_used_w = channel::total_comm_power(out.allocation, budget).value();
  return out;
}

}  // namespace densevlc::alloc
