// Continuous solver for the power-allocation program (paper Eq. 5-7).
//
//   maximize   sum_i log(B log2(1 + SINR_i))
//   over       I^{j,k} >= 0
//   subject to sum_k I^{j,k} <= Isw,max            (per TX)
//              sum_j r (sum_k I^{j,k} / 2)^2 <= P  (total budget)
//
// The paper solves this with Matlab's fmincon (165 s for 36x4). We use
// multi-start projected gradient ascent with an analytic gradient and
// backtracking line search: gradients of the SINR expression are cheap in
// closed form, and the feasible set admits a fast approximate projection
// (clamp to the nonnegative orthant, rescale over-long rows, rescale
// everything when the power cap is exceeded — each step only ever shrinks
// the iterate, so feasibility is preserved). Heuristic solutions for a
// sweep of kappa values seed some of the starts, guaranteeing the solver
// never returns less utility than the heuristic.
#pragma once

#include <cstddef>

#include "channel/model.hpp"
#include "common/rng.hpp"

namespace densevlc::alloc {

/// Solver knobs. Defaults are tuned for the 36x4 evaluation setup.
struct OptimalSolverConfig {
  std::size_t max_iterations = 400;   ///< gradient steps per start
  std::size_t random_starts = 4;      ///< random feasible seeds
  double initial_step = 0.05;         ///< [A] first trial step length
  double min_step = 1e-7;             ///< stop when line search collapses
  double max_swing_a = 0.9;           ///< Isw,max
  std::uint64_t seed = 0x5EEDBEEF;    ///< randomness for the starts
};

/// Solution bundle.
struct OptimalResult {
  channel::Allocation allocation;
  double utility = 0.0;       ///< achieved sum-log objective
  double power_used_w = 0.0;  ///< achieved P_C,tot
  std::size_t iterations = 0; ///< gradient steps across all starts
};

/// Solves Eq. (5)-(7) for the given channel and power budget.
OptimalResult solve_optimal(const channel::ChannelMatrix& h,
                            Watts power_budget,
                            const channel::LinkBudget& budget,
                            const OptimalSolverConfig& cfg = {});

/// Analytic gradient of the utility with respect to every swing entry
/// (row-major N x M). Exposed for tests (finite-difference verification).
void utility_gradient(const channel::ChannelMatrix& h,
                      const channel::Allocation& alloc,
                      const channel::LinkBudget& budget,
                      std::vector<double>& grad_out);

/// Projects `alloc` onto the feasible set in place (nonnegativity, per-TX
/// row cap, total power cap). Exposed for tests.
void project_feasible(channel::Allocation& alloc, Watts power_budget,
                      Amperes max_swing, const channel::LinkBudget& budget);

/// Result of a binary-rounding polish pass.
struct PolishResult {
  channel::Allocation allocation;
  double utility = 0.0;
  double power_used_w = 0.0;
  std::size_t rounded_up = 0;    ///< TXs promoted to full swing
  std::size_t rounded_down = 0;  ///< TXs demoted to zero
};

/// Implements Insight 2 as a post-pass: every TX with fractional total
/// swing is rounded to either zero or full swing toward its dominant RX —
/// whichever change does not reduce utility while staying within the
/// power budget. TXs are visited in ascending total-swing order so weak
/// fractional assignments are resolved first. The result is an
/// allocation in which every TX is binary (illumination-only or
/// full-swing), as the practical DenseVLC hardware requires.
PolishResult polish_binary(const channel::ChannelMatrix& h,
                           const channel::Allocation& start,
                           Watts power_budget,
                           const channel::LinkBudget& budget,
                           Amperes max_swing = Amperes{0.9});

}  // namespace densevlc::alloc
