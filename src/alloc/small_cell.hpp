// Small-cell baseline (paper Sec. 1: cell-free "facilitates mobility and
// improves the dynamic performance, compared to the conventional small
// cell-based design").
//
// The room is partitioned into a fixed grid of cells; each cell owns the
// TXs whose positions fall inside it, and serves only RXs located in the
// same cell (each RX gets its cell's strongest TXs at full swing, up to
// the per-cell power share). A moving receiver is handed over between
// cells when it crosses a boundary — with the throughput dips at cell
// edges that motivate the cell-free design.
#pragma once

#include <cstddef>
#include <vector>

#include "channel/model.hpp"
#include "geom/grid.hpp"
#include "geom/vec3.hpp"

namespace densevlc::alloc {

/// A fixed partition of the room into cells_x x cells_y rectangles.
struct CellPartition {
  geom::Room room{};
  std::size_t cells_x = 2;
  std::size_t cells_y = 2;

  std::size_t cell_count() const { return cells_x * cells_y; }

  /// Cell owning point (x, y) (edges go to the lower-index cell;
  /// out-of-room points clamp).
  std::size_t cell_of(double x, double y) const;
};

/// Small-cell allocation: every RX is served only by TXs of its own
/// cell, best-gain first, within `power_budget_w` split equally across
/// *occupied* cells. TXs outside occupied cells stay dark.
struct SmallCellResult {
  channel::Allocation allocation;
  double power_used_w = 0.0;
  std::vector<std::size_t> rx_cell;  ///< cell id per RX
};

SmallCellResult small_cell_allocate(
    const channel::ChannelMatrix& h, const CellPartition& cells,
    const std::vector<geom::Pose>& tx_poses,
    const std::vector<geom::Vec3>& rx_positions, Watts power_budget,
    Amperes max_swing, const channel::LinkBudget& budget);

}  // namespace densevlc::alloc
