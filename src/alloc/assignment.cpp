#include "alloc/assignment.hpp"

#include <cmath>

namespace densevlc::alloc {

Watts full_swing_tx_power(Amperes max_swing,
                          const channel::LinkBudget& budget) {
  return channel::tx_comm_power(max_swing, budget);
}

AssignmentResult assign_by_ranking(const std::vector<RankedTx>& ranking,
                                   std::size_t num_tx, std::size_t num_rx,
                                   Watts power_budget,
                                   const channel::LinkBudget& budget,
                                   const AssignmentOptions& opts) {
  AssignmentResult out;
  out.allocation = channel::Allocation{num_tx, num_rx};
  const Watts per_tx =
      full_swing_tx_power(Amperes{opts.max_swing_a}, budget);

  Watts remaining = power_budget;
  for (const RankedTx& entry : ranking) {
    if (entry.sjr <= 0.0) break;  // TX reaches no RX; so will the rest
    if (remaining >= per_tx) {
      out.allocation.set_swing(entry.tx, entry.rx, opts.max_swing_a);
      remaining -= per_tx;
      ++out.txs_assigned;
      continue;
    }
    if (opts.allow_partial_tail && remaining > Watts{0.0}) {
      // r * (Isw/2)^2 = remaining  =>  Isw = 2 sqrt(remaining / r) — the
      // W / ohm = A^2 quotient sqrt()s back to amperes in the type system.
      const Amperes partial =
          2.0 * densevlc::sqrt(remaining / budget.dynamic_resistance());
      if (partial > Amperes{0.0}) {
        out.allocation.set_swing(entry.tx, entry.rx,
                                 std::min(partial.value(),
                                          opts.max_swing_a));
        remaining -= channel::tx_comm_power(
            Amperes{out.allocation.swing(entry.tx, entry.rx)}, budget);
        ++out.txs_assigned;
      }
    }
    break;
  }
  out.power_used_w = (power_budget - remaining).value();
  return out;
}

AssignmentResult heuristic_allocate(const channel::ChannelMatrix& h,
                                    double kappa, Watts power_budget,
                                    const channel::LinkBudget& budget,
                                    const AssignmentOptions& opts) {
  const auto ranking = rank_transmitters(h, kappa);
  return assign_by_ranking(ranking, h.num_tx(), h.num_rx(), power_budget,
                           budget, opts);
}

}  // namespace densevlc::alloc
