#include "alloc/assignment.hpp"

#include <cmath>

namespace densevlc::alloc {

double full_swing_tx_power(double max_swing_a,
                           const channel::LinkBudget& budget) {
  return channel::tx_comm_power(max_swing_a, budget);
}

AssignmentResult assign_by_ranking(const std::vector<RankedTx>& ranking,
                                   std::size_t num_tx, std::size_t num_rx,
                                   double power_budget_w,
                                   const channel::LinkBudget& budget,
                                   const AssignmentOptions& opts) {
  AssignmentResult out;
  out.allocation = channel::Allocation{num_tx, num_rx};
  const double per_tx = full_swing_tx_power(opts.max_swing_a, budget);

  double remaining = power_budget_w;
  for (const RankedTx& entry : ranking) {
    if (entry.sjr <= 0.0) break;  // TX reaches no RX; so will the rest
    if (remaining >= per_tx) {
      out.allocation.set_swing(entry.tx, entry.rx, opts.max_swing_a);
      remaining -= per_tx;
      ++out.txs_assigned;
      continue;
    }
    if (opts.allow_partial_tail && remaining > 0.0) {
      // r * (Isw/2)^2 = remaining  =>  Isw = 2 sqrt(remaining / r).
      const double partial =
          2.0 * std::sqrt(remaining / budget.dynamic_resistance_ohm);
      if (partial > 0.0) {
        out.allocation.set_swing(entry.tx, entry.rx,
                                 std::min(partial, opts.max_swing_a));
        remaining -= channel::tx_comm_power(
            out.allocation.swing(entry.tx, entry.rx), budget);
        ++out.txs_assigned;
      }
    }
    break;
  }
  out.power_used_w = power_budget_w - remaining;
  return out;
}

AssignmentResult heuristic_allocate(const channel::ChannelMatrix& h,
                                    double kappa, double power_budget_w,
                                    const channel::LinkBudget& budget,
                                    const AssignmentOptions& opts) {
  const auto ranking = rank_transmitters(h, kappa);
  return assign_by_ranking(ranking, h.num_tx(), h.num_rx(), power_budget_w,
                           budget, opts);
}

}  // namespace densevlc::alloc
