#include "alloc/optimal.hpp"

#include <algorithm>
#include <cmath>

#include "alloc/assignment.hpp"
#include "common/contracts.hpp"
#include "common/thread_pool.hpp"

namespace densevlc::alloc {
namespace {

/// Utility value with the same floor as channel::sum_log_utility.
double utility_of(const channel::ChannelMatrix& h,
                  const channel::Allocation& alloc,
                  const channel::LinkBudget& budget) {
  return channel::sum_log_utility(h, alloc, budget);
}

}  // namespace

void utility_gradient(const channel::ChannelMatrix& h,
                      const channel::Allocation& alloc,
                      const channel::LinkBudget& budget,
                      std::vector<double>& grad_out) {
  DVLC_EXPECT(alloc.num_tx() == h.num_tx() && alloc.num_rx() == h.num_rx(),
              "allocation shape must match the channel matrix");
  const std::size_t n = h.num_tx();
  const std::size_t m = h.num_rx();
  grad_out.assign(n * m, 0.0);

  const double scale = budget.responsivity_a_per_w *
                       budget.wall_plug_efficiency *
                       budget.dynamic_resistance_ohm;
  const double noise = budget.noise_psd_a2_per_hz * budget.bandwidth_hz;
  const double b = budget.bandwidth_hz;
  const double ln2 = std::log(2.0);

  // contributions[i][k] = scale * sum_j H_{j,i} (I^{j,k}/2)^2.
  std::vector<double> contrib(m * m, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < m; ++k) {
      const double half = alloc.swing(j, k) / 2.0;
      if (half <= 0.0) continue;
      const double q = half * half;
      for (std::size_t i = 0; i < m; ++i) {
        contrib[i * m + k] += scale * h.gain(j, i) * q;
      }
    }
  }

  // Per-RX pieces of the objective and its chain-rule factors.
  std::vector<double> signal(m), jam(m), denom(m), sinr_v(m), tput(m),
      dudt(m);
  for (std::size_t i = 0; i < m; ++i) {
    signal[i] = contrib[i * m + i];
    double j_acc = 0.0;
    for (std::size_t k = 0; k < m; ++k) {
      if (k != i) j_acc += contrib[i * m + k];
    }
    jam[i] = j_acc;
    denom[i] = noise + j_acc * j_acc;
    sinr_v[i] = denom[i] > 0.0 ? signal[i] * signal[i] / denom[i] : 0.0;
    tput[i] = b * std::log2(1.0 + sinr_v[i]);
    // d/dT of [log(max(T,1)) + min(0, T-1)]: 1/T above the floor, 1 below.
    dudt[i] = tput[i] > 1.0 ? 1.0 / tput[i] : 1.0;
  }

  // dU/dq_{j,k} then chain through dq/dI = I/2.
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < m; ++k) {
      const double i_jk = alloc.swing(j, k);
      double acc = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        const double h_ji = h.gain(j, i);
        if (h_ji <= 0.0) continue;
        double dsinr;
        if (k == i) {
          dsinr = 2.0 * signal[i] * scale * h_ji / denom[i];
        } else {
          dsinr = -2.0 * jam[i] * signal[i] * signal[i] * scale * h_ji /
                  (denom[i] * denom[i]);
        }
        const double dtds = (b / ln2) / (1.0 + sinr_v[i]);
        acc += dudt[i] * dtds * dsinr;
      }
      grad_out[j * m + k] = acc * (i_jk / 2.0);
    }
  }
}

void project_feasible(channel::Allocation& alloc, Watts power_budget,
                      Amperes max_swing,
                      const channel::LinkBudget& budget) {
  DVLC_EXPECT(power_budget >= Watts{0.0},
              "power budget must be non-negative");
  DVLC_EXPECT(max_swing >= Amperes{0.0}, "max swing must be non-negative");
  const double power_budget_w = power_budget.value();
  const double max_swing_a = max_swing.value();
  const std::size_t n = alloc.num_tx();
  const std::size_t m = alloc.num_rx();
  // Nonnegativity.
  for (double& v : alloc.data()) v = std::max(0.0, v);
  // Per-TX row cap.
  for (std::size_t j = 0; j < n; ++j) {
    const double total = alloc.tx_total_swing(j).value();
    if (total > max_swing_a && total > 0.0) {
      const double f = max_swing_a / total;
      for (std::size_t k = 0; k < m; ++k) {
        alloc.set_swing(j, k, alloc.swing(j, k) * f);
      }
    }
  }
  // Total power cap: power is quadratic in a global scale, so scale by
  // sqrt(budget / power).
  const double power = channel::total_comm_power(alloc, budget).value();
  if (power > power_budget_w && power > 0.0) {
    const double f = std::sqrt(power_budget_w / power);
    for (double& v : alloc.data()) v *= f;
  }
}

namespace {

/// One projected-gradient run from a feasible starting point.
OptimalResult run_from(const channel::ChannelMatrix& h,
                       channel::Allocation start, Watts power_budget,
                       const channel::LinkBudget& budget,
                       const OptimalSolverConfig& cfg) {
  const std::size_t n = h.num_tx();
  const std::size_t m = h.num_rx();
  project_feasible(start, power_budget, Amperes{cfg.max_swing_a}, budget);

  channel::Allocation current = start;
  double current_utility = utility_of(h, current, budget);
  double step = cfg.initial_step;
  std::vector<double> grad;
  std::size_t iters = 0;

  for (std::size_t it = 0; it < cfg.max_iterations; ++it) {
    ++iters;
    utility_gradient(h, current, budget, grad);
    // Normalize the gradient so `step` is a length in amperes.
    double norm = 0.0;
    for (double g : grad) norm += g * g;
    norm = std::sqrt(norm);
    if (norm < 1e-14) break;

    // Backtracking line search on the projected trial point.
    bool improved = false;
    while (step >= cfg.min_step) {
      channel::Allocation trial = current;
      auto& data = trial.data();
      for (std::size_t idx = 0; idx < n * m; ++idx) {
        data[idx] += step * grad[idx] / norm;
      }
      project_feasible(trial, power_budget, Amperes{cfg.max_swing_a}, budget);
      const double trial_utility = utility_of(h, trial, budget);
      if (trial_utility > current_utility + 1e-12) {
        current = std::move(trial);
        current_utility = trial_utility;
        improved = true;
        step *= 1.5;  // expand while the going is good
        break;
      }
      step *= 0.5;
    }
    if (!improved) break;
  }

  OptimalResult out;
  out.allocation = std::move(current);
  out.utility = current_utility;
  out.power_used_w = channel::total_comm_power(out.allocation, budget).value();
  out.iterations = iters;
  return out;
}

}  // namespace

PolishResult polish_binary(const channel::ChannelMatrix& h,
                           const channel::Allocation& start,
                           Watts power_budget,
                           const channel::LinkBudget& budget,
                           Amperes max_swing) {
  const double power_budget_w = power_budget.value();
  const double max_swing_a = max_swing.value();
  DVLC_EXPECT(start.num_tx() == h.num_tx() && start.num_rx() == h.num_rx(),
              "allocation shape must match the channel matrix");
  const std::size_t n = start.num_tx();
  const std::size_t m = start.num_rx();
  PolishResult out;
  out.allocation = start;

  // Visit TXs with fractional total swing, weakest first.
  std::vector<std::pair<double, std::size_t>> fractional;
  for (std::size_t j = 0; j < n; ++j) {
    const double total = out.allocation.tx_total_swing(j).value();
    if (total > 1e-9 && total < max_swing_a - 1e-9) {
      fractional.emplace_back(total, j);
    }
  }
  std::sort(fractional.begin(), fractional.end());

  double utility = utility_of(h, out.allocation, budget);
  for (const auto& [total, j] : fractional) {
    // Dominant RX of this TX's current (fractional) service.
    std::size_t dominant = 0;
    for (std::size_t k = 1; k < m; ++k) {
      if (out.allocation.swing(j, k) > out.allocation.swing(j, dominant)) {
        dominant = k;
      }
    }

    // Candidate A: demote to illumination-only.
    channel::Allocation down = out.allocation;
    for (std::size_t k = 0; k < m; ++k) down.set_swing(j, k, 0.0);
    const double u_down = utility_of(h, down, budget);

    // Candidate B: promote to full swing for the dominant RX (only if
    // the budget allows).
    double u_up = -1e300;
    channel::Allocation up = out.allocation;
    for (std::size_t k = 0; k < m; ++k) up.set_swing(j, k, 0.0);
    up.set_swing(j, dominant, max_swing_a);
    if (channel::total_comm_power(up, budget).value() <=
        power_budget_w + 1e-12) {
      u_up = utility_of(h, up, budget);
    }

    if (u_up >= u_down && u_up > -1e299) {
      out.allocation = std::move(up);
      utility = u_up;
      ++out.rounded_up;
    } else {
      out.allocation = std::move(down);
      utility = u_down;
      ++out.rounded_down;
    }
  }

  out.utility = utility;
  out.power_used_w = channel::total_comm_power(out.allocation, budget).value();
  return out;
}

OptimalResult solve_optimal(const channel::ChannelMatrix& h,
                            Watts power_budget,
                            const channel::LinkBudget& budget,
                            const OptimalSolverConfig& cfg) {
  const std::size_t n = h.num_tx();
  const std::size_t m = h.num_rx();
  Rng rng{cfg.seed};

  std::vector<channel::Allocation> starts;

  // Heuristic seeds across the kappa sweep (also serve as lower bounds).
  for (double kappa : {1.0, 1.2, 1.3, 1.5}) {
    AssignmentOptions opts;
    opts.max_swing_a = cfg.max_swing_a;
    opts.allow_partial_tail = true;
    starts.push_back(
        heuristic_allocate(h, kappa, power_budget, budget, opts)
            .allocation);
  }

  // A small uniform seed: every TX serves its best RX a little. This gives
  // the gradient a foothold everywhere (the all-zero point is stationary).
  {
    channel::Allocation uniform{n, m};
    for (std::size_t j = 0; j < n; ++j) {
      std::size_t best_rx = 0;
      double best_gain = -1.0;
      for (std::size_t k = 0; k < m; ++k) {
        if (h.gain(j, k) > best_gain) {
          best_gain = h.gain(j, k);
          best_rx = k;
        }
      }
      if (best_gain > 0.0) uniform.set_swing(j, best_rx, 0.1 * cfg.max_swing_a);
    }
    starts.push_back(std::move(uniform));
  }

  // Random feasible seeds.
  for (std::size_t s = 0; s < cfg.random_starts; ++s) {
    channel::Allocation random{n, m};
    for (std::size_t j = 0; j < n; ++j) {
      const auto k = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(m) - 1));
      random.set_swing(j, k, rng.uniform(0.0, cfg.max_swing_a));
    }
    starts.push_back(std::move(random));
  }

  // The starts were built serially above (so the RNG stream is untouched
  // by threading); each projected-gradient run is deterministic given its
  // start, and runs are independent — parallelize across them, then pick
  // the winner with the same ordered scan as the serial path (first
  // strictly-better run wins, so ties resolve to the lower start index).
  std::vector<OptimalResult> results(starts.size());
  parallel_for(0, starts.size(), [&](std::size_t s) {
    results[s] = run_from(h, std::move(starts[s]), power_budget, budget, cfg);
  });

  OptimalResult best;
  best.utility = -1e300;
  std::size_t total_iters = 0;
  for (auto& candidate : results) {
    total_iters += candidate.iterations;
    if (candidate.utility > best.utility) best = std::move(candidate);
  }
  best.iterations = total_iters;
  return best;
}

}  // namespace densevlc::alloc
