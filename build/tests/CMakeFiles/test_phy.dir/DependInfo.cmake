
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/phy/test_frame.cpp" "tests/CMakeFiles/test_phy.dir/phy/test_frame.cpp.o" "gcc" "tests/CMakeFiles/test_phy.dir/phy/test_frame.cpp.o.d"
  "/root/repo/tests/phy/test_frame_codec.cpp" "tests/CMakeFiles/test_phy.dir/phy/test_frame_codec.cpp.o" "gcc" "tests/CMakeFiles/test_phy.dir/phy/test_frame_codec.cpp.o.d"
  "/root/repo/tests/phy/test_frontend.cpp" "tests/CMakeFiles/test_phy.dir/phy/test_frontend.cpp.o" "gcc" "tests/CMakeFiles/test_phy.dir/phy/test_frontend.cpp.o.d"
  "/root/repo/tests/phy/test_gf256.cpp" "tests/CMakeFiles/test_phy.dir/phy/test_gf256.cpp.o" "gcc" "tests/CMakeFiles/test_phy.dir/phy/test_gf256.cpp.o.d"
  "/root/repo/tests/phy/test_interleaver.cpp" "tests/CMakeFiles/test_phy.dir/phy/test_interleaver.cpp.o" "gcc" "tests/CMakeFiles/test_phy.dir/phy/test_interleaver.cpp.o.d"
  "/root/repo/tests/phy/test_manchester.cpp" "tests/CMakeFiles/test_phy.dir/phy/test_manchester.cpp.o" "gcc" "tests/CMakeFiles/test_phy.dir/phy/test_manchester.cpp.o.d"
  "/root/repo/tests/phy/test_ofdm.cpp" "tests/CMakeFiles/test_phy.dir/phy/test_ofdm.cpp.o" "gcc" "tests/CMakeFiles/test_phy.dir/phy/test_ofdm.cpp.o.d"
  "/root/repo/tests/phy/test_ook.cpp" "tests/CMakeFiles/test_phy.dir/phy/test_ook.cpp.o" "gcc" "tests/CMakeFiles/test_phy.dir/phy/test_ook.cpp.o.d"
  "/root/repo/tests/phy/test_reed_solomon.cpp" "tests/CMakeFiles/test_phy.dir/phy/test_reed_solomon.cpp.o" "gcc" "tests/CMakeFiles/test_phy.dir/phy/test_reed_solomon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/dv_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/dv_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/dv_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/dv_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/dv_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/illum/CMakeFiles/dv_illum.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/dv_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/dv_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/dv_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
