file(REMOVE_RECURSE
  "CMakeFiles/test_phy.dir/phy/test_frame.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_frame.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/test_frame_codec.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_frame_codec.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/test_frontend.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_frontend.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/test_gf256.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_gf256.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/test_interleaver.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_interleaver.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/test_manchester.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_manchester.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/test_ofdm.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_ofdm.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/test_ook.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_ook.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/test_reed_solomon.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_reed_solomon.cpp.o.d"
  "test_phy"
  "test_phy.pdb"
  "test_phy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
