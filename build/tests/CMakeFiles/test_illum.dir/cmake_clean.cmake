file(REMOVE_RECURSE
  "CMakeFiles/test_illum.dir/illum/test_dimming.cpp.o"
  "CMakeFiles/test_illum.dir/illum/test_dimming.cpp.o.d"
  "CMakeFiles/test_illum.dir/illum/test_illuminance.cpp.o"
  "CMakeFiles/test_illum.dir/illum/test_illuminance.cpp.o.d"
  "test_illum"
  "test_illum.pdb"
  "test_illum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_illum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
