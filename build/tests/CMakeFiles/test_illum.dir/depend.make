# Empty dependencies file for test_illum.
# This may be replaced when dependencies are built.
