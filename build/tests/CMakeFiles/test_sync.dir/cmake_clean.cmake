file(REMOVE_RECURSE
  "CMakeFiles/test_sync.dir/sync/test_clock.cpp.o"
  "CMakeFiles/test_sync.dir/sync/test_clock.cpp.o.d"
  "CMakeFiles/test_sync.dir/sync/test_drift_tracker.cpp.o"
  "CMakeFiles/test_sync.dir/sync/test_drift_tracker.cpp.o.d"
  "CMakeFiles/test_sync.dir/sync/test_nlos_sync.cpp.o"
  "CMakeFiles/test_sync.dir/sync/test_nlos_sync.cpp.o.d"
  "CMakeFiles/test_sync.dir/sync/test_occlusion.cpp.o"
  "CMakeFiles/test_sync.dir/sync/test_occlusion.cpp.o.d"
  "CMakeFiles/test_sync.dir/sync/test_ptp.cpp.o"
  "CMakeFiles/test_sync.dir/sync/test_ptp.cpp.o.d"
  "CMakeFiles/test_sync.dir/sync/test_timesync.cpp.o"
  "CMakeFiles/test_sync.dir/sync/test_timesync.cpp.o.d"
  "test_sync"
  "test_sync.pdb"
  "test_sync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
