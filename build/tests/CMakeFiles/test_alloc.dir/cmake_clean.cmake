file(REMOVE_RECURSE
  "CMakeFiles/test_alloc.dir/alloc/test_adaptive_kappa.cpp.o"
  "CMakeFiles/test_alloc.dir/alloc/test_adaptive_kappa.cpp.o.d"
  "CMakeFiles/test_alloc.dir/alloc/test_assignment.cpp.o"
  "CMakeFiles/test_alloc.dir/alloc/test_assignment.cpp.o.d"
  "CMakeFiles/test_alloc.dir/alloc/test_baselines.cpp.o"
  "CMakeFiles/test_alloc.dir/alloc/test_baselines.cpp.o.d"
  "CMakeFiles/test_alloc.dir/alloc/test_greedy.cpp.o"
  "CMakeFiles/test_alloc.dir/alloc/test_greedy.cpp.o.d"
  "CMakeFiles/test_alloc.dir/alloc/test_optimal.cpp.o"
  "CMakeFiles/test_alloc.dir/alloc/test_optimal.cpp.o.d"
  "CMakeFiles/test_alloc.dir/alloc/test_polish.cpp.o"
  "CMakeFiles/test_alloc.dir/alloc/test_polish.cpp.o.d"
  "CMakeFiles/test_alloc.dir/alloc/test_sjr.cpp.o"
  "CMakeFiles/test_alloc.dir/alloc/test_sjr.cpp.o.d"
  "CMakeFiles/test_alloc.dir/alloc/test_small_cell.cpp.o"
  "CMakeFiles/test_alloc.dir/alloc/test_small_cell.cpp.o.d"
  "test_alloc"
  "test_alloc.pdb"
  "test_alloc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
