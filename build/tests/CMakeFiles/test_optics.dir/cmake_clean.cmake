file(REMOVE_RECURSE
  "CMakeFiles/test_optics.dir/optics/test_lambertian.cpp.o"
  "CMakeFiles/test_optics.dir/optics/test_lambertian.cpp.o.d"
  "CMakeFiles/test_optics.dir/optics/test_led_model.cpp.o"
  "CMakeFiles/test_optics.dir/optics/test_led_model.cpp.o.d"
  "CMakeFiles/test_optics.dir/optics/test_nlos.cpp.o"
  "CMakeFiles/test_optics.dir/optics/test_nlos.cpp.o.d"
  "test_optics"
  "test_optics.pdb"
  "test_optics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
