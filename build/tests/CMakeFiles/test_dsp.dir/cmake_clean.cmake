file(REMOVE_RECURSE
  "CMakeFiles/test_dsp.dir/dsp/test_adc.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_adc.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_biquad.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_biquad.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_butterworth.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_butterworth.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_correlate.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_correlate.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_fft.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_fft.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_snr_estimator.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_snr_estimator.cpp.o.d"
  "test_dsp"
  "test_dsp.pdb"
  "test_dsp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
