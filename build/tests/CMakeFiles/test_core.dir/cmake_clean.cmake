file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_arq_system.cpp.o"
  "CMakeFiles/test_core.dir/core/test_arq_system.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_beamspot.cpp.o"
  "CMakeFiles/test_core.dir/core/test_beamspot.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_controller.cpp.o"
  "CMakeFiles/test_core.dir/core/test_controller.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_coverage.cpp.o"
  "CMakeFiles/test_core.dir/core/test_coverage.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_energy.cpp.o"
  "CMakeFiles/test_core.dir/core/test_energy.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_failure_injection.cpp.o"
  "CMakeFiles/test_core.dir/core/test_failure_injection.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_prober.cpp.o"
  "CMakeFiles/test_core.dir/core/test_prober.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_system.cpp.o"
  "CMakeFiles/test_core.dir/core/test_system.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_trace.cpp.o"
  "CMakeFiles/test_core.dir/core/test_trace.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
