# Empty dependencies file for power_planner.
# This may be replaced when dependencies are built.
