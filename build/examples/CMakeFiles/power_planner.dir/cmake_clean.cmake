file(REMOVE_RECURSE
  "CMakeFiles/power_planner.dir/power_planner.cpp.o"
  "CMakeFiles/power_planner.dir/power_planner.cpp.o.d"
  "power_planner"
  "power_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
