# Empty dependencies file for frame_codec_tool.
# This may be replaced when dependencies are built.
