file(REMOVE_RECURSE
  "CMakeFiles/frame_codec_tool.dir/frame_codec_tool.cpp.o"
  "CMakeFiles/frame_codec_tool.dir/frame_codec_tool.cpp.o.d"
  "frame_codec_tool"
  "frame_codec_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_codec_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
