file(REMOVE_RECURSE
  "CMakeFiles/arq_reliability.dir/arq_reliability.cpp.o"
  "CMakeFiles/arq_reliability.dir/arq_reliability.cpp.o.d"
  "arq_reliability"
  "arq_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arq_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
