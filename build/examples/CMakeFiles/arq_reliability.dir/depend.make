# Empty dependencies file for arq_reliability.
# This may be replaced when dependencies are built.
