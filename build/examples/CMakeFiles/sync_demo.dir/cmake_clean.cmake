file(REMOVE_RECURSE
  "CMakeFiles/sync_demo.dir/sync_demo.cpp.o"
  "CMakeFiles/sync_demo.dir/sync_demo.cpp.o.d"
  "sync_demo"
  "sync_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
