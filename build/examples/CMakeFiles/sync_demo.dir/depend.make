# Empty dependencies file for sync_demo.
# This may be replaced when dependencies are built.
