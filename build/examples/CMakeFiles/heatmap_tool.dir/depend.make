# Empty dependencies file for heatmap_tool.
# This may be replaced when dependencies are built.
