file(REMOVE_RECURSE
  "CMakeFiles/heatmap_tool.dir/heatmap_tool.cpp.o"
  "CMakeFiles/heatmap_tool.dir/heatmap_tool.cpp.o.d"
  "heatmap_tool"
  "heatmap_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heatmap_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
