# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("geom")
subdirs("optics")
subdirs("illum")
subdirs("dsp")
subdirs("phy")
subdirs("channel")
subdirs("sync")
subdirs("sim")
subdirs("net")
subdirs("alloc")
subdirs("mac")
subdirs("core")
