file(REMOVE_RECURSE
  "CMakeFiles/dv_illum.dir/dimming.cpp.o"
  "CMakeFiles/dv_illum.dir/dimming.cpp.o.d"
  "CMakeFiles/dv_illum.dir/illuminance_map.cpp.o"
  "CMakeFiles/dv_illum.dir/illuminance_map.cpp.o.d"
  "libdv_illum.a"
  "libdv_illum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_illum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
