file(REMOVE_RECURSE
  "libdv_illum.a"
)
