# Empty dependencies file for dv_illum.
# This may be replaced when dependencies are built.
