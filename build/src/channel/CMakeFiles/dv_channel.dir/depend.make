# Empty dependencies file for dv_channel.
# This may be replaced when dependencies are built.
