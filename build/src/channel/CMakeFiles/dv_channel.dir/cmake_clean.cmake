file(REMOVE_RECURSE
  "CMakeFiles/dv_channel.dir/blockage.cpp.o"
  "CMakeFiles/dv_channel.dir/blockage.cpp.o.d"
  "CMakeFiles/dv_channel.dir/dynamics.cpp.o"
  "CMakeFiles/dv_channel.dir/dynamics.cpp.o.d"
  "CMakeFiles/dv_channel.dir/model.cpp.o"
  "CMakeFiles/dv_channel.dir/model.cpp.o.d"
  "libdv_channel.a"
  "libdv_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
