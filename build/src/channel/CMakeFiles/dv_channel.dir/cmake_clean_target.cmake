file(REMOVE_RECURSE
  "libdv_channel.a"
)
