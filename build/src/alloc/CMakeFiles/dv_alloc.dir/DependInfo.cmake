
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/adaptive_kappa.cpp" "src/alloc/CMakeFiles/dv_alloc.dir/adaptive_kappa.cpp.o" "gcc" "src/alloc/CMakeFiles/dv_alloc.dir/adaptive_kappa.cpp.o.d"
  "/root/repo/src/alloc/assignment.cpp" "src/alloc/CMakeFiles/dv_alloc.dir/assignment.cpp.o" "gcc" "src/alloc/CMakeFiles/dv_alloc.dir/assignment.cpp.o.d"
  "/root/repo/src/alloc/baselines.cpp" "src/alloc/CMakeFiles/dv_alloc.dir/baselines.cpp.o" "gcc" "src/alloc/CMakeFiles/dv_alloc.dir/baselines.cpp.o.d"
  "/root/repo/src/alloc/greedy.cpp" "src/alloc/CMakeFiles/dv_alloc.dir/greedy.cpp.o" "gcc" "src/alloc/CMakeFiles/dv_alloc.dir/greedy.cpp.o.d"
  "/root/repo/src/alloc/optimal.cpp" "src/alloc/CMakeFiles/dv_alloc.dir/optimal.cpp.o" "gcc" "src/alloc/CMakeFiles/dv_alloc.dir/optimal.cpp.o.d"
  "/root/repo/src/alloc/sjr.cpp" "src/alloc/CMakeFiles/dv_alloc.dir/sjr.cpp.o" "gcc" "src/alloc/CMakeFiles/dv_alloc.dir/sjr.cpp.o.d"
  "/root/repo/src/alloc/small_cell.cpp" "src/alloc/CMakeFiles/dv_alloc.dir/small_cell.cpp.o" "gcc" "src/alloc/CMakeFiles/dv_alloc.dir/small_cell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/dv_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/dv_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/dv_optics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
