file(REMOVE_RECURSE
  "libdv_alloc.a"
)
