# Empty compiler generated dependencies file for dv_alloc.
# This may be replaced when dependencies are built.
