file(REMOVE_RECURSE
  "CMakeFiles/dv_alloc.dir/adaptive_kappa.cpp.o"
  "CMakeFiles/dv_alloc.dir/adaptive_kappa.cpp.o.d"
  "CMakeFiles/dv_alloc.dir/assignment.cpp.o"
  "CMakeFiles/dv_alloc.dir/assignment.cpp.o.d"
  "CMakeFiles/dv_alloc.dir/baselines.cpp.o"
  "CMakeFiles/dv_alloc.dir/baselines.cpp.o.d"
  "CMakeFiles/dv_alloc.dir/greedy.cpp.o"
  "CMakeFiles/dv_alloc.dir/greedy.cpp.o.d"
  "CMakeFiles/dv_alloc.dir/optimal.cpp.o"
  "CMakeFiles/dv_alloc.dir/optimal.cpp.o.d"
  "CMakeFiles/dv_alloc.dir/sjr.cpp.o"
  "CMakeFiles/dv_alloc.dir/sjr.cpp.o.d"
  "CMakeFiles/dv_alloc.dir/small_cell.cpp.o"
  "CMakeFiles/dv_alloc.dir/small_cell.cpp.o.d"
  "libdv_alloc.a"
  "libdv_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
