file(REMOVE_RECURSE
  "CMakeFiles/dv_sim.dir/event_queue.cpp.o"
  "CMakeFiles/dv_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/dv_sim.dir/mobility.cpp.o"
  "CMakeFiles/dv_sim.dir/mobility.cpp.o.d"
  "CMakeFiles/dv_sim.dir/scenario.cpp.o"
  "CMakeFiles/dv_sim.dir/scenario.cpp.o.d"
  "libdv_sim.a"
  "libdv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
