# Empty dependencies file for dv_sim.
# This may be replaced when dependencies are built.
