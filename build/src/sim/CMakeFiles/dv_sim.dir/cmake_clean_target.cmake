file(REMOVE_RECURSE
  "libdv_sim.a"
)
