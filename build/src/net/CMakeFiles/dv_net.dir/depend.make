# Empty dependencies file for dv_net.
# This may be replaced when dependencies are built.
