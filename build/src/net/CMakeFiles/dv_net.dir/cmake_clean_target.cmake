file(REMOVE_RECURSE
  "libdv_net.a"
)
