
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/links.cpp" "src/net/CMakeFiles/dv_net.dir/links.cpp.o" "gcc" "src/net/CMakeFiles/dv_net.dir/links.cpp.o.d"
  "/root/repo/src/net/queueing.cpp" "src/net/CMakeFiles/dv_net.dir/queueing.cpp.o" "gcc" "src/net/CMakeFiles/dv_net.dir/queueing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/dv_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/dv_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/dv_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
