file(REMOVE_RECURSE
  "CMakeFiles/dv_net.dir/links.cpp.o"
  "CMakeFiles/dv_net.dir/links.cpp.o.d"
  "CMakeFiles/dv_net.dir/queueing.cpp.o"
  "CMakeFiles/dv_net.dir/queueing.cpp.o.d"
  "libdv_net.a"
  "libdv_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
