file(REMOVE_RECURSE
  "CMakeFiles/dv_phy.dir/frame.cpp.o"
  "CMakeFiles/dv_phy.dir/frame.cpp.o.d"
  "CMakeFiles/dv_phy.dir/frame_codec.cpp.o"
  "CMakeFiles/dv_phy.dir/frame_codec.cpp.o.d"
  "CMakeFiles/dv_phy.dir/frontend.cpp.o"
  "CMakeFiles/dv_phy.dir/frontend.cpp.o.d"
  "CMakeFiles/dv_phy.dir/gf256.cpp.o"
  "CMakeFiles/dv_phy.dir/gf256.cpp.o.d"
  "CMakeFiles/dv_phy.dir/interleaver.cpp.o"
  "CMakeFiles/dv_phy.dir/interleaver.cpp.o.d"
  "CMakeFiles/dv_phy.dir/manchester.cpp.o"
  "CMakeFiles/dv_phy.dir/manchester.cpp.o.d"
  "CMakeFiles/dv_phy.dir/ofdm.cpp.o"
  "CMakeFiles/dv_phy.dir/ofdm.cpp.o.d"
  "CMakeFiles/dv_phy.dir/ook.cpp.o"
  "CMakeFiles/dv_phy.dir/ook.cpp.o.d"
  "CMakeFiles/dv_phy.dir/reed_solomon.cpp.o"
  "CMakeFiles/dv_phy.dir/reed_solomon.cpp.o.d"
  "libdv_phy.a"
  "libdv_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
