file(REMOVE_RECURSE
  "libdv_phy.a"
)
