# Empty dependencies file for dv_phy.
# This may be replaced when dependencies are built.
