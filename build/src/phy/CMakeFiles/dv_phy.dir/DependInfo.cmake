
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/frame.cpp" "src/phy/CMakeFiles/dv_phy.dir/frame.cpp.o" "gcc" "src/phy/CMakeFiles/dv_phy.dir/frame.cpp.o.d"
  "/root/repo/src/phy/frame_codec.cpp" "src/phy/CMakeFiles/dv_phy.dir/frame_codec.cpp.o" "gcc" "src/phy/CMakeFiles/dv_phy.dir/frame_codec.cpp.o.d"
  "/root/repo/src/phy/frontend.cpp" "src/phy/CMakeFiles/dv_phy.dir/frontend.cpp.o" "gcc" "src/phy/CMakeFiles/dv_phy.dir/frontend.cpp.o.d"
  "/root/repo/src/phy/gf256.cpp" "src/phy/CMakeFiles/dv_phy.dir/gf256.cpp.o" "gcc" "src/phy/CMakeFiles/dv_phy.dir/gf256.cpp.o.d"
  "/root/repo/src/phy/interleaver.cpp" "src/phy/CMakeFiles/dv_phy.dir/interleaver.cpp.o" "gcc" "src/phy/CMakeFiles/dv_phy.dir/interleaver.cpp.o.d"
  "/root/repo/src/phy/manchester.cpp" "src/phy/CMakeFiles/dv_phy.dir/manchester.cpp.o" "gcc" "src/phy/CMakeFiles/dv_phy.dir/manchester.cpp.o.d"
  "/root/repo/src/phy/ofdm.cpp" "src/phy/CMakeFiles/dv_phy.dir/ofdm.cpp.o" "gcc" "src/phy/CMakeFiles/dv_phy.dir/ofdm.cpp.o.d"
  "/root/repo/src/phy/ook.cpp" "src/phy/CMakeFiles/dv_phy.dir/ook.cpp.o" "gcc" "src/phy/CMakeFiles/dv_phy.dir/ook.cpp.o.d"
  "/root/repo/src/phy/reed_solomon.cpp" "src/phy/CMakeFiles/dv_phy.dir/reed_solomon.cpp.o" "gcc" "src/phy/CMakeFiles/dv_phy.dir/reed_solomon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/dv_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
