file(REMOVE_RECURSE
  "libdv_common.a"
)
