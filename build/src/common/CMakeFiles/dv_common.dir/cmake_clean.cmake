file(REMOVE_RECURSE
  "CMakeFiles/dv_common.dir/ini.cpp.o"
  "CMakeFiles/dv_common.dir/ini.cpp.o.d"
  "CMakeFiles/dv_common.dir/pgm.cpp.o"
  "CMakeFiles/dv_common.dir/pgm.cpp.o.d"
  "CMakeFiles/dv_common.dir/rng.cpp.o"
  "CMakeFiles/dv_common.dir/rng.cpp.o.d"
  "CMakeFiles/dv_common.dir/stats.cpp.o"
  "CMakeFiles/dv_common.dir/stats.cpp.o.d"
  "CMakeFiles/dv_common.dir/table.cpp.o"
  "CMakeFiles/dv_common.dir/table.cpp.o.d"
  "libdv_common.a"
  "libdv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
