
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/adc.cpp" "src/dsp/CMakeFiles/dv_dsp.dir/adc.cpp.o" "gcc" "src/dsp/CMakeFiles/dv_dsp.dir/adc.cpp.o.d"
  "/root/repo/src/dsp/biquad.cpp" "src/dsp/CMakeFiles/dv_dsp.dir/biquad.cpp.o" "gcc" "src/dsp/CMakeFiles/dv_dsp.dir/biquad.cpp.o.d"
  "/root/repo/src/dsp/butterworth.cpp" "src/dsp/CMakeFiles/dv_dsp.dir/butterworth.cpp.o" "gcc" "src/dsp/CMakeFiles/dv_dsp.dir/butterworth.cpp.o.d"
  "/root/repo/src/dsp/correlate.cpp" "src/dsp/CMakeFiles/dv_dsp.dir/correlate.cpp.o" "gcc" "src/dsp/CMakeFiles/dv_dsp.dir/correlate.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/dv_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/dv_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/snr_estimator.cpp" "src/dsp/CMakeFiles/dv_dsp.dir/snr_estimator.cpp.o" "gcc" "src/dsp/CMakeFiles/dv_dsp.dir/snr_estimator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
