file(REMOVE_RECURSE
  "libdv_dsp.a"
)
