file(REMOVE_RECURSE
  "CMakeFiles/dv_dsp.dir/adc.cpp.o"
  "CMakeFiles/dv_dsp.dir/adc.cpp.o.d"
  "CMakeFiles/dv_dsp.dir/biquad.cpp.o"
  "CMakeFiles/dv_dsp.dir/biquad.cpp.o.d"
  "CMakeFiles/dv_dsp.dir/butterworth.cpp.o"
  "CMakeFiles/dv_dsp.dir/butterworth.cpp.o.d"
  "CMakeFiles/dv_dsp.dir/correlate.cpp.o"
  "CMakeFiles/dv_dsp.dir/correlate.cpp.o.d"
  "CMakeFiles/dv_dsp.dir/fft.cpp.o"
  "CMakeFiles/dv_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/dv_dsp.dir/snr_estimator.cpp.o"
  "CMakeFiles/dv_dsp.dir/snr_estimator.cpp.o.d"
  "libdv_dsp.a"
  "libdv_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
