# Empty compiler generated dependencies file for dv_dsp.
# This may be replaced when dependencies are built.
