# Empty dependencies file for dv_geom.
# This may be replaced when dependencies are built.
