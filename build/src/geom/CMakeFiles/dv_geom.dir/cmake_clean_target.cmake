file(REMOVE_RECURSE
  "libdv_geom.a"
)
