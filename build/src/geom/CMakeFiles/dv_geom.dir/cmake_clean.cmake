file(REMOVE_RECURSE
  "CMakeFiles/dv_geom.dir/grid.cpp.o"
  "CMakeFiles/dv_geom.dir/grid.cpp.o.d"
  "libdv_geom.a"
  "libdv_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
