file(REMOVE_RECURSE
  "libdv_optics.a"
)
