# Empty compiler generated dependencies file for dv_optics.
# This may be replaced when dependencies are built.
