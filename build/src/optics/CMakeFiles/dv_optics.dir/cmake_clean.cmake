file(REMOVE_RECURSE
  "CMakeFiles/dv_optics.dir/lambertian.cpp.o"
  "CMakeFiles/dv_optics.dir/lambertian.cpp.o.d"
  "CMakeFiles/dv_optics.dir/led_model.cpp.o"
  "CMakeFiles/dv_optics.dir/led_model.cpp.o.d"
  "CMakeFiles/dv_optics.dir/nlos.cpp.o"
  "CMakeFiles/dv_optics.dir/nlos.cpp.o.d"
  "libdv_optics.a"
  "libdv_optics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_optics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
