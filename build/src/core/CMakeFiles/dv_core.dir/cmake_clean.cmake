file(REMOVE_RECURSE
  "CMakeFiles/dv_core.dir/beamspot.cpp.o"
  "CMakeFiles/dv_core.dir/beamspot.cpp.o.d"
  "CMakeFiles/dv_core.dir/controller.cpp.o"
  "CMakeFiles/dv_core.dir/controller.cpp.o.d"
  "CMakeFiles/dv_core.dir/coverage.cpp.o"
  "CMakeFiles/dv_core.dir/coverage.cpp.o.d"
  "CMakeFiles/dv_core.dir/energy.cpp.o"
  "CMakeFiles/dv_core.dir/energy.cpp.o.d"
  "CMakeFiles/dv_core.dir/prober.cpp.o"
  "CMakeFiles/dv_core.dir/prober.cpp.o.d"
  "CMakeFiles/dv_core.dir/system.cpp.o"
  "CMakeFiles/dv_core.dir/system.cpp.o.d"
  "CMakeFiles/dv_core.dir/trace.cpp.o"
  "CMakeFiles/dv_core.dir/trace.cpp.o.d"
  "libdv_core.a"
  "libdv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
