# Empty dependencies file for dv_mac.
# This may be replaced when dependencies are built.
