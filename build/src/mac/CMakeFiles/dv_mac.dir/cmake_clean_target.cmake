file(REMOVE_RECURSE
  "libdv_mac.a"
)
