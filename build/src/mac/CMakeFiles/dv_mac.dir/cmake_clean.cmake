file(REMOVE_RECURSE
  "CMakeFiles/dv_mac.dir/arq.cpp.o"
  "CMakeFiles/dv_mac.dir/arq.cpp.o.d"
  "CMakeFiles/dv_mac.dir/report.cpp.o"
  "CMakeFiles/dv_mac.dir/report.cpp.o.d"
  "libdv_mac.a"
  "libdv_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
