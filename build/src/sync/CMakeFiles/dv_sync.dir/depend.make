# Empty dependencies file for dv_sync.
# This may be replaced when dependencies are built.
