file(REMOVE_RECURSE
  "libdv_sync.a"
)
