
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/clock.cpp" "src/sync/CMakeFiles/dv_sync.dir/clock.cpp.o" "gcc" "src/sync/CMakeFiles/dv_sync.dir/clock.cpp.o.d"
  "/root/repo/src/sync/drift_tracker.cpp" "src/sync/CMakeFiles/dv_sync.dir/drift_tracker.cpp.o" "gcc" "src/sync/CMakeFiles/dv_sync.dir/drift_tracker.cpp.o.d"
  "/root/repo/src/sync/nlos_sync.cpp" "src/sync/CMakeFiles/dv_sync.dir/nlos_sync.cpp.o" "gcc" "src/sync/CMakeFiles/dv_sync.dir/nlos_sync.cpp.o.d"
  "/root/repo/src/sync/ptp.cpp" "src/sync/CMakeFiles/dv_sync.dir/ptp.cpp.o" "gcc" "src/sync/CMakeFiles/dv_sync.dir/ptp.cpp.o.d"
  "/root/repo/src/sync/timesync.cpp" "src/sync/CMakeFiles/dv_sync.dir/timesync.cpp.o" "gcc" "src/sync/CMakeFiles/dv_sync.dir/timesync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/dv_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/dv_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/dv_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/dv_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
