file(REMOVE_RECURSE
  "CMakeFiles/dv_sync.dir/clock.cpp.o"
  "CMakeFiles/dv_sync.dir/clock.cpp.o.d"
  "CMakeFiles/dv_sync.dir/drift_tracker.cpp.o"
  "CMakeFiles/dv_sync.dir/drift_tracker.cpp.o.d"
  "CMakeFiles/dv_sync.dir/nlos_sync.cpp.o"
  "CMakeFiles/dv_sync.dir/nlos_sync.cpp.o.d"
  "CMakeFiles/dv_sync.dir/ptp.cpp.o"
  "CMakeFiles/dv_sync.dir/ptp.cpp.o.d"
  "CMakeFiles/dv_sync.dir/timesync.cpp.o"
  "CMakeFiles/dv_sync.dir/timesync.cpp.o.d"
  "libdv_sync.a"
  "libdv_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
