file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_adaptive_kappa.dir/ext_adaptive_kappa.cpp.o"
  "CMakeFiles/bench_ext_adaptive_kappa.dir/ext_adaptive_kappa.cpp.o.d"
  "bench_ext_adaptive_kappa"
  "bench_ext_adaptive_kappa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_adaptive_kappa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
