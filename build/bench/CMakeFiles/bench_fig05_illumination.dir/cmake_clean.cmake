file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_illumination.dir/fig05_illumination.cpp.o"
  "CMakeFiles/bench_fig05_illumination.dir/fig05_illumination.cpp.o.d"
  "bench_fig05_illumination"
  "bench_fig05_illumination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_illumination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
