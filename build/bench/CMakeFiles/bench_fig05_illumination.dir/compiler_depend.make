# Empty compiler generated dependencies file for bench_fig05_illumination.
# This may be replaced when dependencies are built.
