file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_scenario3.dir/fig20_scenario3.cpp.o"
  "CMakeFiles/bench_fig20_scenario3.dir/fig20_scenario3.cpp.o.d"
  "CMakeFiles/bench_fig20_scenario3.dir/scenario_bench.cpp.o"
  "CMakeFiles/bench_fig20_scenario3.dir/scenario_bench.cpp.o.d"
  "bench_fig20_scenario3"
  "bench_fig20_scenario3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_scenario3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
