# Empty compiler generated dependencies file for bench_table4_sync_error.
# This may be replaced when dependencies are built.
