# Empty compiler generated dependencies file for bench_ablation_polish.
# This may be replaced when dependencies are built.
