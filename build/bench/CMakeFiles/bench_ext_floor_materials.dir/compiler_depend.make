# Empty compiler generated dependencies file for bench_ext_floor_materials.
# This may be replaced when dependencies are built.
