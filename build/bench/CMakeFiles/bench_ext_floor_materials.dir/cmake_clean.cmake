file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_floor_materials.dir/ext_floor_materials.cpp.o"
  "CMakeFiles/bench_ext_floor_materials.dir/ext_floor_materials.cpp.o.d"
  "bench_ext_floor_materials"
  "bench_ext_floor_materials.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_floor_materials.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
