file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_dimming.dir/ext_dimming.cpp.o"
  "CMakeFiles/bench_ext_dimming.dir/ext_dimming.cpp.o.d"
  "bench_ext_dimming"
  "bench_ext_dimming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dimming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
