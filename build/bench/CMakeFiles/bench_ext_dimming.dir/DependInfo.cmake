
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_dimming.cpp" "bench/CMakeFiles/bench_ext_dimming.dir/ext_dimming.cpp.o" "gcc" "bench/CMakeFiles/bench_ext_dimming.dir/ext_dimming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/dv_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/dv_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/dv_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/dv_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/dv_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/illum/CMakeFiles/dv_illum.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/dv_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/dv_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/dv_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
