# Empty compiler generated dependencies file for bench_ext_dimming.
# This may be replaced when dependencies are built.
