# Empty dependencies file for bench_ext_ofdm.
# This may be replaced when dependencies are built.
