file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_ofdm.dir/ext_ofdm.cpp.o"
  "CMakeFiles/bench_ext_ofdm.dir/ext_ofdm.cpp.o.d"
  "bench_ext_ofdm"
  "bench_ext_ofdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ofdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
