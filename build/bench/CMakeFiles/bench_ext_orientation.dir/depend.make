# Empty dependencies file for bench_ext_orientation.
# This may be replaced when dependencies are built.
