file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_orientation.dir/ext_orientation.cpp.o"
  "CMakeFiles/bench_ext_orientation.dir/ext_orientation.cpp.o.d"
  "bench_ext_orientation"
  "bench_ext_orientation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_orientation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
