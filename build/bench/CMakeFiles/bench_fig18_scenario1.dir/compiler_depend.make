# Empty compiler generated dependencies file for bench_fig18_scenario1.
# This may be replaced when dependencies are built.
