file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_iperf.dir/table5_iperf.cpp.o"
  "CMakeFiles/bench_table5_iperf.dir/table5_iperf.cpp.o.d"
  "bench_table5_iperf"
  "bench_table5_iperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_iperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
