file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_scenario2.dir/fig19_scenario2.cpp.o"
  "CMakeFiles/bench_fig19_scenario2.dir/fig19_scenario2.cpp.o.d"
  "CMakeFiles/bench_fig19_scenario2.dir/scenario_bench.cpp.o"
  "CMakeFiles/bench_fig19_scenario2.dir/scenario_bench.cpp.o.d"
  "bench_fig19_scenario2"
  "bench_fig19_scenario2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_scenario2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
