# Empty compiler generated dependencies file for bench_fig09_swing_levels.
# This may be replaced when dependencies are built.
