file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_blockage.dir/ext_blockage.cpp.o"
  "CMakeFiles/bench_ext_blockage.dir/ext_blockage.cpp.o.d"
  "bench_ext_blockage"
  "bench_ext_blockage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_blockage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
