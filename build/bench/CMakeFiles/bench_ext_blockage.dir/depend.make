# Empty dependencies file for bench_ext_blockage.
# This may be replaced when dependencies are built.
