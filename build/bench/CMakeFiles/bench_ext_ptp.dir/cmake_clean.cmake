file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_ptp.dir/ext_ptp.cpp.o"
  "CMakeFiles/bench_ext_ptp.dir/ext_ptp.cpp.o.d"
  "bench_ext_ptp"
  "bench_ext_ptp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ptp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
