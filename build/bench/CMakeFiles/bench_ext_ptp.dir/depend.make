# Empty dependencies file for bench_ext_ptp.
# This may be replaced when dependencies are built.
