# Empty dependencies file for bench_fig10_swing_cdf.
# This may be replaced when dependencies are built.
