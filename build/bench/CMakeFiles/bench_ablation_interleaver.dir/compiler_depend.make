# Empty compiler generated dependencies file for bench_ablation_interleaver.
# This may be replaced when dependencies are built.
