file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_interleaver.dir/ablation_interleaver.cpp.o"
  "CMakeFiles/bench_ablation_interleaver.dir/ablation_interleaver.cpp.o.d"
  "bench_ablation_interleaver"
  "bench_ablation_interleaver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_interleaver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
