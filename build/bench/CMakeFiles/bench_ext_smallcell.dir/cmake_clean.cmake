file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_smallcell.dir/ext_smallcell.cpp.o"
  "CMakeFiles/bench_ext_smallcell.dir/ext_smallcell.cpp.o.d"
  "bench_ext_smallcell"
  "bench_ext_smallcell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_smallcell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
