# Empty dependencies file for bench_ext_smallcell.
# This may be replaced when dependencies are built.
