# Empty compiler generated dependencies file for bench_fig04_power_approx.
# This may be replaced when dependencies are built.
