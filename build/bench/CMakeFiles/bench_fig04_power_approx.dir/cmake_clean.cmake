file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_power_approx.dir/fig04_power_approx.cpp.o"
  "CMakeFiles/bench_fig04_power_approx.dir/fig04_power_approx.cpp.o.d"
  "bench_fig04_power_approx"
  "bench_fig04_power_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_power_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
