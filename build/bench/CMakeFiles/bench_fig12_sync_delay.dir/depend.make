# Empty dependencies file for bench_fig12_sync_delay.
# This may be replaced when dependencies are built.
