file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_sync_delay.dir/fig12_sync_delay.cpp.o"
  "CMakeFiles/bench_fig12_sync_delay.dir/fig12_sync_delay.cpp.o.d"
  "bench_fig12_sync_delay"
  "bench_fig12_sync_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_sync_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
