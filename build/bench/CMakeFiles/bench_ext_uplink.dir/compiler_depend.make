# Empty compiler generated dependencies file for bench_ext_uplink.
# This may be replaced when dependencies are built.
