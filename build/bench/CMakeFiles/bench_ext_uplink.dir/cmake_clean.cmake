file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_uplink.dir/ext_uplink.cpp.o"
  "CMakeFiles/bench_ext_uplink.dir/ext_uplink.cpp.o.d"
  "bench_ext_uplink"
  "bench_ext_uplink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_uplink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
