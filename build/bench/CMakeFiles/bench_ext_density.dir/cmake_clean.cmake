file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_density.dir/ext_density.cpp.o"
  "CMakeFiles/bench_ext_density.dir/ext_density.cpp.o.d"
  "bench_ext_density"
  "bench_ext_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
