# Empty compiler generated dependencies file for bench_fig08_throughput_vs_power.
# This may be replaced when dependencies are built.
