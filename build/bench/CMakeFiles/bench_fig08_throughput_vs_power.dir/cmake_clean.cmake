file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_throughput_vs_power.dir/fig08_throughput_vs_power.cpp.o"
  "CMakeFiles/bench_fig08_throughput_vs_power.dir/fig08_throughput_vs_power.cpp.o.d"
  "bench_fig08_throughput_vs_power"
  "bench_fig08_throughput_vs_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_throughput_vs_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
