file(REMOVE_RECURSE
  "CMakeFiles/bench_runtime_heuristic.dir/runtime_heuristic.cpp.o"
  "CMakeFiles/bench_runtime_heuristic.dir/runtime_heuristic.cpp.o.d"
  "bench_runtime_heuristic"
  "bench_runtime_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_runtime_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
