# Empty compiler generated dependencies file for bench_runtime_heuristic.
# This may be replaced when dependencies are built.
