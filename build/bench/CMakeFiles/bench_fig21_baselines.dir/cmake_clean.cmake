file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_baselines.dir/fig21_baselines.cpp.o"
  "CMakeFiles/bench_fig21_baselines.dir/fig21_baselines.cpp.o.d"
  "bench_fig21_baselines"
  "bench_fig21_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
