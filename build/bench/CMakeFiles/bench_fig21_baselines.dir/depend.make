# Empty dependencies file for bench_fig21_baselines.
# This may be replaced when dependencies are built.
