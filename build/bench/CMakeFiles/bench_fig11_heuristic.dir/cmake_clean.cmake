file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_heuristic.dir/fig11_heuristic.cpp.o"
  "CMakeFiles/bench_fig11_heuristic.dir/fig11_heuristic.cpp.o.d"
  "bench_fig11_heuristic"
  "bench_fig11_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
