// ARQ reliability walkthrough: pushes a fixed workload through the
// waveform data path under increasingly hostile conditions (lossy WiFi
// ACKs, starved beamspots) and shows how stop-and-wait ARQ converts
// residual frame loss into bounded latency instead of data loss.
//
//   $ ./arq_reliability
#include <iostream>

#include "common/table.hpp"
#include "core/system.hpp"
#include "core/testbed.hpp"

int main() {
  using namespace densevlc;

  std::cout << "ARQ reliability demo\n====================\n\n"
            << "Workload: 10 segments x 40 B to one RX through the full "
               "waveform PHY.\n\n";

  TablePrinter table{{"condition", "delivered", "dropped",
                      "transmissions", "duplicates", "goodput"}};

  struct Case {
    const char* name;
    double wifi_loss;
    double budget_w;
    std::size_t attempts;
  };
  for (const Case c : {Case{"clean uplink, healthy beamspot", 0.0, 0.25, 4},
                       {"30% ACK loss", 0.3, 0.25, 6},
                       {"60% ACK loss", 0.6, 0.25, 8},
                       {"starved beamspot at the room edge", 0.0, 0.06,
                        4}}) {
    core::SystemConfig cfg;
    cfg.testbed = core::make_experimental_testbed();
    cfg.mac.epoch_period_s = 1.0;  // reports retry every second
    cfg.power_budget_w = c.budget_w;
    cfg.wifi.loss_probability = c.wifi_loss;
    // The starved case pushes the RX to the grid's edge where even the
    // nearest TX is weak; the others sit at a well-covered spot.
    const geom::Vec3 rx_pos = c.budget_w < 0.1
                                  ? geom::Vec3{2.95, 2.95, 0.0}
                                  : geom::Vec3{1.35, 1.15, 0.0};
    auto system = core::DenseVlcSystem::with_static_rxs(cfg, {rx_pos});
    const auto report = system.run_arq(5.0, 40, 10, c.attempts);
    const auto& rx = report.rx[0];
    table.add_row({c.name,
                   std::to_string(rx.segments_delivered) + "/10",
                   std::to_string(rx.segments_dropped),
                   std::to_string(rx.transmissions),
                   std::to_string(rx.duplicates),
                   fmt_si(report.goodput_bps(0, 40), 1) + "bit/s"});
  }
  table.print(std::cout);

  std::cout << "\nReading the table: lost ACKs trigger retransmissions "
               "that the receiver deduplicates — data still arrives "
               "exactly once, at the cost of extra airtime. Even the "
               "starved room-edge beamspot delivers: the OOK + RS link "
               "budget has margin, so segment drops only appear when the "
               "retry budget is exhausted under genuine outage.\n";
  return 0;
}
