// Quickstart: bring up the paper's 36-TX / 4-RX testbed, measure the
// channel, run the controller's decision logic, and inspect the formed
// beamspots — the minimal end-to-end tour of the public API.
//
//   $ ./quickstart
#include <iostream>

#include "common/table.hpp"
#include "core/system.hpp"
#include "scenario/scenarios.hpp"

int main() {
  using namespace densevlc;

  // 1. Configure the system. SystemConfig defaults are the paper's
  //    testbed (Table 1 + Sec. 8): 6x6 grid, CREE XT-E LEDs, 1.2 W
  //    communication power budget, SJR heuristic with kappa = 1.3.
  core::SystemConfig config;
  config.power_budget_w = 1.2;

  // 2. Place four receivers (the Fig. 7 instance) and build the system.
  auto system = core::DenseVlcSystem::with_static_rxs(
      config, scenario::fig7_rx_positions());

  // 3. Run one MAC epoch: probe every TX->RX link through the analog
  //    front-end model, report to the controller, form beamspots.
  const auto epoch = system.run_epoch_analytic(/*t_s=*/0.0);

  std::cout << "DenseVLC quickstart\n===================\n\n";
  std::cout << "TXs assigned: " << epoch.txs_assigned << " of "
            << system.num_tx() << ", communication power "
            << fmt(epoch.power_used_w, 3) << " W (budget "
            << fmt(config.power_budget_w, 2) << " W)\n\n";

  TablePrinter spots{{"RX", "serving TXs", "leading TX",
                      "expected throughput [Mbit/s]"}};
  for (const auto& spot : epoch.beamspots) {
    std::string txs;
    for (std::size_t tx : spot.txs) {
      txs += (txs.empty() ? "TX" : ", TX") + std::to_string(tx + 1);
    }
    spots.add_row({"RX" + std::to_string(spot.rx + 1), txs,
                   "TX" + std::to_string(spot.leader + 1),
                   fmt(epoch.throughput_bps[spot.rx] / 1e6, 2)});
  }
  spots.print(std::cout);

  double total = 0.0;
  for (double t : epoch.throughput_bps) total += t;
  std::cout << "\nSystem throughput: " << fmt(total / 1e6, 2)
            << " Mbit/s\n";

  // 4. Ship a few real frames through the waveform data path.
  std::cout << "\nTransmitting frames over the waveform data path "
               "(0.5 s simulated)...\n";
  const auto run = system.run(/*duration_s=*/0.5, /*payload_bytes=*/60);
  TablePrinter stats{{"RX", "frames", "delivered", "PER", "goodput"}};
  for (std::size_t rx = 0; rx < run.rx.size(); ++rx) {
    stats.add_row({"RX" + std::to_string(rx + 1),
                   std::to_string(run.rx[rx].frames_sent),
                   std::to_string(run.rx[rx].frames_delivered),
                   fmt(100.0 * run.rx[rx].per(), 1) + "%",
                   fmt_si(run.throughput_bps(rx), 1) + "bit/s"});
  }
  stats.print(std::cout);
  return 0;
}
