// Heatmap tool: export illuminance and communication-coverage maps of
// the testbed as PGM images (plus summaries), including a failed-
// luminaire what-if.
//
//   $ ./heatmap_tool [out_dir]
//
// Writes illuminance.pgm, coverage.pgm and coverage_degraded.pgm.
#include <iostream>
#include <string>

#include "common/pgm.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/coverage.hpp"
#include "illum/illuminance_map.hpp"
#include "core/testbed.hpp"

int main(int argc, char** argv) {
  using namespace densevlc;

  const std::string dir = argc > 1 ? argv[1] : ".";
  const auto tb = core::make_simulation_testbed();

  // Illuminance field.
  const std::size_t n = 61;
  const illum::IlluminanceMap map{tb.room,     tb.tx_poses(), tb.emitter,
                                  tb.led,      Meters{0.8},   n,
                                  kWhiteLedEfficacy};
  ScalarField lux;
  lux.width = n;
  lux.height = n;
  lux.values.resize(n * n);
  for (std::size_t iy = 0; iy < n; ++iy) {
    for (std::size_t ix = 0; ix < n; ++ix) {
      lux.values[(n - 1 - iy) * n + ix] = map.at(ix, iy).value();
    }
  }
  const std::string lux_path = dir + "/illuminance.pgm";
  const bool lux_ok = write_pgm(lux, lux_path);

  // Coverage, healthy and with a failed 2x2 luminaire block.
  core::CoverageConfig cfg;
  cfg.raster_per_axis = 41;
  const auto healthy = core::compute_coverage(tb, cfg);
  const auto degraded =
      core::compute_coverage(tb, cfg, {14, 15, 20, 21});  // TX15/16/21/22

  const std::string cov_path = dir + "/coverage.pgm";
  const std::string deg_path = dir + "/coverage_degraded.pgm";
  // Shared scale so the images are visually comparable.
  const bool cov_ok =
      write_pgm(healthy.throughput_mbps, cov_path, 0.0, healthy.max_mbps);
  const bool deg_ok =
      write_pgm(degraded.throughput_mbps, deg_path, 0.0, healthy.max_mbps);

  std::cout << "DenseVLC heatmap export\n=======================\n\n";
  TablePrinter table{{"map", "file", "min", "mean", "max"}};
  const auto aoi = map.area_of_interest_stats(Meters{2.2});
  table.add_row({"illuminance [lux]", lux_ok ? lux_path : "WRITE FAILED",
                 fmt(aoi.min_lux, 0), fmt(aoi.average_lux, 0),
                 fmt(aoi.max_lux, 0)});
  table.add_row({"coverage [Mbit/s]", cov_ok ? cov_path : "WRITE FAILED",
                 fmt(healthy.min_mbps, 2), fmt(healthy.mean_mbps, 2),
                 fmt(healthy.max_mbps, 2)});
  table.add_row({"coverage, 4 TXs failed",
                 deg_ok ? deg_path : "WRITE FAILED",
                 fmt(degraded.min_mbps, 2), fmt(degraded.mean_mbps, 2),
                 fmt(degraded.max_mbps, 2)});
  table.print(std::cout);

  std::cout << "\nCoverage >= 50% of peak over "
            << fmt(100.0 * healthy.coverage_fraction(0.5), 0)
            << "% of the floor (healthy) vs "
            << fmt(100.0 * degraded.coverage_fraction(0.5), 0)
            << "% with the failed block.\n";
  return (lux_ok && cov_ok && deg_ok) ? 0 : 1;
}
