// Mobility tracking: a receiver rides an ACRO-style positioner across
// the room while the controller re-measures and re-allocates every
// epoch. Demonstrates the "fast adaptation" design goal — the beamspot
// follows the user, and throughput stays high while a static allocation
// would collapse.
//
//   $ ./mobility_tracking
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "core/system.hpp"
#include "core/trace.hpp"
#include "geom/mobility.hpp"
#include "core/testbed.hpp"

int main() {
  using namespace densevlc;

  core::SystemConfig config;
  config.power_budget_w = 0.6;

  // RX1 walks a diagonal across the room in 20 s; RX2 sits still.
  std::vector<std::unique_ptr<geom::MobilityModel>> mobility;
  mobility.push_back(std::make_unique<geom::WaypointMobility>(
      std::vector<geom::WaypointMobility::Waypoint>{
          {0.0, {0.6, 0.6, 0.0}},
          {10.0, {2.4, 1.2, 0.0}},
          {20.0, {2.4, 2.4, 0.0}}}));
  mobility.push_back(
      std::make_unique<geom::StaticMobility>(geom::Vec3{0.75, 2.25, 0.0}));

  core::DenseVlcSystem system{config, std::move(mobility)};

  std::cout << "Mobility tracking: RX1 crosses the room, the controller "
               "re-forms beamspots each epoch\n\n";
  TablePrinter table{{"t [s]", "RX1 position", "RX1 leader",
                      "RX1 tput [Mbit/s]", "RX2 tput [Mbit/s]"}};

  // Also quantify what *not* adapting would cost: freeze the t=0
  // allocation and evaluate it against the moving channel.
  core::SystemConfig frozen_cfg = config;
  auto frozen = core::DenseVlcSystem::with_static_rxs(
      frozen_cfg, {{0.6, 0.6, 0.0}, {0.75, 2.25, 0.0}});
  const auto frozen_epoch = frozen.run_epoch_analytic(0.0);
  double adaptive_sum = 0.0;
  double frozen_sum = 0.0;
  std::size_t samples = 0;

  core::TraceRecorder trace;
  for (double t = 0.0; t <= 20.0; t += 2.0) {
    const auto epoch = system.run_epoch_analytic(t);
    trace.record_epoch(Seconds{t}, epoch.throughput_bps, epoch.beamspots,
                       Watts{epoch.power_used_w});
    const auto pos = system.true_channel(t);  // for leader lookup below
    std::string leader = "-";
    for (const auto& spot : epoch.beamspots) {
      if (spot.rx == 0) leader = "TX" + std::to_string(spot.leader + 1);
    }
    const geom::Vec3 p = [&] {
      // Re-derive RX1's position from the waypoint path for display.
      const geom::WaypointMobility path{{{0.0, {0.6, 0.6, 0.0}},
                                        {10.0, {2.4, 1.2, 0.0}},
                                        {20.0, {2.4, 2.4, 0.0}}}};
      return path.position(t);
    }();
    table.add_row({fmt(t, 0), "(" + fmt(p.x, 2) + ", " + fmt(p.y, 2) + ")",
                   leader, fmt(epoch.throughput_bps[0] / 1e6, 2),
                   fmt(epoch.throughput_bps[1] / 1e6, 2)});

    // Frozen-allocation comparison: evaluate the t=0 beamspots on the
    // current channel.
    const auto h_now = system.true_channel(t);
    const auto frozen_tput =
        frozen.controller().expected_throughput(h_now);
    adaptive_sum += epoch.throughput_bps[0];
    frozen_sum += frozen_tput[0];
    ++samples;
    (void)pos;
  }
  table.print(std::cout);

  std::cout << "\nRX1 average throughput, adaptive: "
            << fmt(adaptive_sum / samples / 1e6, 2)
            << " Mbit/s; frozen t=0 allocation: "
            << fmt(frozen_sum / samples / 1e6, 2) << " Mbit/s ("
            << fmt(adaptive_sum / std::max(frozen_sum, 1.0), 1)
            << "x better with adaptation)\n";

  std::cout << "Beamspot handovers for RX1 along the walk: "
            << trace.leader_changes(0) << '\n';
  if (trace.save("mobility_trace.csv")) {
    std::cout << "Full timeline written to mobility_trace.csv ("
              << trace.rows().size() << " rows)\n";
  }
  return 0;
}
