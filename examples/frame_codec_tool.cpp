// Frame codec tool: encode a message into the DenseVLC on-air frame
// format (paper Table 3), inject byte errors, and decode — demonstrating
// the Reed-Solomon protection and the Manchester chip stream.
//
//   $ ./frame_codec_tool "hello dense vlc" 6
//
// argv[1] is the payload text (default shown), argv[2] the number of
// random byte errors to inject (default 4; capacity is 8 per 200-byte
// block).
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "phy/frame.hpp"
#include "phy/manchester.hpp"

int main(int argc, char** argv) {
  using namespace densevlc;

  const std::string text =
      argc > 1 ? argv[1] : "hello dense vlc, greetings from the ceiling";
  const std::size_t errors =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;

  phy::MacFrame frame;
  frame.dst = 1;
  frame.src = 0xC0;
  frame.protocol = static_cast<std::uint16_t>(phy::Protocol::kData);
  frame.payload.assign(text.begin(), text.end());

  const auto wire = phy::serialize_frame(frame);
  const auto chips = phy::frame_to_chips(frame);

  std::cout << "DenseVLC frame codec tool\n=========================\n\n";
  TablePrinter layout{{"field", "size"}};
  layout.add_row({"preamble", std::to_string(phy::kPreambleChips) + " chips"});
  layout.add_row({"SFD + length + dst + src + protocol", "9 B"});
  layout.add_row({"payload", std::to_string(frame.payload.size()) + " B"});
  layout.add_row(
      {"Reed-Solomon parity",
       std::to_string(wire.size() - 9 - frame.payload.size()) + " B"});
  layout.add_row({"total on-air", std::to_string(chips.size()) + " chips (" +
                                      fmt(chips.size() / 100e3 * 1e3, 2) +
                                      " ms at 100 Kchip/s)"});
  layout.print(std::cout);

  // Show the first Manchester chips.
  std::cout << "\nFirst 48 data chips (H = Ib+Isw/2, L = Ib-Isw/2): ";
  const auto body = phy::manchester_encode(phy::bytes_to_bits(
      std::vector<std::uint8_t>(wire.begin(), wire.begin() + 3)));
  for (const auto chip : body) {
    std::cout << (chip == phy::Chip::kHigh ? 'H' : 'L');
  }
  std::cout << "\n\n";

  // Corrupt and decode.
  auto corrupted = wire;
  Rng rng{0xC0DEC};
  std::cout << "Injecting " << errors << " random byte errors at offsets:";
  for (std::size_t e = 0; e < errors; ++e) {
    const auto pos = static_cast<std::size_t>(rng.uniform_int(
        9, static_cast<std::int64_t>(corrupted.size()) - 1));
    corrupted[pos] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    std::cout << ' ' << pos;
  }
  std::cout << "\n\n";

  const auto decoded = phy::parse_frame(corrupted);
  if (!decoded) {
    std::cout << "Decode FAILED — error count exceeds the Reed-Solomon "
                 "capacity (8 per 200-byte block).\n";
    return 0;
  }
  std::cout << "Decoded OK, " << decoded->corrected_bytes
            << " bytes corrected.\nRecovered payload: \""
            << std::string(decoded->frame.payload.begin(),
                           decoded->frame.payload.end())
            << "\"\n"
            << (decoded->frame == frame ? "Payload matches the original.\n"
                                        : "PAYLOAD MISMATCH!\n");
  return 0;
}
