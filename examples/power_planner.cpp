// Power-budget planner: for a user-specified room, sweep the
// communication power budget, report the throughput curve, locate the
// efficiency knee, and verify ISO 8995-1 illumination compliance.
//
//   $ ./power_planner [room_side_m] [num_rx]
//
// Defaults reproduce the paper's room (3 m, 4 RXs).
#include <cstdlib>
#include <iostream>

#include "alloc/assignment.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "illum/illuminance_map.hpp"
#include "core/testbed.hpp"

int main(int argc, char** argv) {
  using namespace densevlc;

  const double side = argc > 1 ? std::atof(argv[1]) : 3.0;
  const std::size_t num_rx =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;
  if (side < 1.0 || side > 20.0 || num_rx < 1 || num_rx > 16) {
    std::cerr << "usage: power_planner [room_side_m in 1..20] "
                 "[num_rx in 1..16]\n";
    return 1;
  }

  // Scale the paper's grid density (one TX per 0.5 m) to the room.
  core::Testbed tb = core::make_simulation_testbed();
  tb.room = geom::Room{side, side, 2.8};
  const auto per_axis = static_cast<std::size_t>(side / 0.5);
  tb.grid = geom::GridSpec{per_axis, per_axis, 0.5, 2.8};

  std::cout << "Power planner: " << side << " m x " << side << " m room, "
            << tb.grid.count() << " TXs, " << num_rx << " RXs\n\n";

  // Illumination check first — communication must not be planned on a
  // grid that fails its primary job.
  const illum::IlluminanceMap map{tb.room,     tb.tx_poses(), tb.emitter,
                                  tb.led,      Meters{0.8},   41,
                                  kWhiteLedEfficacy};
  const auto illum_stats = map.area_of_interest_stats(Meters{side - 0.8});
  std::cout << "Illumination: " << fmt(illum_stats.average_lux, 0)
            << " lux average, uniformity " << fmt(illum_stats.uniformity, 2)
            << (map.satisfies(illum::IsoRequirement{}, Meters{side - 0.8})
                    ? "  [ISO 8995-1 PASS]\n\n"
                    : "  [ISO 8995-1 FAIL - increase bias or density]\n\n");

  // Drop RXs uniformly at random (deterministic seed) and sweep budgets.
  Rng rng{0x91A7};
  std::vector<geom::Vec3> rx_xy;
  for (std::size_t k = 0; k < num_rx; ++k) {
    rx_xy.push_back({rng.uniform(0.4, side - 0.4),
                     rng.uniform(0.4, side - 0.4), 0.0});
  }
  const auto h = tb.channel_for(rx_xy);

  alloc::AssignmentOptions opts;
  const double per_tx = alloc::full_swing_tx_power(Amperes{0.9}, tb.budget).value();

  TablePrinter table{{"budget [W]", "TXs", "system tput [Mbit/s]",
                      "efficiency [Mbit/s/W]"}};
  double best_eff = 0.0;
  double knee_budget = 0.0;
  double prev_tput = 0.0;
  for (double budget = per_tx; budget <= 3.0; budget += per_tx) {
    const auto res = alloc::heuristic_allocate(h, 1.3, Watts{budget}, tb.budget,
                                               opts);
    double tput = 0.0;
    for (double t : channel::throughput_bps(h, res.allocation, tb.budget)) {
      tput += t;
    }
    const double eff = res.power_used_w > 0.0
                           ? tput / 1e6 / res.power_used_w
                           : 0.0;
    table.add_numeric_row({budget, static_cast<double>(res.txs_assigned),
                           tput / 1e6, eff},
                          2);
    if (eff > best_eff) {
      best_eff = eff;
      knee_budget = budget;
    }
    prev_tput = tput;
  }
  (void)prev_tput;
  table.print(std::cout);

  std::cout << "\nRecommended operating point: "
            << fmt(knee_budget, 2) << " W (best efficiency, "
            << fmt(best_eff, 1) << " Mbit/s per watt)\n";
  return 0;
}
