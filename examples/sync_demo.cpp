// Synchronization walkthrough: shows every stage of the NLOS VLC sync of
// paper Sec. 6.2 — the floor-bounce channel, pilot detection at the
// oversampling follower, the residual start error, and finally a joint
// two-BBB frame transmission that only decodes because of the sync.
//
//   $ ./sync_demo
#include <iostream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/beamspot.hpp"
#include "core/testbed.hpp"
#include "sync/nlos_sync.hpp"
#include "sync/timesync.hpp"

int main() {
  using namespace densevlc;

  std::cout << "NLOS VLC synchronization demo\n"
               "=============================\n\n";

  // Stage 1: the optical side-channel. TX2 (leader) bounces its pilot off
  // the floor into TX3's ceiling-facing photodiode.
  sync::NlosSyncConfig nc;
  nc.leader_pose = geom::ceiling_pose(0.75, 0.25, 2.0);    // TX2
  nc.follower_pose = geom::ceiling_pose(1.25, 0.25, 2.0);  // TX3
  sync::NlosSynchronizer synchronizer{nc};
  std::cout << "1. Floor-bounce channel gain TX2 -> floor -> TX3: "
            << fmt_si(synchronizer.channel_gain(), 3)
            << " (a LOS data link is ~1e-6; this is why the RX front-end "
               "has a dedicated AC gain stage)\n\n";

  // Stage 2: one synchronization attempt, narrated.
  Rng rng{0xDE30};
  const auto attempt = synchronizer.simulate_once(rng);
  std::cout << "2. Leader transmits [pilot | leader-ID] at 100 Kchip/s; "
               "follower samples at 1 Msps and correlates.\n"
            << "   detected: " << (attempt.detected ? "yes" : "no")
            << ", correlation " << fmt(attempt.correlation, 2)
            << ", leader ID verified: "
            << (attempt.id_matches ? "yes" : "no")
            << ", start error "
            << fmt(units::to_us(attempt.start_error_s), 3) << " us\n\n";

  // Stage 3: the error distribution versus the software baselines.
  const auto errors = synchronizer.measure_errors(100, rng);
  const sync::TimeSyncConfig ts;
  const double none = sync::measure_sync_delay(sync::SyncMethod::kNone, ts,
                                               100e3, 1000, 50, rng);
  const double ptp = sync::measure_sync_delay(sync::SyncMethod::kNtpPtp,
                                              ts, 100e3, 1000, 50, rng);
  TablePrinter table{{"method", "median error [us]"}};
  table.add_row({"No synchronization", fmt(units::to_us(none), 3)});
  table.add_row({"NTP/PTP", fmt(units::to_us(ptp), 3)});
  table.add_row({"NLOS VLC", fmt(units::to_us(stats::median(errors)), 3)});
  std::cout << "3. Error comparison over repeated attempts:\n";
  table.print(std::cout);

  // Stage 4: why it matters — a joint transmission from two BBBs.
  const auto tb = core::make_experimental_testbed();
  core::JointTransmission jt{tb.led, phy::OokParams{},
                             phy::FrontEndConfig{}};
  const auto h = tb.channel_for({{1.0, 0.5, 0.0}});
  phy::MacFrame frame;
  frame.payload.assign(60, 0x42);

  auto try_joint = [&](double skew) {
    std::vector<core::ServingTx> servers;
    std::size_t i = 0;
    for (std::size_t tx : {1u, 2u, 7u, 8u}) {  // TX2, TX3, TX8, TX9
      servers.push_back({tx, h.gain(tx, 0), 0.9, i < 2 ? 0.0 : skew});
      ++i;
    }
    return jt.transmit(servers, frame, rng).delivered;
  };

  const double synced_skew = stats::median(errors);
  std::cout << "\n4. Joint 4-TX transmission to the RX under the beamspot "
               "center:\n"
            << "   second BBB skewed by the NLOS residual ("
            << fmt(units::to_us(synced_skew), 2) << " us): frame "
            << (try_joint(synced_skew) ? "DECODED" : "lost") << '\n'
            << "   second BBB skewed by a no-sync delivery delay (25 us): "
               "frame "
            << (try_joint(25e-6) ? "DECODED" : "lost") << '\n';
  return 0;
}
