// Custom scenario runner: describe a deployment in an INI file and
// evaluate it without recompiling.
//
//   $ ./custom_scenario myroom.ini
//
// Recognized keys (all optional; defaults are the paper's testbed):
//
//   [room]    width, depth, height          (meters)
//   [grid]    rows, cols, pitch, mount_height
//   [led]     bias_ma, max_swing_ma, half_angle_deg
//   [system]  kappa, power_budget_w, bandwidth_mhz
//   [rx]      count, and then x1,y1 .. x<count>,y<count>
//
// With no argument, a documented sample file is written to
// ./sample_scenario.ini and evaluated.
#include <fstream>
#include <iostream>
#include <string>

#include "alloc/assignment.hpp"
#include "common/ini.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "illum/illuminance_map.hpp"
#include "core/testbed.hpp"

namespace {

constexpr const char* kSample = R"(; DenseVLC custom scenario (values = paper defaults)
[room]
width = 3.0
depth = 3.0
height = 2.8

[grid]
rows = 6
cols = 6
pitch = 0.5
mount_height = 2.8

[led]
bias_ma = 450
max_swing_ma = 900
half_angle_deg = 15

[system]
kappa = 1.3
power_budget_w = 1.2
bandwidth_mhz = 1.0

[rx]
count = 4
x1 = 0.92
y1 = 0.92
x2 = 1.65
y2 = 0.65
x3 = 0.72
y3 = 1.93
x4 = 1.99
y4 = 1.69
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace densevlc;

  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "sample_scenario.ini";
    std::ofstream out{path};
    out << kSample;
    std::cout << "(no scenario given; wrote and using " << path << ")\n\n";
  }

  const auto config = IniConfig::load(path);
  if (!config) {
    std::cerr << "cannot read " << path << '\n';
    return 1;
  }
  if (!config->errors().empty()) {
    std::cerr << "scenario file problems:\n" << config->errors();
  }

  // Assemble the testbed from the file, defaulting to Table 1.
  core::Testbed tb = core::make_simulation_testbed();
  tb.room = geom::Room{config->get_double("room.width", 3.0),
                       config->get_double("room.depth", 3.0),
                       config->get_double("room.height", 2.8)};
  tb.grid = geom::GridSpec{
      static_cast<std::size_t>(config->get_int("grid.rows", 6)),
      static_cast<std::size_t>(config->get_int("grid.cols", 6)),
      config->get_double("grid.pitch", 0.5),
      config->get_double("grid.mount_height", tb.room.height_m)};
  const double bias = units::mA(config->get_double("led.bias_ma", 450.0));
  const double swing =
      units::mA(config->get_double("led.max_swing_ma", 900.0));
  tb.led = optics::LedModel{optics::LedElectrical{},
                            optics::LedOperatingPoint{bias, swing}};
  tb.emitter.half_power_semi_angle_rad =
      units::deg_to_rad(config->get_double("led.half_angle_deg", 15.0));
  tb.budget = channel::LinkBudget::from_led(
      tb.led, AmperesPerWatt{0.4}, AmpsSquaredPerHertz{7.02e-23},
      Hertz{units::MHz(config->get_double("system.bandwidth_mhz", 1.0))});

  std::vector<geom::Vec3> rx_xy;
  const long count = config->get_int("rx.count", 0);
  for (long k = 1; k <= count; ++k) {
    const std::string i = std::to_string(k);
    rx_xy.push_back({config->get_double("rx.x" + i, 0.0),
                     config->get_double("rx.y" + i, 0.0), 0.0});
  }
  if (rx_xy.empty()) {
    std::cerr << "scenario has no receivers ([rx] count = ...)\n";
    return 1;
  }

  const double kappa = config->get_double("system.kappa", 1.3);
  const double budget_w = config->get_double("system.power_budget_w", 1.2);

  std::cout << "Scenario: " << tb.room.width << " x " << tb.room.depth
            << " m room, " << tb.grid.count() << " TXs, " << rx_xy.size()
            << " RXs, kappa " << kappa << ", budget " << budget_w
            << " W\n\n";

  // Illumination report.
  const illum::IlluminanceMap map{tb.room,     tb.tx_poses(), tb.emitter,
                                  tb.led,      Meters{0.8},   41,
                                  kWhiteLedEfficacy};
  const auto aoi = map.area_of_interest_stats(
      Meters{std::min(tb.room.width, tb.room.depth) - 0.8});
  std::cout << "Illumination: " << fmt(aoi.average_lux, 0)
            << " lux avg, uniformity " << fmt(aoi.uniformity, 2) << " — ISO "
            << (aoi.average_lux >= 500.0 && aoi.uniformity >= 0.70
                    ? "PASS"
                    : "FAIL")
            << "\n\n";

  // Allocation + throughput report.
  const auto h = tb.channel_for(rx_xy);
  alloc::AssignmentOptions opts;
  opts.max_swing_a = swing;
  const auto res = alloc::heuristic_allocate(h, kappa, Watts{budget_w}, tb.budget,
                                             opts);
  const auto tput = channel::throughput_bps(h, res.allocation, tb.budget);

  TablePrinter table{{"RX", "position", "throughput [Mbit/s]",
                      "serving TXs"}};
  double total = 0.0;
  for (std::size_t k = 0; k < rx_xy.size(); ++k) {
    std::size_t servers = 0;
    for (std::size_t j = 0; j < h.num_tx(); ++j) {
      servers += res.allocation.swing(j, k) > 0.0 ? 1 : 0;
    }
    table.add_row({"RX" + std::to_string(k + 1),
                   "(" + fmt(rx_xy[k].x, 2) + ", " + fmt(rx_xy[k].y, 2) +
                       ")",
                   fmt(tput[k] / 1e6, 2), std::to_string(servers)});
    total += tput[k];
  }
  table.print(std::cout);
  std::cout << "\nSystem throughput " << fmt(total / 1e6, 2)
            << " Mbit/s with " << res.txs_assigned << " TXs at "
            << fmt(res.power_used_w, 3) << " W\n";
  return 0;
}
