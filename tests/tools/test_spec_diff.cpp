// Self-test suite for tools/spec_diff: canonicalization collapses
// formatting noise, and the diff reports only semantic differences.
#include <gtest/gtest.h>

#include <string>

#include "spec_diff.hpp"

namespace densevlc::specdiff {
namespace {

const char* const kScenarioA =
    "[scenario]\n"
    "name = demo\n"
    "kind = analytic\n"
    "[rx]\n"
    "count = 1\n"
    "x1 = 1.0\n"
    "y1 = 1.0\n";

TEST(SpecDiff, FormattingNoiseIsInvisible) {
  // Same meaning, different spelling: comments, key order, whitespace,
  // numeric formatting, and explicitly-spelled defaults.
  const std::string noisy =
      "; a comment\n"
      "[rx]\n"
      "x1=1.00\n"
      "y1 =  1\n"
      "count=1\n"
      "\n"
      "[scenario]\n"
      "kind = analytic   ; default spelled out\n"
      "name = demo\n"
      "seed = 0xD5EED\n";
  const Canonical a = canonicalize(kScenarioA);
  const Canonical b = canonicalize(noisy);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_FALSE(a.is_campaign);
  EXPECT_TRUE(diff_items(a.items, b.items).empty());
}

TEST(SpecDiff, SemanticChangeIsReported) {
  const std::string changed =
      "[scenario]\n"
      "name = demo\n"
      "kind = analytic\n"
      "[system]\n"
      "kappa = 2.0\n"
      "[rx]\n"
      "count = 1\n"
      "x1 = 1.0\n"
      "y1 = 1.0\n";
  const Canonical a = canonicalize(kScenarioA);
  const Canonical b = canonicalize(changed);
  ASSERT_TRUE(a.ok && b.ok);
  const auto entries = diff_items(a.items, b.items);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].kind, DiffEntry::Kind::kChanged);
  EXPECT_EQ(entries[0].key, "system.kappa");
  EXPECT_EQ(entries[0].a, "1.3");
  EXPECT_EQ(entries[0].b, "2");
}

TEST(SpecDiff, AddedAndRemovedKeys) {
  std::map<std::string, std::string> a{{"x", "1"}, {"shared", "same"}};
  std::map<std::string, std::string> b{{"y", "2"}, {"shared", "same"}};
  const auto entries = diff_items(a, b);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].kind, DiffEntry::Kind::kOnlyA);
  EXPECT_EQ(entries[0].key, "x");
  EXPECT_EQ(entries[1].kind, DiffEntry::Kind::kOnlyB);
  EXPECT_EQ(entries[1].key, "y");
  const std::string text = render_diff(entries);
  EXPECT_NE(text.find("- x = 1"), std::string::npos);
  EXPECT_NE(text.find("+ y = 2"), std::string::npos);
}

TEST(SpecDiff, CampaignSchemaDetectedAndFlattened) {
  const std::string campaign =
      "[campaign]\n"
      "instances = 8\n"
      "[sweep]\n"
      "system.kappa = 1.0 | 1.3 | 2.0\n"
      "[scenario]\n"
      "name = sweep-demo\n"
      "kind = analytic\n"
      "[rx]\n"
      "count = 1\n"
      "x1 = 1.0\n"
      "y1 = 1.0\n";
  const Canonical c = canonicalize(campaign);
  ASSERT_TRUE(c.ok) << c.error;
  EXPECT_TRUE(c.is_campaign);
  EXPECT_EQ(c.items.at("campaign.instances"), "8");
  EXPECT_EQ(c.items.at("sweep.system.kappa"), "1.0 | 1.3 | 2.0");
  EXPECT_EQ(c.items.at("scenario.name"), "sweep-demo");
}

TEST(SpecDiff, ParseFailureIsAnError) {
  const Canonical c = canonicalize("[scenario]\nkind = bogus\n");
  EXPECT_FALSE(c.ok);
  EXPECT_FALSE(c.error.empty());
}

}  // namespace
}  // namespace densevlc::specdiff
