// Tests for correlation-based pattern detection.
#include "dsp/correlate.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace densevlc::dsp {
namespace {

TEST(Correlate, RawDotProducts) {
  const std::vector<double> signal{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> pattern{1.0, 1.0};
  const auto out = correlate(signal, pattern);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 5.0);
  EXPECT_DOUBLE_EQ(out[2], 7.0);
}

TEST(Correlate, PatternLongerThanSignalIsEmpty) {
  const std::vector<double> signal{1.0};
  const std::vector<double> pattern{1.0, 2.0};
  EXPECT_TRUE(correlate(signal, pattern).empty());
  EXPECT_TRUE(normalized_correlate(signal, pattern).empty());
}

TEST(NormalizedCorrelate, PerfectMatchScoresOne) {
  const std::vector<double> pattern{1.0, -1.0, 1.0, 1.0, -1.0};
  std::vector<double> signal{0.0, 0.0};
  signal.insert(signal.end(), pattern.begin(), pattern.end());
  signal.insert(signal.end(), {0.0, 0.0});
  const auto scores = normalized_correlate(signal, pattern);
  EXPECT_NEAR(scores[2], 1.0, 1e-12);
}

TEST(NormalizedCorrelate, InvariantToGainAndOffset) {
  const std::vector<double> pattern{1.0, -1.0, 1.0, -1.0, 1.0, 1.0};
  std::vector<double> signal;
  for (double p : pattern) signal.push_back(3.7 + 0.01 * p);  // tiny + offset
  const auto scores = normalized_correlate(signal, pattern);
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_NEAR(scores[0], 1.0, 1e-9);
}

TEST(NormalizedCorrelate, AntiCorrelatedScoresMinusOne) {
  const std::vector<double> pattern{1.0, -1.0, 1.0, -1.0};
  std::vector<double> signal;
  for (double p : pattern) signal.push_back(-p);
  const auto scores = normalized_correlate(signal, pattern);
  EXPECT_NEAR(scores[0], -1.0, 1e-12);
}

TEST(NormalizedCorrelate, FlatWindowScoresZero) {
  const std::vector<double> pattern{1.0, -1.0, 1.0, -1.0};
  const std::vector<double> signal(10, 2.5);
  for (double s : normalized_correlate(signal, pattern)) {
    EXPECT_DOUBLE_EQ(s, 0.0);
  }
}

TEST(NormalizedCorrelate, FlatPatternScoresZero) {
  const std::vector<double> pattern(4, 1.0);
  const std::vector<double> signal{1.0, -1.0, 1.0, -1.0, 1.0, -1.0};
  for (double s : normalized_correlate(signal, pattern)) {
    EXPECT_DOUBLE_EQ(s, 0.0);
  }
}

TEST(DetectPattern, FindsEmbeddedPatternInNoise) {
  Rng rng{77};
  const std::vector<double> pattern{1, -1, 1, 1, -1, -1, 1, -1, 1, 1,
                                    -1, 1, -1, -1, 1, 1};
  std::vector<double> signal(200);
  for (double& s : signal) s = rng.gaussian(0.0, 0.3);
  const std::size_t at = 120;
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    signal[at + i] += pattern[i];
  }
  const auto peak = detect_pattern(signal, pattern, 0.5);
  ASSERT_TRUE(peak.has_value());
  EXPECT_NEAR(static_cast<double>(peak->index), static_cast<double>(at), 1.0);
  EXPECT_GT(peak->score, 0.5);
}

TEST(DetectPattern, ReturnsNulloptBelowThreshold) {
  Rng rng{78};
  const std::vector<double> pattern{1, -1, 1, 1, -1, -1, 1, -1};
  std::vector<double> signal(100);
  for (double& s : signal) s = rng.gaussian(0.0, 1.0);
  EXPECT_FALSE(detect_pattern(signal, pattern, 0.99).has_value());
}

TEST(DetectPattern, PicksStrongestOfTwoCopies) {
  const std::vector<double> pattern{1, -1, 1, -1, 1, 1, -1, -1};
  std::vector<double> signal(64, 0.0);
  // Weak copy at 10 (damped + noise floor), exact copy at 40.
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    signal[10 + i] = 0.5 * pattern[i] + (i % 2 ? 0.3 : -0.3);
    signal[40 + i] = pattern[i];
  }
  const auto peak = detect_pattern(signal, pattern, 0.3);
  ASSERT_TRUE(peak.has_value());
  EXPECT_EQ(peak->index, 40u);
}

}  // namespace
}  // namespace densevlc::dsp
