// Tests for the M2M4 SNR estimator (paper Sec. 7.2).
#include "dsp/snr_estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace densevlc::dsp {
namespace {

/// Builds n antipodal +-amplitude symbols in gaussian noise.
std::vector<double> make_samples(std::size_t n, double amplitude,
                                 double noise_sigma, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<double> v(n);
  for (double& s : v) {
    const double symbol = rng.bernoulli(0.5) ? amplitude : -amplitude;
    s = symbol + rng.gaussian(0.0, noise_sigma);
  }
  return v;
}

TEST(M2M4, TooFewSamplesIsNullopt) {
  const std::vector<double> v{1.0, -1.0, 1.0};
  EXPECT_FALSE(m2m4_snr(v).has_value());
}

TEST(M2M4, CleanAntipodalIsNullopt) {
  // Zero noise makes N = M2 - S = 0: no valid estimate (division by zero
  // territory); the estimator must refuse rather than return infinity.
  const auto v = make_samples(1000, 1.0, 0.0, 5);
  EXPECT_FALSE(m2m4_snr(v).has_value());
}

TEST(M2M4, RecoversKnownSnr) {
  // True SNR = A^2 / sigma^2. Test across a range.
  struct Case {
    double amplitude, sigma;
  };
  for (const Case c : {Case{1.0, 0.5}, Case{1.0, 0.25}, Case{2.0, 1.0}}) {
    const auto v = make_samples(200000, c.amplitude, c.sigma, 42);
    const auto est = m2m4_snr(v);
    ASSERT_TRUE(est.has_value());
    const double true_snr_db =
        10.0 * std::log10(c.amplitude * c.amplitude / (c.sigma * c.sigma));
    EXPECT_NEAR(est->snr_db, true_snr_db, 0.3)
        << "A=" << c.amplitude << " sigma=" << c.sigma;
  }
}

TEST(M2M4, PowerDecompositionSumsToM2) {
  const auto v = make_samples(100000, 1.0, 0.4, 7);
  const auto est = m2m4_snr(v);
  ASSERT_TRUE(est.has_value());
  double m2 = 0.0;
  for (double s : v) m2 += s * s;
  m2 /= static_cast<double>(v.size());
  EXPECT_NEAR(est->signal_power + est->noise_power, m2, 1e-12);
}

TEST(M2M4, PureNoiseRejectedOrVeryLow) {
  Rng rng{9};
  std::vector<double> v(50000);
  for (double& s : v) s = rng.gaussian(0.0, 1.0);
  const auto est = m2m4_snr(v);
  // Gaussian noise has kurtosis 3: the discriminant 3 M2^2 - M4 hovers at
  // zero, so the estimate either fails or reports very low SNR.
  if (est) {
    EXPECT_LT(est->snr_db, 0.0);
  }
}

TEST(SnrHelpers, DbFromPowers) {
  EXPECT_NEAR(snr_db_from_powers(10.0, 1.0), 10.0, 1e-12);
  EXPECT_NEAR(snr_db_from_powers(1.0, 1.0), 0.0, 1e-12);
  EXPECT_LT(snr_db_from_powers(0.0, 1.0), -100.0);
  EXPECT_LT(snr_db_from_powers(1.0, 0.0), -100.0);
}

// Property sweep: estimator bias stays under 0.5 dB from 3 dB to 20 dB.
class SnrSweep : public ::testing::TestWithParam<double> {};

TEST_P(SnrSweep, LowBiasAcrossOperatingRange) {
  const double snr_db = GetParam();
  const double amplitude = 1.0;
  const double sigma = amplitude / std::pow(10.0, snr_db / 20.0);
  const auto v = make_samples(300000, amplitude, sigma, 1234);
  const auto est = m2m4_snr(v);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->snr_db, snr_db, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Levels, SnrSweep,
                         ::testing::Values(3.0, 6.0, 10.0, 13.0, 16.0,
                                           20.0));

}  // namespace
}  // namespace densevlc::dsp
