// Tests for biquad sections and cascades.
#include "dsp/biquad.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace densevlc::dsp {
namespace {

TEST(Biquad, IdentityPassesThrough) {
  Biquad b{BiquadCoeffs{}};  // b0 = 1, everything else 0
  for (double x : {1.0, -2.0, 0.5, 0.0}) {
    EXPECT_DOUBLE_EQ(b.step(x), x);
  }
}

TEST(Biquad, PureDelayLine) {
  BiquadCoeffs c;
  c.b0 = 0.0;
  c.b1 = 1.0;  // y[n] = x[n-1]
  Biquad b{c};
  EXPECT_DOUBLE_EQ(b.step(3.0), 0.0);
  EXPECT_DOUBLE_EQ(b.step(5.0), 3.0);
  EXPECT_DOUBLE_EQ(b.step(0.0), 5.0);
}

TEST(Biquad, OnePoleDecays) {
  BiquadCoeffs c;
  c.b0 = 1.0;
  c.a1 = -0.5;  // y[n] = x[n] + 0.5 y[n-1]
  Biquad b{c};
  EXPECT_DOUBLE_EQ(b.step(1.0), 1.0);
  EXPECT_DOUBLE_EQ(b.step(0.0), 0.5);
  EXPECT_DOUBLE_EQ(b.step(0.0), 0.25);
}

TEST(Biquad, ResetClearsState) {
  BiquadCoeffs c;
  c.b0 = 1.0;
  c.a1 = -0.9;
  Biquad b{c};
  b.step(1.0);
  b.reset();
  EXPECT_DOUBLE_EQ(b.step(0.0), 0.0);
}

TEST(Cascade, EmptyCascadeIsIdentity) {
  BiquadCascade c{std::vector<BiquadCoeffs>{}};
  EXPECT_DOUBLE_EQ(c.step(7.0), 7.0);
}

TEST(Cascade, TwoSectionsCompose) {
  // Two pure one-sample delays = two-sample delay.
  BiquadCoeffs d;
  d.b0 = 0.0;
  d.b1 = 1.0;
  BiquadCascade c{{d, d}};
  EXPECT_DOUBLE_EQ(c.step(1.0), 0.0);
  EXPECT_DOUBLE_EQ(c.step(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c.step(0.0), 1.0);
}

TEST(Cascade, ProcessKeepsRateAndLength) {
  BiquadCascade c{std::vector<BiquadCoeffs>{BiquadCoeffs{}}};
  Waveform in;
  in.sample_rate_hz = 48000.0;
  in.samples = {1.0, 2.0, 3.0};
  const Waveform out = c.process(in);
  EXPECT_EQ(out.samples.size(), 3u);
  EXPECT_DOUBLE_EQ(out.sample_rate_hz, 48000.0);
  EXPECT_DOUBLE_EQ(out.samples[1], 2.0);
}

TEST(Cascade, MagnitudeOfIdentityIsOne) {
  BiquadCascade c{std::vector<BiquadCoeffs>{BiquadCoeffs{}}};
  for (double f : {10.0, 1000.0, 20000.0}) {
    EXPECT_NEAR(c.magnitude_at(f, 48000.0), 1.0, 1e-12);
  }
}

TEST(Cascade, MagnitudeOfMovingAverageNullsNyquist) {
  // y[n] = (x[n] + x[n-1]) / 2 has a zero at Nyquist.
  BiquadCoeffs c;
  c.b0 = 0.5;
  c.b1 = 0.5;
  BiquadCascade cas{{c}};
  EXPECT_NEAR(cas.magnitude_at(24000.0, 48000.0), 0.0, 1e-12);
  EXPECT_NEAR(cas.magnitude_at(0.0, 48000.0), 1.0, 1e-12);
}

TEST(Waveform, DurationFromRate) {
  Waveform w;
  w.sample_rate_hz = 1000.0;
  w.samples.assign(500, 0.0);
  EXPECT_DOUBLE_EQ(w.duration(), 0.5);
  Waveform empty;
  EXPECT_DOUBLE_EQ(empty.duration(), 0.0);
}

}  // namespace
}  // namespace densevlc::dsp
