// Tests for the quantizing ADC model.
#include "dsp/adc.hpp"

#include <gtest/gtest.h>

namespace densevlc::dsp {
namespace {

TEST(Adc, QuantizeEndpoints) {
  Adc adc{AdcConfig{1e6, 12, 0.0, 3.3}};
  EXPECT_EQ(adc.quantize(0.0), 0u);
  EXPECT_EQ(adc.quantize(3.3), 4095u);
}

TEST(Adc, ClipsOutOfRange) {
  Adc adc{AdcConfig{1e6, 12, 0.0, 3.3}};
  EXPECT_EQ(adc.quantize(-1.0), 0u);
  EXPECT_EQ(adc.quantize(10.0), 4095u);
}

TEST(Adc, RoundTripWithinHalfLsb) {
  Adc adc{AdcConfig{1e6, 12, 0.0, 3.3}};
  for (double v = 0.0; v <= 3.3; v += 0.123) {
    const double rt = adc.code_to_volts(adc.quantize(v));
    EXPECT_NEAR(rt, v, adc.lsb() / 2.0 + 1e-12);
  }
}

TEST(Adc, LsbMatchesResolution) {
  Adc adc8{AdcConfig{1e6, 8, 0.0, 2.55}};
  EXPECT_NEAR(adc8.lsb(), 0.01, 1e-12);
}

TEST(Adc, CodeToVoltsClampsOverflowCodes) {
  Adc adc{AdcConfig{1e6, 8, 0.0, 1.0}};
  EXPECT_DOUBLE_EQ(adc.code_to_volts(255), 1.0);
  EXPECT_DOUBLE_EQ(adc.code_to_volts(9999), 1.0);
}

TEST(Adc, DigitizeResamplesDuration) {
  Adc adc{AdcConfig{1e6, 12, 0.0, 3.3}};
  Waveform analog;
  analog.sample_rate_hz = 4e6;  // TX oversampled 4x
  analog.samples.assign(4000, 1.0);  // 1 ms
  const auto codes = adc.digitize(analog);
  EXPECT_EQ(codes.size(), 1000u);  // 1 ms at 1 Msps
}

TEST(Adc, DigitizeZeroOrderHold) {
  Adc adc{AdcConfig{1000.0, 12, 0.0, 1.0}};
  Waveform analog;
  analog.sample_rate_hz = 500.0;  // upsampling case: hold values
  analog.samples = {0.0, 1.0};
  const auto out = adc.digitize_to_voltage(analog);
  ASSERT_EQ(out.samples.size(), 4u);
  EXPECT_NEAR(out.samples[0], 0.0, adc.lsb());
  EXPECT_NEAR(out.samples[1], 0.0, adc.lsb());
  EXPECT_NEAR(out.samples[2], 1.0, adc.lsb());
  EXPECT_NEAR(out.samples[3], 1.0, adc.lsb());
}

TEST(Adc, EmptyInputGivesEmptyOutput) {
  Adc adc{AdcConfig{}};
  EXPECT_TRUE(adc.digitize(Waveform{}).empty());
}

}  // namespace
}  // namespace densevlc::dsp
