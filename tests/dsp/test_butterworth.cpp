// Tests for Butterworth low-pass design and the AC-coupling high-pass.
#include "dsp/butterworth.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace densevlc::dsp {
namespace {

constexpr double kFs = 1e6;

TEST(Butterworth, RejectsBadArguments) {
  EXPECT_THROW(design_butterworth_lowpass(0, 1000.0, kFs),
               std::invalid_argument);
  EXPECT_THROW(design_butterworth_lowpass(4, 0.0, kFs),
               std::invalid_argument);
  EXPECT_THROW(design_butterworth_lowpass(4, kFs, kFs),
               std::invalid_argument);
}

TEST(Butterworth, SectionCountMatchesOrder) {
  EXPECT_EQ(design_butterworth_lowpass(7, 100e3, kFs).size(), 4u);
  EXPECT_EQ(design_butterworth_lowpass(4, 100e3, kFs).size(), 2u);
  EXPECT_EQ(design_butterworth_lowpass(1, 100e3, kFs).size(), 1u);
}

TEST(Butterworth, UnityGainAtDc) {
  for (std::size_t order : {1u, 2u, 5u, 7u}) {
    BiquadCascade c{design_butterworth_lowpass(order, 100e3, kFs)};
    EXPECT_NEAR(c.magnitude_at(1.0, kFs), 1.0, 1e-6) << "order " << order;
  }
}

TEST(Butterworth, MinusThreeDbAtCorner) {
  for (std::size_t order : {2u, 4u, 7u}) {
    BiquadCascade c{design_butterworth_lowpass(order, 100e3, kFs)};
    EXPECT_NEAR(c.magnitude_at(100e3, kFs), std::sqrt(0.5), 1e-3)
        << "order " << order;
  }
}

TEST(Butterworth, MonotoneMagnitudeResponse) {
  // Butterworth is maximally flat: |H| decreases monotonically with f.
  BiquadCascade c{design_butterworth_lowpass(7, 100e3, kFs)};
  double prev = 2.0;
  for (double f = 1000.0; f < kFs / 2.0; f *= 1.3) {
    const double mag = c.magnitude_at(f, kFs);
    EXPECT_LE(mag, prev + 1e-9);
    prev = mag;
  }
}

TEST(Butterworth, SeventhOrderRollsOffSteeply) {
  // ~42 dB/octave: one octave above the corner must be below -36 dB...
  // use the asymptotic bound loosely: >= 30 dB down at 2x corner.
  BiquadCascade c{design_butterworth_lowpass(7, 100e3, kFs)};
  const double mag = c.magnitude_at(200e3, kFs);
  EXPECT_LT(20.0 * std::log10(mag), -30.0);
}

TEST(Butterworth, HigherOrderIsSharper) {
  BiquadCascade c2{design_butterworth_lowpass(2, 100e3, kFs)};
  BiquadCascade c7{design_butterworth_lowpass(7, 100e3, kFs)};
  EXPECT_GT(c2.magnitude_at(200e3, kFs), c7.magnitude_at(200e3, kFs));
}

TEST(AcCoupling, BlocksDcPassesBand) {
  BiquadCascade c{{design_ac_coupling_highpass(1000.0, kFs)}};
  EXPECT_NEAR(c.magnitude_at(0.0, kFs), 0.0, 1e-9);
  EXPECT_NEAR(c.magnitude_at(100e3, kFs), 1.0, 1e-3);
  EXPECT_NEAR(c.magnitude_at(1000.0, kFs), std::sqrt(0.5), 1e-3);
}

TEST(AcCoupling, RemovesConstantOffsetInTime) {
  BiquadCascade c{{design_ac_coupling_highpass(1000.0, kFs)}};
  double y = 0.0;
  for (int i = 0; i < 100000; ++i) y = c.step(5.0);  // constant input
  EXPECT_NEAR(y, 0.0, 1e-6);
}

TEST(AcCoupling, RejectsBadArguments) {
  EXPECT_THROW(design_ac_coupling_highpass(0.0, kFs), std::invalid_argument);
  EXPECT_THROW(design_ac_coupling_highpass(kFs, kFs), std::invalid_argument);
}

// Property sweep: for all orders 1..8 the corner attenuation is -3 dB and
// DC gain is 1 (the definition of a Butterworth low-pass).
class OrderSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OrderSweep, CornerAndDcInvariants) {
  BiquadCascade c{design_butterworth_lowpass(GetParam(), 50e3, kFs)};
  EXPECT_NEAR(c.magnitude_at(1.0, kFs), 1.0, 1e-6);
  EXPECT_NEAR(c.magnitude_at(50e3, kFs), std::sqrt(0.5), 2e-3);
}

INSTANTIATE_TEST_SUITE_P(Orders, OrderSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace densevlc::dsp
