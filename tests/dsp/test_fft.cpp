// Tests for the radix-2 FFT.
#include "dsp/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace densevlc::dsp {
namespace {

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> data(12);
  EXPECT_THROW(fft(data), std::invalid_argument);
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(96));
}

TEST(Fft, DeltaHasFlatSpectrum) {
  std::vector<Complex> data(16, Complex{0.0, 0.0});
  data[0] = {1.0, 0.0};
  fft(data);
  for (const auto& c : data) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsOnItsBin) {
  const std::size_t n = 64;
  const std::size_t tone = 5;
  std::vector<Complex> data(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double phase = 2.0 * kPi * static_cast<double>(tone * t) /
                         static_cast<double>(n);
    data[t] = {std::cos(phase), 0.0};
  }
  fft(data);
  // A real cosine splits between bins `tone` and `n - tone`.
  EXPECT_NEAR(std::abs(data[tone]), static_cast<double>(n) / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[n - tone]), static_cast<double>(n) / 2.0, 1e-9);
  for (std::size_t k = 0; k < n; ++k) {
    if (k != tone && k != n - tone) {
      EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-9) << "bin " << k;
    }
  }
}

TEST(Fft, RoundTripIsIdentity) {
  Rng rng{99};
  std::vector<Complex> data(128);
  for (auto& c : data) c = {rng.gaussian(), rng.gaussian()};
  const auto original = data;
  fft(data);
  ifft(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng{100};
  std::vector<Complex> data(256);
  double time_energy = 0.0;
  for (auto& c : data) {
    c = {rng.gaussian(), rng.gaussian()};
    time_energy += std::norm(c);
  }
  fft(data);
  double freq_energy = 0.0;
  for (const auto& c : data) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy, time_energy * 256.0, time_energy * 1e-9);
}

TEST(Fft, LinearityHolds) {
  Rng rng{101};
  const std::size_t n = 32;
  std::vector<Complex> a(n);
  std::vector<Complex> b(n);
  std::vector<Complex> sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = {rng.gaussian(), rng.gaussian()};
    b[i] = {rng.gaussian(), rng.gaussian()};
    sum[i] = a[i] + 2.0 * b[i];
  }
  fft(a);
  fft(b);
  fft(sum);
  for (std::size_t i = 0; i < n; ++i) {
    const Complex expect = a[i] + 2.0 * b[i];
    EXPECT_NEAR(std::abs(sum[i] - expect), 0.0, 1e-9);
  }
}

TEST(Fft, RealHelperMatchesComplexPath) {
  const std::vector<double> signal{1.0, 2.0, -1.0, 0.5, 0.0, 3.0, -2.0, 1.5};
  const auto spec = fft_real(signal);
  std::vector<Complex> manual(signal.begin(), signal.end());
  fft(manual);
  ASSERT_EQ(spec.size(), manual.size());
  for (std::size_t i = 0; i < spec.size(); ++i) {
    EXPECT_NEAR(std::abs(spec[i] - manual[i]), 0.0, 1e-12);
  }
}

}  // namespace
}  // namespace densevlc::dsp
