// Tests for the projected-gradient optimal solver (paper Eq. 5-7).
#include "alloc/optimal.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "alloc/assignment.hpp"
#include "common/thread_pool.hpp"
#include "scenario/scenarios.hpp"

namespace densevlc::alloc {
namespace {

struct Fixture {
  core::Testbed tb = core::make_simulation_testbed();
  channel::ChannelMatrix h = tb.channel_for(scenario::fig7_rx_positions());
  OptimalSolverConfig cfg{};
};

TEST(Gradient, MatchesFiniteDifferences) {
  Fixture f;
  channel::Allocation a{36, 4};
  // A generic interior point with several active entries.
  a.set_swing(7, 0, 0.4);
  a.set_swing(13, 0, 0.2);
  a.set_swing(9, 1, 0.5);
  a.set_swing(19, 2, 0.3);
  a.set_swing(21, 3, 0.45);

  std::vector<double> grad;
  utility_gradient(f.h, a, f.tb.budget, grad);

  const double eps = 1e-6;
  for (const auto& [j, k] : {std::pair<std::size_t, std::size_t>{7, 0},
                            {13, 0},
                            {9, 1},
                            {19, 2},
                            {21, 3}}) {
    channel::Allocation up = a;
    up.set_swing(j, k, a.swing(j, k) + eps);
    channel::Allocation down = a;
    down.set_swing(j, k, std::max(0.0, a.swing(j, k) - eps));
    const double numeric =
        (channel::sum_log_utility(f.h, up, f.tb.budget) -
         channel::sum_log_utility(f.h, down, f.tb.budget)) /
        (up.swing(j, k) - down.swing(j, k));
    const double analytic = grad[j * 4 + k];
    EXPECT_NEAR(analytic, numeric,
                std::max(1e-6, std::fabs(numeric) * 1e-3))
        << "entry (" << j << "," << k << ")";
  }

  // At zero swing the one-sided derivative is exactly zero (dq/dI = I/2):
  // the analytic gradient must report that, not a finite-difference ghost.
  EXPECT_DOUBLE_EQ(grad[9 * 4 + 0], 0.0);
  EXPECT_DOUBLE_EQ(grad[0 * 4 + 0], 0.0);
}

TEST(Projection, EnforcesAllConstraints) {
  Fixture f;
  channel::Allocation a{36, 4};
  for (auto& v : a.data()) v = 0.5;  // wildly infeasible
  project_feasible(a, Watts{1.0}, Amperes{0.9}, f.tb.budget);
  for (std::size_t j = 0; j < 36; ++j) {
    EXPECT_LE(a.tx_total_swing(j).value(), 0.9 + 1e-9);
    for (std::size_t k = 0; k < 4; ++k) EXPECT_GE(a.swing(j, k), 0.0);
  }
  EXPECT_LE(channel::total_comm_power(a, f.tb.budget).value(), 1.0 + 1e-9);
}

TEST(Projection, FeasiblePointUntouched) {
  Fixture f;
  channel::Allocation a{36, 4};
  a.set_swing(7, 0, 0.9);
  const auto before = a.data();
  project_feasible(a, Watts{1.0}, Amperes{0.9}, f.tb.budget);
  EXPECT_EQ(a.data(), before);
}

TEST(Projection, ClampsNegatives) {
  Fixture f;
  channel::Allocation a{2, 2};
  // Negative intermediates only arise through the optimizer's raw-data
  // path; set_swing itself rejects them by contract.
  a.data()[0] = -0.5;
  a.set_swing(1, 1, 0.3);
  project_feasible(a, Watts{10.0}, Amperes{0.9}, f.tb.budget);
  EXPECT_DOUBLE_EQ(a.swing(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(a.swing(1, 1), 0.3);
}

TEST(Solver, SolutionIsFeasible) {
  Fixture f;
  f.cfg.max_iterations = 150;
  const auto res = solve_optimal(f.h, Watts{1.2}, f.tb.budget, f.cfg);
  EXPECT_LE(res.power_used_w, 1.2 + 1e-6);
  for (std::size_t j = 0; j < 36; ++j) {
    EXPECT_LE(res.allocation.tx_total_swing(j).value(), 0.9 + 1e-9);
  }
}

TEST(Solver, NeverWorseThanHeuristic) {
  Fixture f;
  f.cfg.max_iterations = 150;
  for (double budget : {0.3, 0.8, 1.5}) {
    const auto opt = solve_optimal(f.h, Watts{budget}, f.tb.budget, f.cfg);
    AssignmentOptions opts;
    opts.allow_partial_tail = true;
    const auto heur = heuristic_allocate(f.h, 1.3, Watts{budget}, f.tb.budget, opts);
    const double heur_utility =
        channel::sum_log_utility(f.h, heur.allocation, f.tb.budget);
    EXPECT_GE(opt.utility, heur_utility - 1e-9) << "budget " << budget;
  }
}

TEST(Solver, HeuristicLossIsSmall) {
  // Paper Sec. 5: the kappa = 1.3 heuristic loses only ~1.8% of system
  // throughput versus the optimum. Check the loss stays single-digit
  // percent on the Fig. 7 instance at the paper's mid budget.
  Fixture f;
  const auto opt = solve_optimal(f.h, Watts{1.2}, f.tb.budget, f.cfg);
  AssignmentOptions opts;
  const auto heur = heuristic_allocate(f.h, 1.3, Watts{1.2}, f.tb.budget, opts);
  auto sum_tput = [&](const channel::Allocation& a) {
    double sum = 0.0;
    for (double t : channel::throughput_bps(f.h, a, f.tb.budget)) sum += t;
    return sum;
  };
  const double loss =
      1.0 - sum_tput(heur.allocation) / sum_tput(opt.allocation);
  EXPECT_LT(loss, 0.10);
}

TEST(Solver, UtilityGrowsWithBudget) {
  Fixture f;
  f.cfg.max_iterations = 120;
  double prev = -1e300;
  for (double budget : {0.2, 0.6, 1.2}) {
    const auto res = solve_optimal(f.h, Watts{budget}, f.tb.budget, f.cfg);
    EXPECT_GE(res.utility, prev - 1e-9);
    prev = res.utility;
  }
}

TEST(Solver, ZeroBudgetGivesZeroPower) {
  Fixture f;
  f.cfg.max_iterations = 30;
  const auto res = solve_optimal(f.h, Watts{0.0}, f.tb.budget, f.cfg);
  EXPECT_NEAR(res.power_used_w, 0.0, 1e-12);
}

TEST(Solver, DeterministicGivenSeed) {
  Fixture f;
  f.cfg.max_iterations = 60;
  const auto a = solve_optimal(f.h, Watts{0.8}, f.tb.budget, f.cfg);
  const auto b = solve_optimal(f.h, Watts{0.8}, f.tb.budget, f.cfg);
  EXPECT_DOUBLE_EQ(a.utility, b.utility);
  EXPECT_EQ(a.allocation.data(), b.allocation.data());
}

TEST(ParallelDeterminismOptimal, BitIdenticalAcrossThreadCounts) {
  // The multi-start runs execute on the global pool; the winning
  // allocation and iteration totals must not depend on its size.
  Fixture f;
  f.cfg.max_iterations = 60;
  const auto instances = scenario::random_instances(2, 0.25, f.tb.room, 0x0B7);
  for (const auto& rx_xy : instances) {
    const auto h = f.tb.channel_for(rx_xy);
    OptimalResult reference;
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}, hardware_threads()}) {
      set_global_threads(threads);
      const auto res = solve_optimal(h, Watts{0.8}, f.tb.budget, f.cfg);
      if (threads == 1) {
        reference = res;
        continue;
      }
      EXPECT_EQ(res.allocation.data(), reference.allocation.data())
          << threads << " threads";
      EXPECT_EQ(res.utility, reference.utility);
      EXPECT_EQ(res.iterations, reference.iterations);
    }
  }
  set_global_threads(0);
}

}  // namespace
}  // namespace densevlc::alloc
