// Tests for the SISO and D-MISO baseline policies (paper Sec. 8.3).
#include "alloc/baselines.hpp"

#include <gtest/gtest.h>

#include "alloc/assignment.hpp"
#include "scenario/scenarios.hpp"

namespace densevlc::alloc {
namespace {

struct Fixture {
  core::Testbed tb = core::make_experimental_testbed();
  channel::ChannelMatrix h = tb.channel_for(scenario::fig7_rx_positions());
};

TEST(Siso, AssignsExactlyOneTxPerRx) {
  Fixture f;
  const auto res = siso_nearest_tx(f.h, Amperes{0.9}, f.tb.budget);
  std::size_t assigned = 0;
  for (std::size_t j = 0; j < 36; ++j) {
    const double total = res.allocation.tx_total_swing(j).value();
    if (total > 0.0) {
      ++assigned;
      EXPECT_DOUBLE_EQ(total, 0.9);
    }
  }
  EXPECT_EQ(assigned, 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    std::size_t servers = 0;
    for (std::size_t j = 0; j < 36; ++j) {
      if (res.allocation.swing(j, k) > 0.0) ++servers;
    }
    EXPECT_EQ(servers, 1u) << "RX " << k;
  }
}

TEST(Siso, PowerIsFourFullSwings) {
  Fixture f;
  const auto res = siso_nearest_tx(f.h, Amperes{0.9}, f.tb.budget);
  EXPECT_NEAR(res.power_used_w,
              4.0 * full_swing_tx_power(Amperes{0.9}, f.tb.budget).value(), 1e-12);
}

TEST(Siso, ServesStrongestAvailableTx) {
  Fixture f;
  const auto res = siso_nearest_tx(f.h, Amperes{0.9}, f.tb.budget);
  // RX0's best TX (idx 7 for the Fig. 7 layout) is not contested by the
  // other RXs, so it must be the one assigned.
  EXPECT_GT(res.allocation.swing(f.h.best_tx_for(0), 0), 0.0);
}

TEST(Siso, ContestedTxGoesToStrongerRx) {
  // Two RXs whose best TX is the same: gains 10 vs 8 for TX0.
  channel::ChannelMatrix h{2, 2, {10e-7, 8e-7, 1e-7, 2e-7}};
  const auto tb = core::make_experimental_testbed();
  const auto res = siso_nearest_tx(h, Amperes{0.9}, tb.budget);
  EXPECT_GT(res.allocation.swing(0, 0), 0.0);  // TX0 -> RX0 (10 > 8)
  EXPECT_GT(res.allocation.swing(1, 1), 0.0);  // RX1 falls back to TX1
}

TEST(Dmiso, NineTxsPerRx) {
  Fixture f;
  const auto res = dmiso_all_tx(f.h, 9, Amperes{0.9}, f.tb.budget);
  for (std::size_t k = 0; k < 4; ++k) {
    std::size_t servers = 0;
    for (std::size_t j = 0; j < 36; ++j) {
      if (res.allocation.swing(j, k) > 0.0) ++servers;
    }
    EXPECT_EQ(servers, 9u) << "RX " << k;
  }
  EXPECT_NEAR(res.power_used_w,
              36.0 * full_swing_tx_power(Amperes{0.9}, f.tb.budget).value(), 1e-9);
}

TEST(Dmiso, UsesMorePowerThanSiso) {
  Fixture f;
  const auto siso = siso_nearest_tx(f.h, Amperes{0.9}, f.tb.budget);
  const auto dmiso = dmiso_all_tx(f.h, 9, Amperes{0.9}, f.tb.budget);
  EXPECT_GT(dmiso.power_used_w, siso.power_used_w * 5.0);
}

TEST(Dmiso, MoreThroughputThanSiso) {
  // The paper's premise: D-MISO beats SISO in raw throughput (by burning
  // far more power).
  Fixture f;
  const auto siso = siso_nearest_tx(f.h, Amperes{0.9}, f.tb.budget);
  const auto dmiso = dmiso_all_tx(f.h, 9, Amperes{0.9}, f.tb.budget);
  auto sum = [&](const channel::Allocation& a) {
    double s = 0.0;
    for (double t : channel::throughput_bps(f.h, a, f.tb.budget)) s += t;
    return s;
  };
  EXPECT_GT(sum(dmiso.allocation), sum(siso.allocation));
}

TEST(Dmiso, EachTxServesOneRxOnly) {
  Fixture f;
  const auto res = dmiso_all_tx(f.h, 9, Amperes{0.9}, f.tb.budget);
  for (std::size_t j = 0; j < 36; ++j) {
    std::size_t serves = 0;
    for (std::size_t k = 0; k < 4; ++k) {
      if (res.allocation.swing(j, k) > 0.0) ++serves;
    }
    EXPECT_LE(serves, 1u);
  }
}

TEST(Baselines, DenseVlcMatchesSisoEfficiencyAtSisoPower) {
  // Fig. 21: at SISO's operating power, DenseVLC achieves at least SISO's
  // throughput (it can always reproduce the SISO assignment).
  Fixture f;
  const auto siso = siso_nearest_tx(f.h, Amperes{0.9}, f.tb.budget);
  AssignmentOptions opts;
  const auto dense = heuristic_allocate(
      f.h, 1.3, Watts{siso.power_used_w + 1e-9}, f.tb.budget, opts);
  auto sum = [&](const channel::Allocation& a) {
    double s = 0.0;
    for (double t : channel::throughput_bps(f.h, a, f.tb.budget)) s += t;
    return s;
  };
  EXPECT_GE(sum(dense.allocation), sum(siso.allocation) * 0.9);
}

}  // namespace
}  // namespace densevlc::alloc
