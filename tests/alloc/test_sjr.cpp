// Tests for the SJR ranking heuristic (paper Algorithm 1).
#include "alloc/sjr.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "alloc/assignment.hpp"
#include "common/thread_pool.hpp"
#include "scenario/scenarios.hpp"

namespace densevlc::alloc {
namespace {

channel::ChannelMatrix paper_channel() {
  return core::make_simulation_testbed().channel_for(
      scenario::fig7_rx_positions());
}

TEST(Sjr, MatrixDefinition) {
  // SJR_{i,j} = H^kappa / sum_j' H_{i,j'}.
  const channel::ChannelMatrix h{1, 2, {4e-7, 1e-7}};
  const auto sjr = sjr_matrix(h, 1.0);
  EXPECT_NEAR(sjr[0], 4e-7 / 5e-7, 1e-12);
  EXPECT_NEAR(sjr[1], 1e-7 / 5e-7, 1e-12);
  const auto sjr2 = sjr_matrix(h, 2.0);
  EXPECT_NEAR(sjr2[0], 4e-7 * 4e-7 / 5e-7, 1e-18);
}

TEST(Sjr, DeadTxScoresZero) {
  const channel::ChannelMatrix h{2, 2, {1e-6, 1e-7, 0.0, 0.0}};
  const auto sjr = sjr_matrix(h, 1.3);
  EXPECT_DOUBLE_EQ(sjr[2], 0.0);
  EXPECT_DOUBLE_EQ(sjr[3], 0.0);
}

TEST(Ranking, IsPermutationOfAllTxs) {
  const auto h = paper_channel();
  for (double kappa : {1.0, 1.2, 1.3, 1.5}) {
    const auto ranking = rank_transmitters(h, kappa);
    ASSERT_EQ(ranking.size(), 36u);
    std::vector<bool> seen(36, false);
    for (const auto& r : ranking) {
      EXPECT_FALSE(seen[r.tx]) << "TX " << r.tx << " ranked twice";
      seen[r.tx] = true;
      EXPECT_LT(r.rx, 4u);
    }
  }
}

TEST(Ranking, ScoresNonIncreasing) {
  const auto ranking = rank_transmitters(paper_channel(), 1.3);
  for (std::size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_LE(ranking[i].sjr, ranking[i - 1].sjr + 1e-18);
  }
}

TEST(Ranking, BestChannelsRankFirst) {
  // The paper's Fig. 9 ordering: TX8 (idx 7) is RX1's first TX and TX10
  // (idx 9) is RX2's; both must appear in the first handful of ranks.
  const auto ranking = rank_transmitters(paper_channel(), 1.3);
  std::size_t rank_tx8 = 99;
  std::size_t rank_tx10 = 99;
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    if (ranking[i].tx == 7) rank_tx8 = i;
    if (ranking[i].tx == 9) rank_tx10 = i;
  }
  EXPECT_LT(rank_tx8, 8u);
  EXPECT_LT(rank_tx10, 8u);
  EXPECT_EQ(ranking[rank_tx8].rx, 0u);
  EXPECT_EQ(ranking[rank_tx10].rx, 1u);
}

TEST(Ranking, InterferingCentralTxRanksLate) {
  // Insight 3: a TX with similar gain toward several RXs (e.g. the grid
  // center, TX15/TX16-ish for the Fig. 7 layout) is deprioritized.
  const auto h = paper_channel();
  const auto ranking = rank_transmitters(h, 1.3);
  // Find the TX whose gain vector is most balanced across RXs.
  std::size_t most_balanced = 0;
  double best_ratio = 1e18;
  for (std::size_t j = 0; j < h.num_tx(); ++j) {
    double top = 0.0;
    double sum = 0.0;
    for (std::size_t k = 0; k < h.num_rx(); ++k) {
      top = std::max(top, h.gain(j, k));
      sum += h.gain(j, k);
    }
    if (sum <= 0.0) continue;
    const double ratio = top / sum;  // 1.0 = exclusive, 0.25 = balanced
    if (ratio < best_ratio) {
      best_ratio = ratio;
      most_balanced = j;
    }
  }
  std::size_t balanced_rank = 0;
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    if (ranking[i].tx == most_balanced) balanced_rank = i;
  }
  EXPECT_GT(balanced_rank, 8u);
}

TEST(Ranking, HigherKappaFavorsOwnChannel) {
  // With larger kappa the first-ranked entries should have higher raw
  // gain toward their assigned RX on average.
  const auto h = paper_channel();
  auto mean_top_gain = [&](double kappa) {
    const auto ranking = rank_transmitters(h, kappa);
    double sum = 0.0;
    for (std::size_t i = 0; i < 8; ++i) {
      sum += h.gain(ranking[i].tx, ranking[i].rx);
    }
    return sum / 8.0;
  };
  EXPECT_GE(mean_top_gain(1.5), mean_top_gain(1.0) * 0.99);
}

TEST(Ranking, DeterministicTieBreaks) {
  const channel::ChannelMatrix h{3, 2,
                                 {1e-6, 1e-6, 1e-6, 1e-6, 1e-6, 1e-6}};
  const auto a = rank_transmitters(h, 1.3);
  const auto b = rank_transmitters(h, 1.3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tx, b[i].tx);
    EXPECT_EQ(a[i].rx, b[i].rx);
  }
  // Lowest TX index wins ties.
  EXPECT_EQ(a[0].tx, 0u);
}

// Property sweep over kappa: ranking is always a permutation with
// monotone scores.
class KappaSweep : public ::testing::TestWithParam<double> {};

TEST_P(KappaSweep, StructuralInvariants) {
  const auto ranking = rank_transmitters(paper_channel(), GetParam());
  ASSERT_EQ(ranking.size(), 36u);
  std::vector<bool> seen(36, false);
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    EXPECT_FALSE(seen[ranking[i].tx]);
    seen[ranking[i].tx] = true;
    if (i > 0) {
      EXPECT_LE(ranking[i].sjr, ranking[i - 1].sjr + 1e-18);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kappas, KappaSweep,
                         ::testing::Values(0.8, 1.0, 1.1, 1.2, 1.3, 1.4,
                                           1.5, 2.0));

TEST(ParallelDeterminismSjr, RankingAndAllocationStableAcrossThreadCounts) {
  // The SJR pipeline itself is serial, but its input channel matrix is
  // built on the global pool — end to end, the ranked list and the
  // resulting allocation must not depend on the pool size.
  const auto tb = core::make_simulation_testbed();
  const auto instances = scenario::random_instances(3, 0.25, tb.room, 0x53A);
  for (const auto& rx_xy : instances) {
    std::vector<RankedTx> ref_ranking;
    std::vector<double> ref_alloc;
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}, hardware_threads()}) {
      set_global_threads(threads);
      const auto h = tb.channel_for(rx_xy);
      const auto ranking = rank_transmitters(h, 1.3);
      AssignmentOptions opts;
      const auto res =
          heuristic_allocate(h, 1.3, Watts{0.9}, tb.budget, opts);
      if (threads == 1) {
        ref_ranking = ranking;
        ref_alloc = res.allocation.data();
        continue;
      }
      ASSERT_EQ(ranking.size(), ref_ranking.size());
      for (std::size_t i = 0; i < ranking.size(); ++i) {
        EXPECT_EQ(ranking[i].tx, ref_ranking[i].tx);
        EXPECT_EQ(ranking[i].rx, ref_ranking[i].rx);
        EXPECT_EQ(ranking[i].sjr, ref_ranking[i].sjr);
      }
      EXPECT_EQ(res.allocation.data(), ref_alloc);
    }
  }
  set_global_threads(0);
}

}  // namespace
}  // namespace densevlc::alloc
