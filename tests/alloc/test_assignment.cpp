// Tests for sequential full-swing power assignment.
#include "alloc/assignment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "scenario/scenarios.hpp"

namespace densevlc::alloc {
namespace {

struct Fixture {
  core::Testbed tb = core::make_simulation_testbed();
  channel::ChannelMatrix h = tb.channel_for(scenario::fig7_rx_positions());
  AssignmentOptions opts{};
};

TEST(Assignment, FullSwingTxPowerValue) {
  const auto tb = core::make_simulation_testbed();
  // r * (0.45)^2 with our CREE XT-E fit (r = 0.267 ohm) = 54.1 mW. The
  // paper quotes 74.42 mW from the same formula; see EXPERIMENTS.md for
  // the calibration note. Assert our self-consistent value.
  const double p = full_swing_tx_power(Amperes{0.9}, tb.budget).value();
  EXPECT_NEAR(p, tb.budget.dynamic_resistance_ohm * 0.2025, 1e-12);
  EXPECT_GT(p, 0.04);
  EXPECT_LT(p, 0.08);
}

TEST(Assignment, ZeroBudgetAssignsNothing) {
  Fixture f;
  const auto res = heuristic_allocate(f.h, 1.3, Watts{0.0}, f.tb.budget, f.opts);
  EXPECT_EQ(res.txs_assigned, 0u);
  EXPECT_DOUBLE_EQ(res.power_used_w, 0.0);
}

TEST(Assignment, BudgetControlsTxCount) {
  Fixture f;
  const double per_tx = full_swing_tx_power(Amperes{0.9}, f.tb.budget).value();
  for (std::size_t n : {1u, 4u, 10u, 20u}) {
    const auto res = heuristic_allocate(
        f.h, 1.3, Watts{per_tx * static_cast<double>(n) + 1e-9}, f.tb.budget,
        f.opts);
    EXPECT_EQ(res.txs_assigned, n);
  }
}

TEST(Assignment, PowerNeverExceedsBudget) {
  Fixture f;
  for (double budget : {0.05, 0.3, 0.7, 1.2, 2.0, 3.0}) {
    const auto res = heuristic_allocate(f.h, 1.3, Watts{budget}, f.tb.budget, f.opts);
    EXPECT_LE(channel::total_comm_power(res.allocation, f.tb.budget).value(),
              budget + 1e-9);
    EXPECT_NEAR(res.power_used_w,
                channel::total_comm_power(res.allocation, f.tb.budget).value(),
                1e-12);
  }
}

TEST(Assignment, BinarySwingsOnly) {
  Fixture f;
  const auto res = heuristic_allocate(f.h, 1.3, Watts{1.2}, f.tb.budget, f.opts);
  for (std::size_t j = 0; j < 36; ++j) {
    const double total = res.allocation.tx_total_swing(j).value();
    EXPECT_TRUE(total == 0.0 || std::fabs(total - 0.9) < 1e-12)
        << "TX " << j << " has partial swing " << total;
  }
}

TEST(Assignment, PartialTailExhaustsBudget) {
  Fixture f;
  f.opts.allow_partial_tail = true;
  const double per_tx = full_swing_tx_power(Amperes{0.9}, f.tb.budget).value();
  const double budget = 2.5 * per_tx;  // 2 full + half a TX
  const auto res = heuristic_allocate(f.h, 1.3, Watts{budget}, f.tb.budget, f.opts);
  EXPECT_EQ(res.txs_assigned, 3u);
  EXPECT_NEAR(res.power_used_w, budget, 1e-9);
}

TEST(Assignment, EachAssignedTxServesItsRankedRx) {
  Fixture f;
  const auto ranking = rank_transmitters(f.h, 1.3);
  const auto res = assign_by_ranking(ranking, 36, 4, Watts{0.5}, f.tb.budget,
                                     f.opts);
  std::size_t checked = 0;
  for (const auto& entry : ranking) {
    if (res.allocation.swing(entry.tx, entry.rx) > 0.0) {
      // The swing must be on the ranked RX, nowhere else.
      for (std::size_t k = 0; k < 4; ++k) {
        if (k != entry.rx) {
          EXPECT_DOUBLE_EQ(res.allocation.swing(entry.tx, k), 0.0);
        }
      }
      ++checked;
    }
  }
  EXPECT_EQ(checked, res.txs_assigned);
}

TEST(Assignment, PrefixProperty) {
  // Raising the budget only ever adds TXs; the previous assignment stays
  // (Insight 1: sequential assignment down the ranking).
  Fixture f;
  const auto small =
      heuristic_allocate(f.h, 1.3, Watts{0.3}, f.tb.budget, f.opts).allocation;
  const auto large =
      heuristic_allocate(f.h, 1.3, Watts{1.0}, f.tb.budget, f.opts).allocation;
  for (std::size_t j = 0; j < 36; ++j) {
    for (std::size_t k = 0; k < 4; ++k) {
      if (small.swing(j, k) > 0.0) {
        EXPECT_DOUBLE_EQ(large.swing(j, k), small.swing(j, k));
      }
    }
  }
}

TEST(Assignment, UnreachableTxsNeverAssigned) {
  // A channel where TX1 reaches nobody: infinite budget still skips it.
  channel::ChannelMatrix h{2, 1, {1e-6, 0.0}};
  const auto tb = core::make_simulation_testbed();
  AssignmentOptions opts;
  const auto res = heuristic_allocate(h, 1.3, Watts{100.0}, tb.budget, opts);
  EXPECT_EQ(res.txs_assigned, 1u);
  EXPECT_DOUBLE_EQ(res.allocation.swing(1, 0), 0.0);
}

TEST(Assignment, ThroughputGrowsWithBudgetUntilSaturation) {
  Fixture f;
  double prev = -1.0;
  for (double budget : {0.1, 0.3, 0.6, 0.9}) {
    const auto res = heuristic_allocate(f.h, 1.3, Watts{budget}, f.tb.budget, f.opts);
    const auto tput =
        channel::throughput_bps(f.h, res.allocation, f.tb.budget);
    double sum = 0.0;
    for (double t : tput) sum += t;
    EXPECT_GT(sum, prev);
    prev = sum;
  }
}

}  // namespace
}  // namespace densevlc::alloc
