// Tests for the small-cell baseline.
#include "alloc/small_cell.hpp"

#include <gtest/gtest.h>

#include "alloc/assignment.hpp"
#include "scenario/scenarios.hpp"

namespace densevlc::alloc {
namespace {

struct Fixture {
  core::Testbed tb = core::make_experimental_testbed();
  CellPartition cells{tb.room, 2, 2};
  std::vector<geom::Vec3> rx_xy = scenario::scenario1_rx_positions();
  channel::ChannelMatrix h = tb.channel_for(rx_xy);
};

TEST(CellPartition, MapsQuadrants) {
  const CellPartition cells{geom::Room{3.0, 3.0, 2.8}, 2, 2};
  EXPECT_EQ(cells.cell_of(0.5, 0.5), 0u);
  EXPECT_EQ(cells.cell_of(2.5, 0.5), 1u);
  EXPECT_EQ(cells.cell_of(0.5, 2.5), 2u);
  EXPECT_EQ(cells.cell_of(2.5, 2.5), 3u);
  // Out-of-room clamps.
  EXPECT_EQ(cells.cell_of(-1.0, -1.0), 0u);
  EXPECT_EQ(cells.cell_of(9.0, 9.0), 3u);
}

TEST(SmallCell, ServesEachRxFromOwnCellOnly) {
  Fixture f;
  const auto res = small_cell_allocate(f.h, f.cells, f.tb.tx_poses(),
                                       f.rx_xy, Watts{1.2}, Amperes{0.9}, f.tb.budget);
  const auto tx_poses = f.tb.tx_poses();
  for (std::size_t j = 0; j < f.h.num_tx(); ++j) {
    for (std::size_t k = 0; k < f.h.num_rx(); ++k) {
      if (res.allocation.swing(j, k) > 0.0) {
        EXPECT_EQ(f.cells.cell_of(tx_poses[j].position.x,
                                  tx_poses[j].position.y),
                  res.rx_cell[k])
            << "TX " << j << " serves RX " << k << " across cells";
      }
    }
  }
}

TEST(SmallCell, BudgetSplitAcrossOccupiedCells) {
  Fixture f;
  const double budget = 0.5;
  const auto res = small_cell_allocate(f.h, f.cells, f.tb.tx_poses(),
                                       f.rx_xy, Watts{budget}, Amperes{0.9}, f.tb.budget);
  EXPECT_LE(res.power_used_w, budget + 1e-9);
  // Scenario 1 has one RX per quadrant: all four cells occupied, so each
  // gets 0.125 W = 2 full-swing TXs.
  const double per_tx = full_swing_tx_power(Amperes{0.9}, f.tb.budget).value();
  const auto expected_per_cell =
      static_cast<std::size_t>(budget / 4.0 / per_tx);
  for (std::size_t k = 0; k < 4; ++k) {
    std::size_t servers = 0;
    for (std::size_t j = 0; j < f.h.num_tx(); ++j) {
      if (res.allocation.swing(j, k) > 0.0) ++servers;
    }
    EXPECT_EQ(servers, expected_per_cell) << "RX " << k;
  }
}

TEST(SmallCell, EmptyRoomAllocatesNothing) {
  Fixture f;
  const auto h_empty = f.tb.channel_for({});
  const auto res = small_cell_allocate(h_empty, f.cells, f.tb.tx_poses(),
                                       {}, Watts{1.2}, Amperes{0.9}, f.tb.budget);
  EXPECT_DOUBLE_EQ(res.power_used_w, 0.0);
}

TEST(SmallCell, CellFreeBeatsSmallCellAtBoundary) {
  // The cell-free pitch: an RX standing on a cell boundary is served by
  // neighbours from both sides under DenseVLC, but only by its own
  // (half-empty) cell under small cells.
  Fixture f;
  const std::vector<geom::Vec3> boundary_rx{{1.5, 0.75, 0.0}};
  const auto h = f.tb.channel_for(boundary_rx);
  const double budget = 0.3;

  const auto cellular = small_cell_allocate(
      h, f.cells, f.tb.tx_poses(), boundary_rx, Watts{budget}, Amperes{0.9}, f.tb.budget);
  AssignmentOptions opts;
  const auto dense = heuristic_allocate(h, 1.3, Watts{budget}, f.tb.budget, opts);

  auto tput = [&](const channel::Allocation& a) {
    return channel::throughput_bps(h, a, f.tb.budget)[0];
  };
  EXPECT_GT(tput(dense.allocation), tput(cellular.allocation));
}

}  // namespace
}  // namespace densevlc::alloc
