// Tests for the greedy marginal-utility allocator.
#include "alloc/greedy.hpp"

#include <gtest/gtest.h>

#include "alloc/assignment.hpp"
#include "common/thread_pool.hpp"
#include "scenario/scenarios.hpp"

namespace densevlc::alloc {
namespace {

struct Fixture {
  core::Testbed tb = core::make_simulation_testbed();
  channel::ChannelMatrix h = tb.channel_for(scenario::fig7_rx_positions());
};

TEST(Greedy, RespectsBudget) {
  Fixture f;
  for (double budget : {0.1, 0.5, 1.2}) {
    const auto res = greedy_allocate(f.h, Watts{budget}, f.tb.budget);
    EXPECT_LE(res.power_used_w, budget + 1e-9);
    EXPECT_NEAR(res.power_used_w,
                channel::total_comm_power(res.allocation, f.tb.budget).value(),
                1e-12);
  }
}

TEST(Greedy, ZeroBudgetAssignsNothing) {
  Fixture f;
  const auto res = greedy_allocate(f.h, Watts{0.0}, f.tb.budget);
  EXPECT_EQ(res.txs_assigned, 0u);
}

TEST(Greedy, AllAssignmentsFullSwing) {
  Fixture f;
  const auto res = greedy_allocate(f.h, Watts{0.8}, f.tb.budget);
  for (std::size_t j = 0; j < 36; ++j) {
    const double total = res.allocation.tx_total_swing(j).value();
    EXPECT_TRUE(total == 0.0 || std::abs(total - 0.9) < 1e-12);
  }
}

TEST(Greedy, FirstGrantIsBestSingleTx) {
  // With budget for one TX, greedy must find the single best grant.
  Fixture f;
  const double per_tx = full_swing_tx_power(Amperes{0.9}, f.tb.budget).value();
  const auto res = greedy_allocate(f.h, Watts{per_tx + 1e-9}, f.tb.budget);
  ASSERT_EQ(res.txs_assigned, 1u);
  const double greedy_utility = res.utility;
  // Exhaustive check.
  double best = -1e300;
  for (std::size_t j = 0; j < 36; ++j) {
    for (std::size_t k = 0; k < 4; ++k) {
      channel::Allocation a{36, 4};
      a.set_swing(j, k, 0.9);
      best = std::max(best, channel::sum_log_utility(f.h, a, f.tb.budget));
    }
  }
  EXPECT_NEAR(greedy_utility, best, 1e-9);
}

TEST(Greedy, UtilityAtLeastSjrHeuristic) {
  // Greedy re-evaluates coupling every step; it should not lose to the
  // channel-only ranking (ties allowed).
  Fixture f;
  AssignmentOptions opts;
  for (double budget : {0.3, 0.8, 1.2}) {
    const auto greedy = greedy_allocate(f.h, Watts{budget}, f.tb.budget);
    const auto sjr = heuristic_allocate(f.h, 1.3, Watts{budget}, f.tb.budget, opts);
    EXPECT_GE(greedy.utility,
              channel::sum_log_utility(f.h, sjr.allocation, f.tb.budget) -
                  0.05)
        << "budget " << budget;
  }
}

TEST(Greedy, StopsWhenNoGrantHelps) {
  // A huge budget must not force harmful grants: greedy stops early.
  Fixture f;
  const auto res = greedy_allocate(f.h, Watts{100.0}, f.tb.budget);
  EXPECT_LT(res.txs_assigned, 36u);
  // The utility of the result must not improve by removing any TX
  // (local maximality in the downward direction is not guaranteed, but
  // the final grant was an improvement).
  EXPECT_GT(res.utility, 0.0);
}

TEST(Greedy, CountsEvaluations) {
  Fixture f;
  const auto res = greedy_allocate(f.h, Watts{0.2}, f.tb.budget);
  // At least one full scan of 36 x 4 candidates.
  EXPECT_GE(res.evaluations, 100u);
}

TEST(ParallelDeterminismGreedy, BitIdenticalAcrossThreadCounts) {
  // The candidate evaluations run on the global pool; the allocation,
  // utility and evaluation count must not depend on its size.
  Fixture f;
  const auto instances = scenario::random_instances(4, 0.25, f.tb.room, 0x6EE);
  for (const auto& rx_xy : instances) {
    const auto h = f.tb.channel_for(rx_xy);
    GreedyResult reference;
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}, hardware_threads()}) {
      set_global_threads(threads);
      const auto res = greedy_allocate(h, Watts{0.9}, f.tb.budget);
      if (threads == 1) {
        reference = res;
        continue;
      }
      EXPECT_EQ(res.allocation.data(), reference.allocation.data())
          << threads << " threads";
      EXPECT_EQ(res.utility, reference.utility);
      EXPECT_EQ(res.evaluations, reference.evaluations);
      EXPECT_EQ(res.txs_assigned, reference.txs_assigned);
    }
  }
  set_global_threads(0);
}

}  // namespace
}  // namespace densevlc::alloc
