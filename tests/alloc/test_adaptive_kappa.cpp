// Tests for per-TX personalized kappa (paper Sec. 9 future work).
#include "alloc/adaptive_kappa.hpp"

#include <gtest/gtest.h>

#include "alloc/sjr.hpp"
#include "scenario/scenarios.hpp"

namespace densevlc::alloc {
namespace {

struct Fixture {
  core::Testbed tb = core::make_simulation_testbed();
  channel::ChannelMatrix h = tb.channel_for(scenario::fig7_rx_positions());
  AssignmentOptions opts{};
};

TEST(PerTxRanking, UniformKappaMatchesGlobalRanking) {
  Fixture f;
  const std::vector<double> kappas(36, 1.3);
  const auto per_tx = rank_transmitters_per_tx(f.h, kappas);
  const auto global = rank_transmitters(f.h, 1.3);
  ASSERT_EQ(per_tx.size(), global.size());
  for (std::size_t i = 0; i < global.size(); ++i) {
    EXPECT_EQ(per_tx[i].tx, global[i].tx);
    EXPECT_EQ(per_tx[i].rx, global[i].rx);
  }
}

TEST(PerTxRanking, IsPermutation) {
  Fixture f;
  std::vector<double> kappas(36);
  for (std::size_t j = 0; j < 36; ++j) {
    kappas[j] = 0.8 + 0.05 * static_cast<double>(j % 10);
  }
  const auto ranking = rank_transmitters_per_tx(f.h, kappas);
  std::vector<bool> seen(36, false);
  for (const auto& r : ranking) {
    EXPECT_FALSE(seen[r.tx]);
    seen[r.tx] = true;
  }
}

TEST(AdaptiveKappa, NeverWorseThanUniformBaseline) {
  Fixture f;
  AdaptiveKappaConfig cfg;
  cfg.max_rounds = 4;
  const auto res =
      personalize_kappa(f.h, Watts{0.8}, f.tb.budget, f.opts, cfg);
  EXPECT_GE(res.utility, res.baseline_utility - 1e-12);
  EXPECT_GT(res.evaluations, 1u);
}

TEST(AdaptiveKappa, KappasStayInBox) {
  Fixture f;
  AdaptiveKappaConfig cfg;
  cfg.max_rounds = 3;
  const auto res = personalize_kappa(f.h, Watts{1.0}, f.tb.budget, f.opts, cfg);
  ASSERT_EQ(res.kappas.size(), 36u);
  for (double k : res.kappas) {
    EXPECT_GE(k, cfg.kappa_min);
    EXPECT_LE(k, cfg.kappa_max);
  }
}

TEST(AdaptiveKappa, AllocationRespectsBudget) {
  Fixture f;
  AdaptiveKappaConfig cfg;
  cfg.max_rounds = 3;
  const double budget = 0.6;
  const auto res = personalize_kappa(f.h, Watts{budget}, f.tb.budget, f.opts, cfg);
  EXPECT_LE(channel::total_comm_power(res.allocation, f.tb.budget).value(),
            budget + 1e-9);
}

TEST(AdaptiveKappa, Deterministic) {
  Fixture f;
  AdaptiveKappaConfig cfg;
  cfg.max_rounds = 2;
  const auto a = personalize_kappa(f.h, Watts{0.8}, f.tb.budget, f.opts, cfg);
  const auto b = personalize_kappa(f.h, Watts{0.8}, f.tb.budget, f.opts, cfg);
  EXPECT_EQ(a.kappas, b.kappas);
  EXPECT_DOUBLE_EQ(a.utility, b.utility);
}

TEST(AdaptiveKappa, ImprovesOnBadStartingPoint) {
  // Starting from kappa = 1.0 (known to be far from optimal in
  // interference-heavy layouts), the search must find a better point.
  Fixture f;
  AdaptiveKappaConfig cfg;
  cfg.initial_kappa = 1.0;
  cfg.max_rounds = 6;
  const auto res = personalize_kappa(f.h, Watts{0.8}, f.tb.budget, f.opts, cfg);
  EXPECT_GT(res.utility, res.baseline_utility + 1e-6);
}

}  // namespace
}  // namespace densevlc::alloc
