// Tests for the binary-rounding polish (Insight 2 as a post-pass).
#include <gtest/gtest.h>

#include <cmath>

#include "alloc/assignment.hpp"
#include "alloc/optimal.hpp"
#include "scenario/scenarios.hpp"

namespace densevlc::alloc {
namespace {

struct Fixture {
  core::Testbed tb = core::make_simulation_testbed();
  channel::ChannelMatrix h = tb.channel_for(scenario::fig7_rx_positions());
};

bool is_binary(const channel::Allocation& a, double full) {
  for (std::size_t j = 0; j < a.num_tx(); ++j) {
    const double total = a.tx_total_swing(j).value();
    if (total > 1e-9 && std::fabs(total - full) > 1e-9) return false;
  }
  return true;
}

TEST(Polish, OutputIsBinary) {
  Fixture f;
  OptimalSolverConfig cfg;
  cfg.max_iterations = 150;
  const auto opt = solve_optimal(f.h, Watts{0.8}, f.tb.budget, cfg);
  const auto polished =
      polish_binary(f.h, opt.allocation, Watts{0.8}, f.tb.budget, Amperes{0.9});
  EXPECT_TRUE(is_binary(polished.allocation, 0.9));
}

TEST(Polish, StaysWithinBudget) {
  Fixture f;
  OptimalSolverConfig cfg;
  cfg.max_iterations = 150;
  for (double budget : {0.3, 0.8, 1.5}) {
    const auto opt = solve_optimal(f.h, Watts{budget}, f.tb.budget, cfg);
    const auto polished =
        polish_binary(f.h, opt.allocation, Watts{budget}, f.tb.budget, Amperes{0.9});
    EXPECT_LE(polished.power_used_w, budget + 1e-9);
  }
}

TEST(Polish, SmallUtilityCost) {
  // Insight 2 quantified: binarizing the optimum costs little.
  Fixture f;
  OptimalSolverConfig cfg;
  cfg.max_iterations = 250;
  const auto opt = solve_optimal(f.h, Watts{1.0}, f.tb.budget, cfg);
  const auto polished =
      polish_binary(f.h, opt.allocation, Watts{1.0}, f.tb.budget, Amperes{0.9});
  // Utility is a sum of logs; allow a small absolute drop.
  EXPECT_GT(polished.utility, opt.utility - 0.5);
}

TEST(Polish, BinaryInputUnchanged) {
  Fixture f;
  channel::Allocation binary{36, 4};
  binary.set_swing(7, 0, 0.9);
  binary.set_swing(9, 1, 0.9);
  const auto polished = polish_binary(f.h, binary, Watts{1.0}, f.tb.budget, Amperes{0.9});
  EXPECT_EQ(polished.allocation.data(), binary.data());
  EXPECT_EQ(polished.rounded_up, 0u);
  EXPECT_EQ(polished.rounded_down, 0u);
}

TEST(Polish, CountsRoundingDecisions) {
  Fixture f;
  channel::Allocation fractional{36, 4};
  fractional.set_swing(7, 0, 0.5);   // strong channel: likely promoted
  fractional.set_swing(14, 2, 0.01); // negligible: likely demoted
  const auto polished =
      polish_binary(f.h, fractional, Watts{1.0}, f.tb.budget, Amperes{0.9});
  EXPECT_EQ(polished.rounded_up + polished.rounded_down, 2u);
  EXPECT_TRUE(is_binary(polished.allocation, 0.9));
}

TEST(Polish, RespectsTightBudget) {
  // With room for only one full-swing TX, at most one row is promoted.
  Fixture f;
  channel::Allocation fractional{36, 4};
  fractional.set_swing(7, 0, 0.5);
  fractional.set_swing(9, 1, 0.5);
  fractional.set_swing(19, 2, 0.5);
  const double one_tx = full_swing_tx_power(Amperes{0.9}, f.tb.budget).value();
  const auto polished =
      polish_binary(f.h, fractional, Watts{one_tx + 1e-9}, f.tb.budget,
                    Amperes{0.9});
  std::size_t full = 0;
  for (std::size_t j = 0; j < 36; ++j) {
    if (polished.allocation.tx_total_swing(j) > Amperes{0.0}) ++full;
  }
  EXPECT_LE(full, 1u);
  EXPECT_LE(polished.power_used_w, one_tx + 1e-6);
}

}  // namespace
}  // namespace densevlc::alloc
