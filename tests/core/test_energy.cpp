// Tests for the energy meter.
#include "core/energy.hpp"

#include <gtest/gtest.h>

#include "core/testbed.hpp"

namespace densevlc::core {
namespace {

struct Fixture {
  core::Testbed tb = core::make_simulation_testbed();
  EnergyMeter meter{tb.led, 36};
};

TEST(Energy, IlluminationAccruesForAllTxs) {
  Fixture f;
  const channel::Allocation idle{36, 4};
  f.meter.accumulate(idle, 10.0, f.tb.budget);
  EXPECT_NEAR(f.meter.illumination_energy_j(),
              f.tb.led.illumination_power().value() * 36.0 * 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(f.meter.communication_energy_j(), 0.0);
  EXPECT_DOUBLE_EQ(f.meter.communication_overhead(), 0.0);
}

TEST(Energy, CommunicationMatchesEq10) {
  Fixture f;
  channel::Allocation alloc{36, 4};
  alloc.set_swing(7, 0, 0.9);
  alloc.set_swing(9, 1, 0.9);
  f.meter.accumulate(alloc, 5.0, f.tb.budget);
  const double per_tx =
      channel::tx_comm_power(Amperes{0.9}, f.tb.budget).value();
  EXPECT_NEAR(f.meter.communication_energy_j(), 2.0 * per_tx * 5.0, 1e-12);
}

TEST(Energy, OverheadIsSmallFraction) {
  // The paper's pitch: communication adds only a small fraction on top
  // of lighting. 22 full-swing TXs (the 1.2 W operating point) against
  // 36 lit LEDs should stay below ~5%.
  Fixture f;
  channel::Allocation alloc{36, 4};
  for (std::size_t j = 0; j < 22; ++j) alloc.set_swing(j, j % 4, 0.9);
  f.meter.accumulate(alloc, 1.0, f.tb.budget);
  EXPECT_GT(f.meter.communication_overhead(), 0.0);
  EXPECT_LT(f.meter.communication_overhead(), 0.05);
}

TEST(Energy, EnergyPerBit) {
  Fixture f;
  channel::Allocation alloc{36, 4};
  alloc.set_swing(7, 0, 0.9);
  f.meter.accumulate(alloc, 2.0, f.tb.budget);
  EXPECT_DOUBLE_EQ(f.meter.energy_per_bit(), 0.0);  // nothing delivered
  f.meter.deliver_bits(1'000'000);
  const double expected =
      channel::tx_comm_power(Amperes{0.9}, f.tb.budget).value() * 2.0 / 1e6;
  EXPECT_NEAR(f.meter.energy_per_bit(), expected, 1e-15);
}

TEST(Energy, NegativeDtIgnored) {
  Fixture f;
  channel::Allocation alloc{36, 4};
  alloc.set_swing(0, 0, 0.9);
  f.meter.accumulate(alloc, -5.0, f.tb.budget);
  EXPECT_DOUBLE_EQ(f.meter.illumination_energy_j(), 0.0);
}

}  // namespace
}  // namespace densevlc::core
