// Integration tests: stop-and-wait ARQ over the full waveform data path.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "core/testbed.hpp"

namespace densevlc::core {
namespace {

SystemConfig fast_config() {
  SystemConfig cfg;
  cfg.testbed = core::make_experimental_testbed();
  cfg.mac.epoch_period_s = 5.0;  // one measurement for the whole run
  cfg.power_budget_w = 0.25;
  return cfg;
}

TEST(ArqSystem, DeliversAllSegmentsOnCleanLink) {
  SystemConfig cfg = fast_config();
  cfg.wifi.loss_probability = 0.0;
  auto system = DenseVlcSystem::with_static_rxs(cfg, {{1.0, 1.0, 0.0}});
  const auto report = system.run_arq(2.0, 40, 8);
  ASSERT_EQ(report.rx.size(), 1u);
  EXPECT_EQ(report.rx[0].segments_delivered, 8u);
  EXPECT_EQ(report.rx[0].segments_dropped, 0u);
  EXPECT_EQ(report.rx[0].duplicates, 0u);
  EXPECT_GT(report.goodput_bps(0, 40), 0.0);
}

TEST(ArqSystem, LostAcksCauseRetransmissionsNotLoss) {
  SystemConfig cfg = fast_config();
  cfg.wifi.loss_probability = 0.3;  // very lossy uplink
  auto system = DenseVlcSystem::with_static_rxs(cfg, {{1.0, 1.0, 0.0}});
  const auto report = system.run_arq(3.0, 40, 8, /*max_attempts=*/6);
  // Everything still arrives (the downlink is clean)...
  EXPECT_EQ(report.rx[0].segments_delivered +
                report.rx[0].segments_dropped,
            8u);
  EXPECT_GE(report.rx[0].segments_delivered, 7u);
  // ...at the cost of retransmissions, which the receiver deduplicates.
  EXPECT_GT(report.rx[0].transmissions, 8u);
  EXPECT_EQ(report.rx[0].duplicates,
            report.rx[0].transmissions - 8u -
                report.rx[0].segments_dropped * 0);  // every extra TX was
                                                     // a duplicate here
}

TEST(ArqSystem, MultiRxSharesTheAir) {
  SystemConfig cfg = fast_config();
  cfg.power_budget_w = 1.2;
  cfg.wifi.loss_probability = 0.0;
  auto system = DenseVlcSystem::with_static_rxs(
      cfg, {{0.75, 0.75, 0.0}, {2.25, 2.25, 0.0}});  // well separated
  const auto report = system.run_arq(2.5, 40, 5);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(report.rx[k].segments_delivered, 5u) << "RX " << k;
  }
}

TEST(ArqSystem, StopsEarlyWhenWorkloadDone) {
  SystemConfig cfg = fast_config();
  cfg.wifi.loss_probability = 0.0;
  auto system = DenseVlcSystem::with_static_rxs(cfg, {{1.0, 1.0, 0.0}});
  const auto report = system.run_arq(30.0, 40, 3);
  // 3 segments take well under a second; the loop must not spin for 30 s
  // of simulated slots (transmissions stay exactly 3).
  EXPECT_EQ(report.rx[0].transmissions, 3u);
}

}  // namespace
}  // namespace densevlc::core
