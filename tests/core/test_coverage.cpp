// Tests for the communication coverage map.
#include "core/coverage.hpp"

#include <gtest/gtest.h>

namespace densevlc::core {
namespace {

CoverageConfig small_config() {
  CoverageConfig cfg;
  cfg.raster_per_axis = 11;  // keep the test fast
  return cfg;
}

TEST(Coverage, RasterShapeAndStats) {
  const auto tb = make_experimental_testbed();
  const auto result = compute_coverage(tb, small_config());
  EXPECT_EQ(result.throughput_mbps.width, 11u);
  EXPECT_EQ(result.throughput_mbps.height, 11u);
  EXPECT_EQ(result.throughput_mbps.values.size(), 121u);
  EXPECT_GT(result.max_mbps, 0.0);
  EXPECT_GE(result.mean_mbps, result.min_mbps);
  EXPECT_LE(result.mean_mbps, result.max_mbps);
}

TEST(Coverage, CenterBeatsCorner) {
  const auto tb = make_experimental_testbed();
  const auto result = compute_coverage(tb, small_config());
  const auto& f = result.throughput_mbps;
  const double center = f.values[5 * 11 + 5];
  const double corner = f.values[0];
  EXPECT_GT(center, corner);
}

TEST(Coverage, FractionBoundsAndMonotonicity) {
  const auto tb = make_experimental_testbed();
  const auto result = compute_coverage(tb, small_config());
  const double at_half = result.coverage_fraction(0.5);
  const double at_ninety = result.coverage_fraction(0.9);
  EXPECT_GE(at_half, at_ninety);
  EXPECT_GT(at_half, 0.0);
  EXPECT_LE(at_half, 1.0);
}

TEST(Coverage, FailedTxDimsItsNeighborhood) {
  const auto tb = make_experimental_testbed();
  const auto cfg = small_config();
  const auto healthy = compute_coverage(tb, cfg);
  // Kill TX22 (0-based 21) near the center and its 3 neighbours: the
  // neighbourhood must lose throughput while the far corner is
  // unaffected.
  const auto degraded = compute_coverage(tb, cfg, {14, 15, 20, 21});
  const auto& h = healthy.throughput_mbps;
  const auto& d = degraded.throughput_mbps;
  // Point nearest the dead zone (~room center):
  EXPECT_LT(d.values[5 * 11 + 5], h.values[5 * 11 + 5]);
  // Far corner barely changes.
  EXPECT_NEAR(d.values[0], h.values[0], h.values[0] * 0.05 + 1e-9);
}

TEST(Coverage, HigherBudgetNeverHurts) {
  const auto tb = make_experimental_testbed();
  CoverageConfig lo = small_config();
  lo.power_budget_w = 0.06;
  CoverageConfig hi = small_config();
  hi.power_budget_w = 0.5;
  const auto map_lo = compute_coverage(tb, lo);
  const auto map_hi = compute_coverage(tb, hi);
  EXPECT_GE(map_hi.mean_mbps, map_lo.mean_mbps);
}

TEST(Coverage, ExportsToPgm) {
  const auto tb = make_experimental_testbed();
  const auto result = compute_coverage(tb, small_config());
  const auto bytes = to_pgm(result.throughput_mbps);
  EXPECT_FALSE(bytes.empty());
}

}  // namespace
}  // namespace densevlc::core
