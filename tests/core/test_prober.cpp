// Tests for waveform-level channel measurement.
#include "core/prober.hpp"

#include <gtest/gtest.h>

#include "scenario/scenarios.hpp"

namespace densevlc::core {
namespace {

struct Fixture {
  core::Testbed tb = core::make_simulation_testbed();
  phy::OokParams ook{};
  phy::FrontEndConfig frontend{};
  ChannelProber prober{tb.led, ook, frontend, 0.9};
};

TEST(Prober, RecoversStrongLinkGain) {
  Fixture f;
  Rng rng{1};
  const double h = 8e-7;  // typical best-TX gain in the testbed
  const auto res = f.prober.probe_link(h, rng);
  ASSERT_TRUE(res.detected);
  EXPECT_NEAR(res.gain_estimate, h, h * 0.10);
  EXPECT_GT(res.snr_db, 5.0);
}

TEST(Prober, ZeroGainNotDetected) {
  Fixture f;
  Rng rng{2};
  const auto res = f.prober.probe_link(0.0, rng);
  EXPECT_FALSE(res.detected);
  EXPECT_DOUBLE_EQ(res.gain_estimate, 0.0);
}

TEST(Prober, TinyGainBelowNoiseFloorRejected) {
  Fixture f;
  Rng rng{3};
  const auto res = f.prober.probe_link(1e-12, rng);
  // Either undetected or estimated as essentially zero; never a wild
  // overestimate.
  if (res.detected) {
    EXPECT_LT(res.gain_estimate, 1e-9);
  }
}

TEST(Prober, EstimateScalesLinearlyWithGain) {
  Fixture f;
  Rng rng{4};
  const auto weak = f.prober.probe_link(2e-7, rng);
  const auto strong = f.prober.probe_link(8e-7, rng);
  ASSERT_TRUE(weak.detected);
  ASSERT_TRUE(strong.detected);
  EXPECT_NEAR(strong.gain_estimate / weak.gain_estimate, 4.0, 0.6);
}

TEST(Prober, MatrixMeasurementPreservesOrdering) {
  Fixture f;
  Rng rng{5};
  const auto truth = f.tb.channel_for(scenario::fig7_rx_positions());
  const auto measured = f.prober.probe_matrix(truth, rng);
  ASSERT_EQ(measured.num_tx(), truth.num_tx());
  // The strongest TX per RX must survive measurement noise.
  for (std::size_t k = 0; k < truth.num_rx(); ++k) {
    EXPECT_EQ(measured.best_tx_for(k), truth.best_tx_for(k)) << "RX " << k;
  }
}

TEST(Prober, CalibrationConstantPositive) {
  Fixture f;
  EXPECT_GT(f.prober.volts_per_gain(), 0.0);
}

TEST(Prober, IncrementalAllDirtyMatchesFullSweep) {
  Fixture f;
  const auto truth = f.tb.channel_for(scenario::fig7_rx_positions());
  Rng rng_full{7};
  Rng rng_inc{7};
  const auto full = f.prober.probe_matrix(truth, rng_full);
  const channel::ChannelMatrix previous{
      truth.num_tx(), truth.num_rx(),
      std::vector<double>(truth.num_tx() * truth.num_rx(), 0.0)};
  const std::vector<bool> all_dirty(truth.num_rx(), true);
  const auto inc =
      f.prober.probe_matrix_incremental(truth, rng_inc, all_dirty, previous);
  for (std::size_t j = 0; j < truth.num_tx(); ++j) {
    for (std::size_t k = 0; k < truth.num_rx(); ++k) {
      EXPECT_EQ(inc.gain(j, k), full.gain(j, k)) << "j=" << j << " k=" << k;
    }
  }
  // Both sweeps must consume exactly one fork of the caller's stream.
  EXPECT_DOUBLE_EQ(rng_full.uniform(), rng_inc.uniform());
}

TEST(Prober, IncrementalCleanColumnsKeepPreviousMeasurement) {
  Fixture f;
  const auto truth = f.tb.channel_for(scenario::fig7_rx_positions());
  Rng rng{8};
  const auto previous = f.prober.probe_matrix(truth, rng);
  std::vector<bool> dirty(truth.num_rx(), false);
  dirty[2] = true;
  const auto inc =
      f.prober.probe_matrix_incremental(truth, rng, dirty, previous);
  for (std::size_t j = 0; j < truth.num_tx(); ++j) {
    for (std::size_t k = 0; k < truth.num_rx(); ++k) {
      if (k != 2) {
        // Clean columns: no airtime spent, previous values verbatim.
        EXPECT_EQ(inc.gain(j, k), previous.gain(j, k))
            << "j=" << j << " k=" << k;
      }
    }
  }
  // The re-probed column is a fresh noisy measurement of the same truth:
  // plausible (ordering preserved) but drawn from a different stream.
  EXPECT_EQ(inc.best_tx_for(2), truth.best_tx_for(2));
}

TEST(Prober, IncrementalShapeMismatchFallsBackToFullSweep) {
  Fixture f;
  const auto truth = f.tb.channel_for(scenario::fig7_rx_positions());
  Rng rng_full{9};
  Rng rng_inc{9};
  const auto full = f.prober.probe_matrix(truth, rng_full);
  const channel::ChannelMatrix wrong_shape{
      2, 2, std::vector<double>(4, 0.0)};  // stale cache
  const std::vector<bool> none_dirty(truth.num_rx(), false);
  const auto inc = f.prober.probe_matrix_incremental(truth, rng_inc,
                                                     none_dirty, wrong_shape);
  for (std::size_t j = 0; j < truth.num_tx(); ++j) {
    for (std::size_t k = 0; k < truth.num_rx(); ++k) {
      EXPECT_EQ(inc.gain(j, k), full.gain(j, k)) << "j=" << j << " k=" << k;
    }
  }
}

TEST(Prober, SnrDropsWithGain) {
  Fixture f;
  Rng rng{6};
  const auto strong = f.prober.probe_link(8e-7, rng);
  const auto weak = f.prober.probe_link(1e-7, rng);
  ASSERT_TRUE(strong.detected);
  if (weak.detected) {
    EXPECT_GT(strong.snr_db, weak.snr_db);
  }
}

}  // namespace
}  // namespace densevlc::core
