// Failure-injection tests: the assembled system must degrade, not die.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "scenario/scenarios.hpp"

namespace densevlc::core {
namespace {

SystemConfig base_config() {
  SystemConfig cfg;
  cfg.testbed = core::make_experimental_testbed();
  cfg.power_budget_w = 0.5;
  return cfg;
}

TEST(FailureInjection, BlackFloorStillConstructs) {
  // A perfectly absorbing floor kills the NLOS sync side-channel; the
  // system must fall back to its degraded one-sample sync assumption
  // instead of crashing or hanging.
  SystemConfig cfg = base_config();
  cfg.floor.reflectance = 0.0;
  auto system = DenseVlcSystem::with_static_rxs(cfg, {{1.0, 1.0, 0.0}});
  ASSERT_FALSE(system.nlos_error_samples().empty());
  const auto epoch = system.run_epoch_analytic(0.0);
  EXPECT_GT(epoch.throughput_bps[0], 0.0);
}

TEST(FailureInjection, TotalReportLossKeepsLastAllocation) {
  SystemConfig cfg = base_config();
  cfg.wifi.loss_probability = 0.0;
  auto system = DenseVlcSystem::with_static_rxs(
      cfg, {{1.0, 1.0, 0.0}, {2.0, 2.0, 0.0}});
  const auto first = system.run_epoch_analytic(0.0);
  ASSERT_FALSE(first.beamspots.empty());

  // From now on every report is lost: allocations must persist (stale),
  // not collapse to nothing.
  // (Reach in via config copy — rebuild a system whose uplink is dead
  // after a good first epoch is emulated by comparing against one that
  // never hears anything.)
  SystemConfig deaf = base_config();
  deaf.wifi.loss_probability = 1.0;
  auto deaf_system = DenseVlcSystem::with_static_rxs(
      deaf, {{1.0, 1.0, 0.0}, {2.0, 2.0, 0.0}});
  const auto silent = deaf_system.run_epoch_analytic(0.0);
  EXPECT_TRUE(silent.beamspots.empty());  // nothing ever reported
  for (double t : silent.throughput_bps) EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(FailureInjection, RxOutsideGridIsUnservedNotFatal) {
  SystemConfig cfg = base_config();
  auto system = DenseVlcSystem::with_static_rxs(
      cfg, {{1.0, 1.0, 0.0}, {2.95, 2.95, 0.0}});
  const auto epoch = system.run_epoch_analytic(0.0);
  EXPECT_GT(epoch.throughput_bps[0], 0.0);
  // The edge RX may or may not make the cut under a shared budget, but
  // the epoch completes and the served RX is unaffected.
  EXPECT_GE(epoch.throughput_bps[1], 0.0);
}

TEST(FailureInjection, ZeroBudgetRunsCleanly) {
  SystemConfig cfg = base_config();
  cfg.power_budget_w = 0.0;
  auto system = DenseVlcSystem::with_static_rxs(cfg, {{1.0, 1.0, 0.0}});
  const auto epoch = system.run_epoch_analytic(0.0);
  EXPECT_TRUE(epoch.beamspots.empty());
  const auto run = system.run(0.3, 40);
  EXPECT_EQ(run.rx[0].frames_sent, 0u);
}

TEST(FailureInjection, PersonalizedKappaControllerWorksEndToEnd) {
  SystemConfig cfg = base_config();
  cfg.personalize_kappa = true;
  cfg.power_budget_w = 1.2;
  auto system = DenseVlcSystem::with_static_rxs(
      cfg, scenario::fig7_rx_positions());
  const auto epoch = system.run_epoch_analytic(0.0);
  EXPECT_EQ(epoch.beamspots.size(), 4u);
  double total = 0.0;
  for (double t : epoch.throughput_bps) total += t;
  // Must at least match the uniform controller's ballpark.
  EXPECT_GT(total, 8e6);
}

}  // namespace
}  // namespace densevlc::core
