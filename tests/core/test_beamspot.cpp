// Tests for joint multi-TX frame transmission (the Table 5 data path).
#include "core/beamspot.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/testbed.hpp"

namespace densevlc::core {
namespace {

struct Fixture {
  core::Testbed tb = core::make_experimental_testbed();
  phy::OokParams ook{};
  phy::FrontEndConfig frontend{};
  JointTransmission jt{tb.led, ook, frontend};

  phy::MacFrame frame(std::size_t len = 60) {
    phy::MacFrame f;
    f.dst = 0;
    f.src = 0xC0;
    f.payload.resize(len);
    for (std::size_t i = 0; i < len; ++i) {
      f.payload[i] = static_cast<std::uint8_t>(i);
    }
    return f;
  }
};

TEST(Beamspot, SingleTxDelivers) {
  Fixture f;
  Rng rng{1};
  const std::vector<ServingTx> servers{{7, 8e-7, 0.9, 0.0}};
  const auto out = f.jt.transmit(servers, f.frame(), rng);
  EXPECT_TRUE(out.preamble_found);
  EXPECT_TRUE(out.delivered);
}

TEST(Beamspot, NoServersNoDelivery) {
  Fixture f;
  Rng rng{2};
  const auto out = f.jt.transmit({}, f.frame(), rng);
  EXPECT_FALSE(out.delivered);
}

TEST(Beamspot, TwoAlignedTxsDeliver) {
  Fixture f;
  Rng rng{3};
  const std::vector<ServingTx> servers{{7, 6e-7, 0.9, 0.0},
                                       {13, 4e-7, 0.9, 0.0}};
  const auto out = f.jt.transmit(servers, f.frame(), rng);
  EXPECT_TRUE(out.delivered);
}

TEST(Beamspot, SubMicrosecondOffsetTolerated) {
  // NLOS sync residual (~0.6 us) against 10 us chips: must still decode.
  Fixture f;
  Rng rng{4};
  const std::vector<ServingTx> servers{{7, 6e-7, 0.9, 0.0},
                                       {13, 5e-7, 0.9, 0.7e-6}};
  const auto out = f.jt.transmit(servers, f.frame(), rng);
  EXPECT_TRUE(out.delivered);
}

TEST(Beamspot, GrossMisalignmentDestroysFrame) {
  // No-sync delivery skew (tens of us, multiple chips) from a comparably
  // strong second TX: Table 5's "4 TXs (no sync) -> 100% PER" row.
  Fixture f;
  Rng rng{5};
  int delivered = 0;
  for (int t = 0; t < 5; ++t) {
    const std::vector<ServingTx> servers{{7, 6e-7, 0.9, 0.0},
                                         {13, 6e-7, 0.9, 35e-6}};
    delivered += f.jt.transmit(servers, f.frame(), rng).delivered ? 1 : 0;
  }
  EXPECT_EQ(delivered, 0);
}

TEST(Beamspot, WeakLinkFailsStrongLinkWorks) {
  Fixture f;
  Rng rng{6};
  const std::vector<ServingTx> weak{{7, 1e-9, 0.9, 0.0}};
  EXPECT_FALSE(f.jt.transmit(weak, f.frame(), rng).delivered);
  const std::vector<ServingTx> strong{{7, 8e-7, 0.9, 0.0}};
  EXPECT_TRUE(f.jt.transmit(strong, f.frame(), rng).delivered);
}

TEST(Beamspot, StrongInterfererBreaksReception) {
  Fixture f;
  Rng rng{7};
  const std::vector<ServingTx> servers{{7, 5e-7, 0.9, 0.0}};
  InterfererGroup other;
  other.frame = f.frame(60);
  other.frame.dst = 1;
  other.frame.payload[0] = 0xEE;  // different content
  other.txs = {{9, 5e-7, 0.9, 0.3e-6}};  // equally strong at the victim
  const std::vector<InterfererGroup> interferers{other};
  const auto out = f.jt.transmit(servers, f.frame(), rng, interferers);
  EXPECT_FALSE(out.delivered);
}

TEST(Beamspot, WeakInterfererTolerated) {
  Fixture f;
  Rng rng{8};
  const std::vector<ServingTx> servers{{7, 8e-7, 0.9, 0.0}};
  InterfererGroup other;
  other.frame = f.frame(60);
  other.frame.dst = 1;
  other.txs = {{30, 2e-8, 0.9, 0.0}};  // 16x weaker and far away
  const std::vector<InterfererGroup> interferers{other};
  const auto out = f.jt.transmit(servers, f.frame(), rng, interferers);
  EXPECT_TRUE(out.delivered);
}

TEST(Beamspot, AmbientLightDoesNotBlockDecoding) {
  Fixture f;
  Rng rng{9};
  const std::vector<ServingTx> servers{{7, 8e-7, 0.9, 0.0}};
  const auto out =
      f.jt.transmit(servers, f.frame(), rng, {}, /*ambient=*/5e-7);
  EXPECT_TRUE(out.delivered);
}

TEST(Beamspot, AirtimeMatchesChipCount) {
  Fixture f;
  const auto frame = f.frame(100);
  const double airtime = f.jt.frame_airtime_s(frame);
  const double expected =
      static_cast<double>(phy::frame_to_chips(frame).size()) / 100e3;
  EXPECT_DOUBLE_EQ(airtime, expected);
}

TEST(Beamspot, RsCorrectionsReported) {
  // Near-threshold gain: some frames decode only thanks to RS.
  Fixture f;
  Rng rng{10};
  std::size_t corrected_total = 0;
  for (int t = 0; t < 6; ++t) {
    const std::vector<ServingTx> servers{{7, 1.1e-7, 0.9, 0.0}};
    const auto out = f.jt.transmit(servers, f.frame(120), rng);
    if (out.delivered) corrected_total += out.corrected_bytes;
  }
  // Not asserting a count (noise-dependent) — just that the path runs and
  // reports a sane value.
  EXPECT_LT(corrected_total, 200u);
}

}  // namespace
}  // namespace densevlc::core
