// Tests for the assembled DenseVlcSystem (MAC + sync + data path).
#include "core/system.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "scenario/scenarios.hpp"

namespace densevlc::core {
namespace {

SystemConfig fast_config() {
  SystemConfig cfg;
  cfg.testbed = core::make_experimental_testbed();
  cfg.mac.epoch_period_s = 0.25;
  cfg.sync_mode = SyncMode::kNlosVlc;
  return cfg;
}

TEST(System, TrueChannelTracksMobility) {
  SystemConfig cfg = fast_config();
  std::vector<std::unique_ptr<geom::MobilityModel>> mob;
  mob.push_back(std::make_unique<geom::WaypointMobility>(
      std::vector<geom::WaypointMobility::Waypoint>{
          {0.0, {0.75, 0.75, 0.0}}, {10.0, {2.25, 2.25, 0.0}}}));
  DenseVlcSystem system{cfg, std::move(mob)};
  const auto h0 = system.true_channel(0.0);
  const auto h10 = system.true_channel(10.0);
  EXPECT_NE(h0.best_tx_for(0), h10.best_tx_for(0));
}

TEST(System, BbbGroupingMatchesPaper) {
  // Sec. 7.1: four TXs per BBB in 2x2 blocks; TX2 & TX8 share a board,
  // TX3 & TX9 share a different one (1-based paper ids).
  auto system =
      DenseVlcSystem::with_static_rxs(fast_config(), {{1.25, 0.75, 0.0}});
  EXPECT_EQ(system.bbb_of(1), system.bbb_of(7));    // TX2, TX8
  EXPECT_EQ(system.bbb_of(2), system.bbb_of(8));    // TX3, TX9
  EXPECT_NE(system.bbb_of(1), system.bbb_of(2));    // different boards
  EXPECT_EQ(system.bbb_of(0), system.bbb_of(1));    // TX1, TX2
}

TEST(System, NlosErrorsCharacterizedAtStartup) {
  auto system =
      DenseVlcSystem::with_static_rxs(fast_config(), {{1.25, 0.75, 0.0}});
  ASSERT_FALSE(system.nlos_error_samples().empty());
  for (double e : system.nlos_error_samples()) {
    EXPECT_LT(std::fabs(e), 5e-6);  // all within a few ADC samples
  }
}

TEST(System, OffsetsRespectSyncMode) {
  SystemConfig cfg = fast_config();
  cfg.sync_mode = SyncMode::kNlosVlc;
  auto system =
      DenseVlcSystem::with_static_rxs(cfg, {{1.25, 0.75, 0.0}});
  Beamspot spot;
  spot.rx = 0;
  spot.txs = {1, 7, 2};  // TX2+TX8 (one BBB), TX3 (another)
  spot.leader = 1;
  Rng rng{1};
  const auto offsets = system.draw_tx_offsets(spot, rng);
  ASSERT_EQ(offsets.size(), 3u);
  EXPECT_DOUBLE_EQ(offsets[0], 0.0);  // leader BBB
  EXPECT_DOUBLE_EQ(offsets[1], 0.0);  // same BBB as leader
  EXPECT_LT(std::fabs(offsets[2]), 5e-6);  // NLOS-synced neighbour
}

TEST(System, NoSyncOffsetsAreLarge) {
  SystemConfig cfg = fast_config();
  cfg.sync_mode = SyncMode::kNone;
  auto system =
      DenseVlcSystem::with_static_rxs(cfg, {{1.25, 0.75, 0.0}});
  Beamspot spot;
  spot.rx = 0;
  spot.txs = {1, 2};  // two BBBs
  spot.leader = 1;
  Rng rng{2};
  double max_spread = 0.0;
  for (int t = 0; t < 30; ++t) {
    const auto offsets = system.draw_tx_offsets(spot, rng);
    max_spread =
        std::max(max_spread, std::fabs(offsets[0] - offsets[1]));
  }
  EXPECT_GT(max_spread, 5e-6);  // multiple microseconds of skew
}

TEST(System, IncrementalProbingMatchesFullWhenAllRxsMove) {
  // Every RX moves between epochs, so every truth column is dirty every
  // epoch — the one regime where incremental probing is guaranteed
  // bit-identical to the full sweep (same noise sub-streams per link).
  const auto make_mobility = [] {
    std::vector<std::unique_ptr<geom::MobilityModel>> mob;
    mob.push_back(std::make_unique<geom::WaypointMobility>(
        std::vector<geom::WaypointMobility::Waypoint>{
            {0.0, {0.75, 0.75, 0.0}}, {10.0, {2.25, 2.25, 0.0}}}));
    mob.push_back(std::make_unique<geom::WaypointMobility>(
        std::vector<geom::WaypointMobility::Waypoint>{
            {0.0, {2.25, 0.75, 0.0}}, {10.0, {0.75, 2.25, 0.0}}}));
    return mob;
  };

  SystemConfig full_cfg = fast_config();
  full_cfg.incremental_probing = false;
  SystemConfig inc_cfg = fast_config();
  inc_cfg.incremental_probing = true;

  DenseVlcSystem full_sys{full_cfg, make_mobility()};
  DenseVlcSystem inc_sys{inc_cfg, make_mobility()};

  for (double t : {0.0, 1.0, 2.0, 3.0}) {
    const auto a = full_sys.run_epoch_analytic(t);
    const auto b = inc_sys.run_epoch_analytic(t);
    ASSERT_EQ(a.throughput_bps.size(), b.throughput_bps.size()) << "t=" << t;
    for (std::size_t k = 0; k < a.throughput_bps.size(); ++k) {
      EXPECT_EQ(a.throughput_bps[k], b.throughput_bps[k])
          << "t=" << t << " rx=" << k;
    }
    EXPECT_EQ(a.power_used_w, b.power_used_w) << "t=" << t;
    EXPECT_EQ(a.txs_assigned, b.txs_assigned) << "t=" << t;
  }
}

TEST(System, IncrementalProbingWithStaticRxsStillServesAll) {
  // Static RXs: after the first epoch no column is ever dirty, so the
  // cached measurements are reused verbatim (the airtime saving). The
  // decisions must stay sane even though no re-probing happens.
  SystemConfig cfg = fast_config();
  cfg.incremental_probing = true;
  auto system = DenseVlcSystem::with_static_rxs(
      cfg, {{0.75, 0.75, 0.0}, {2.25, 2.25, 0.0}});
  for (double t : {0.0, 1.0, 2.0}) {
    const auto report = system.run_epoch_analytic(t);
    ASSERT_EQ(report.throughput_bps.size(), 2u) << "t=" << t;
    for (double thr : report.throughput_bps) EXPECT_GT(thr, 0.0);
  }
}

TEST(System, AnalyticEpochServesAllRxs) {
  auto system = DenseVlcSystem::with_static_rxs(
      fast_config(), scenario::fig7_rx_positions());
  const auto report = system.run_epoch_analytic(0.0);
  ASSERT_EQ(report.throughput_bps.size(), 4u);
  EXPECT_EQ(report.beamspots.size(), 4u);
  EXPECT_GT(report.txs_assigned, 4u);
  for (double t : report.throughput_bps) EXPECT_GT(t, 0.0);
  EXPECT_LE(report.power_used_w, fast_config().power_budget_w + 1e-9);
}

TEST(System, WaveformRunDeliversFramesWithSync) {
  SystemConfig cfg = fast_config();
  cfg.power_budget_w = 0.25;  // small beamspots keep the test fast
  auto system =
      DenseVlcSystem::with_static_rxs(cfg, {{1.0, 1.0, 0.0}});
  const auto report = system.run(0.5, 40);
  ASSERT_EQ(report.rx.size(), 1u);
  EXPECT_GT(report.rx[0].frames_sent, 0u);
  EXPECT_GT(report.rx[0].frames_delivered, 0u);
  EXPECT_LT(report.rx[0].per(), 0.2);
  EXPECT_GT(report.throughput_bps(0), 0.0);
}

TEST(System, AcksFollowDeliveries) {
  SystemConfig cfg = fast_config();
  cfg.power_budget_w = 0.25;
  cfg.wifi.loss_probability = 0.0;
  auto system =
      DenseVlcSystem::with_static_rxs(cfg, {{1.0, 1.0, 0.0}});
  const auto report = system.run(0.5, 40);
  EXPECT_EQ(report.rx[0].acks_received, report.rx[0].frames_delivered);
}

}  // namespace
}  // namespace densevlc::core
