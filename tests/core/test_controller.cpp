// Tests for the controller's decision logic and beamspot formation.
#include "core/controller.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "scenario/scenarios.hpp"

namespace densevlc::core {
namespace {

struct Fixture {
  core::Testbed tb = core::make_simulation_testbed();
  channel::ChannelMatrix h = tb.channel_for(scenario::fig7_rx_positions());

  ControllerConfig config(double budget = 1.2) {
    ControllerConfig cc;
    cc.kappa = 1.3;
    cc.power_budget_w = budget;
    cc.max_swing_a = 0.9;
    cc.link_budget = tb.budget;
    return cc;
  }
};

TEST(Controller, UpdateFormsBeamspots) {
  Fixture f;
  Controller ctl{f.config()};
  const auto assigned = ctl.update_channel(f.h);
  EXPECT_GT(assigned, 4u);
  EXPECT_EQ(ctl.beamspots().size(), 4u);  // all RXs served at 1.2 W
  EXPECT_GT(ctl.power_used_w(), 0.0);
  EXPECT_LE(ctl.power_used_w(), 1.2);
}

TEST(Controller, LeaderHasBestChannelInSpot) {
  Fixture f;
  Controller ctl{f.config()};
  ctl.update_channel(f.h);
  for (const auto& spot : ctl.beamspots()) {
    for (std::size_t tx : spot.txs) {
      EXPECT_LE(f.h.gain(tx, spot.rx), f.h.gain(spot.leader, spot.rx) + 1e-15);
    }
  }
}

TEST(Controller, BeamspotsAreDisjoint) {
  Fixture f;
  Controller ctl{f.config()};
  ctl.update_channel(f.h);
  std::vector<bool> used(36, false);
  for (const auto& spot : ctl.beamspots()) {
    for (std::size_t tx : spot.txs) {
      EXPECT_FALSE(used[tx]) << "TX " << tx << " in two beamspots";
      used[tx] = true;
    }
  }
}

TEST(Controller, TinyBudgetServesSubsetOfRxs) {
  Fixture f;
  Controller ctl{f.config(0.06)};  // ~1 full-swing TX
  ctl.update_channel(f.h);
  EXPECT_EQ(ctl.beamspots().size(), 1u);
  EXPECT_FALSE(ctl.beamspot_for(3).has_value() &&
               ctl.beamspot_for(2).has_value() &&
               ctl.beamspot_for(1).has_value() &&
               ctl.beamspot_for(0).has_value());
}

TEST(Controller, DataCommandEncodesSpot) {
  Fixture f;
  Controller ctl{f.config()};
  ctl.update_channel(f.h);
  const auto cmd = ctl.make_data_command(1, {1, 2, 3}, 0xC0);
  ASSERT_TRUE(cmd.has_value());
  const auto spot = ctl.beamspot_for(1);
  ASSERT_TRUE(spot.has_value());
  for (std::size_t tx : spot->txs) EXPECT_TRUE(cmd->selects(tx));
  EXPECT_EQ(cmd->leading_tx, spot->leader);
  EXPECT_EQ(cmd->frame.dst, 1);
  EXPECT_EQ(cmd->frame.payload, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(Controller, NoSpotNoCommand) {
  Fixture f;
  Controller ctl{f.config(0.06)};
  ctl.update_channel(f.h);
  // Find an unserved RX and ask for a command.
  for (std::size_t rx = 0; rx < 4; ++rx) {
    if (!ctl.beamspot_for(rx)) {
      EXPECT_FALSE(ctl.make_data_command(rx, {1}, 0).has_value());
      return;
    }
  }
  FAIL() << "expected at least one unserved RX at a 0.06 W budget";
}

TEST(Controller, ExpectedThroughputPositiveForServedRxs) {
  Fixture f;
  Controller ctl{f.config()};
  ctl.update_channel(f.h);
  const auto tput = ctl.expected_throughput(f.h);
  ASSERT_EQ(tput.size(), 4u);
  for (std::size_t rx = 0; rx < 4; ++rx) {
    if (ctl.beamspot_for(rx)) {
      EXPECT_GT(tput[rx], 0.0) << "RX " << rx;
    }
  }
}

TEST(Controller, ExpectedThroughputZeroBeforeUpdate) {
  Fixture f;
  Controller ctl{f.config()};
  const auto tput = ctl.expected_throughput(f.h);
  for (double t : tput) EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(Controller, ReactsToChannelChange) {
  Fixture f;
  Controller ctl{f.config()};
  ctl.update_channel(f.h);
  const auto spot_before = ctl.beamspot_for(0);
  ASSERT_TRUE(spot_before.has_value());
  // Move RX0 to the opposite corner: its beamspot must relocate.
  auto moved = scenario::fig7_rx_positions();
  moved[0] = {2.6, 2.6, 0.0};
  const auto h2 = f.tb.channel_for(moved);
  ctl.update_channel(h2);
  const auto spot_after = ctl.beamspot_for(0);
  ASSERT_TRUE(spot_after.has_value());
  EXPECT_NE(spot_before->leader, spot_after->leader);
}

}  // namespace
}  // namespace densevlc::core
