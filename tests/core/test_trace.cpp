// Tests for the run trace recorder.
#include "core/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace densevlc::core {
namespace {

std::vector<Beamspot> spots_with_leader(std::size_t rx, std::size_t leader) {
  Beamspot s;
  s.rx = rx;
  s.leader = leader;
  s.txs = {leader, leader + 1};
  return {s};
}

TEST(Trace, RecordsPerRxRows) {
  TraceRecorder trace;
  trace.record_epoch(Seconds{0.0}, {1e6, 2e6}, spots_with_leader(0, 7), Watts{0.5});
  ASSERT_EQ(trace.rows().size(), 2u);
  EXPECT_EQ(trace.epochs(), 1u);
  EXPECT_TRUE(trace.rows()[0].served);
  EXPECT_EQ(trace.rows()[0].serving_txs, 2u);
  EXPECT_FALSE(trace.rows()[1].served);
  EXPECT_DOUBLE_EQ(trace.rows()[1].throughput_bps, 2e6);
}

TEST(Trace, MeanThroughputPerRx) {
  TraceRecorder trace;
  trace.record_epoch(Seconds{0.0}, {1e6, 4e6}, {}, Watts{0.0});
  trace.record_epoch(Seconds{1.0}, {3e6, 0.0}, {}, Watts{0.0});
  EXPECT_DOUBLE_EQ(trace.mean_throughput(0).value(), 2e6);
  EXPECT_DOUBLE_EQ(trace.mean_throughput(1).value(), 2e6);
  EXPECT_EQ(trace.num_rx(), 2u);
  // Out-of-range RX indices now violate the DVLC_EXPECT contract; see
  // tests/common/test_contracts.cpp for the death test.
}

TEST(Trace, CountsLeaderHandovers) {
  TraceRecorder trace;
  trace.record_epoch(Seconds{0.0}, {1e6}, spots_with_leader(0, 7), Watts{0.1});
  trace.record_epoch(Seconds{1.0}, {1e6}, spots_with_leader(0, 7), Watts{0.1});
  trace.record_epoch(Seconds{2.0}, {1e6}, spots_with_leader(0, 9), Watts{0.1});
  trace.record_epoch(Seconds{3.0}, {1e6}, spots_with_leader(0, 13), Watts{0.1});
  EXPECT_EQ(trace.leader_changes(0), 2u);
}

TEST(Trace, UnservedGapsDontCountAsHandover) {
  TraceRecorder trace;
  trace.record_epoch(Seconds{0.0}, {1e6}, spots_with_leader(0, 7), Watts{0.1});
  trace.record_epoch(Seconds{1.0}, {0.0}, {}, Watts{0.1});  // outage epoch
  trace.record_epoch(Seconds{2.0}, {1e6}, spots_with_leader(0, 9), Watts{0.1});
  // 7 -> (gap) -> 9: the change spans an unserved epoch; by the
  // definition (consecutive served epochs) it does not count.
  EXPECT_EQ(trace.leader_changes(0), 0u);
}

TEST(Trace, CsvShape) {
  TraceRecorder trace;
  trace.record_epoch(Seconds{0.5}, {1e6}, spots_with_leader(0, 3), Watts{0.25});
  std::ostringstream oss;
  trace.write_csv(oss);
  const std::string csv = oss.str();
  EXPECT_NE(csv.find("time_s,rx,throughput_bps"), std::string::npos);
  EXPECT_NE(csv.find("0.5,0,1e+06,1,2,3,0.25"), std::string::npos);
}

TEST(Trace, UnservedLeaderRendersMinusOne) {
  TraceRecorder trace;
  trace.record_epoch(Seconds{1.0}, {0.0}, {}, Watts{0.0});
  std::ostringstream oss;
  trace.write_csv(oss);
  EXPECT_NE(oss.str().find(",-1,"), std::string::npos);
}

TEST(Trace, SavesToFile) {
  TraceRecorder trace;
  trace.record_epoch(Seconds{0.0}, {1e6}, {}, Watts{0.0});
  const std::string path = "/tmp/densevlc_trace_test.csv";
  EXPECT_TRUE(trace.save(path));
  std::remove(path.c_str());
  EXPECT_FALSE(trace.save("/nonexistent/dir/x.csv"));
}

}  // namespace
}  // namespace densevlc::core
