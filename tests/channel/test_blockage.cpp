// Tests for the LOS blockage model (paper Sec. 9).
#include "channel/blockage.hpp"

#include <gtest/gtest.h>

#include "scenario/scenarios.hpp"

namespace densevlc::channel {
namespace {

TEST(Blockage, DirectHitBlocks) {
  // TX above, RX below, blocker exactly between them.
  const geom::Vec3 tx{1.0, 1.0, 2.8};
  const geom::Vec3 rx{1.0, 1.0, 0.8};
  const CylinderBlocker person{1.0, 1.0, 0.15, 1.7};
  EXPECT_TRUE(segment_blocked(tx, rx, person));
}

TEST(Blockage, MissesOffsetBlocker) {
  const geom::Vec3 tx{1.0, 1.0, 2.8};
  const geom::Vec3 rx{1.0, 1.0, 0.8};
  const CylinderBlocker person{1.5, 1.0, 0.15, 1.7};
  EXPECT_FALSE(segment_blocked(tx, rx, person));
}

TEST(Blockage, ShortBlockerMissesHighLink) {
  // Link from (0,0,2.8) to (2,0,2.0): stays above z = 2.0; a 1.7 m
  // person cannot touch it.
  const geom::Vec3 tx{0.0, 0.0, 2.8};
  const geom::Vec3 rx{2.0, 0.0, 2.0};
  const CylinderBlocker person{1.0, 0.0, 0.3, 1.7};
  EXPECT_FALSE(segment_blocked(tx, rx, person));
}

TEST(Blockage, ObliqueLinkBlockedOnlyWhereLow) {
  // Slanted link dips below the blocker height near the RX end.
  const geom::Vec3 tx{0.0, 0.0, 2.8};
  const geom::Vec3 rx{2.0, 0.0, 0.0};
  // Standing near the RX (link low there): blocked.
  EXPECT_TRUE(segment_blocked(tx, rx, {1.8, 0.0, 0.2, 1.7}));
  // Standing near the TX (link at z ~2.5 there): clear.
  EXPECT_FALSE(segment_blocked(tx, rx, {0.2, 0.0, 0.2, 1.7}));
}

TEST(Blockage, SideGrazeDoesNotBlock) {
  const geom::Vec3 tx{0.0, 0.0, 2.8};
  const geom::Vec3 rx{2.0, 0.0, 0.0};
  // Cylinder tangent to the segment's XY projection.
  const CylinderBlocker graze{1.0, 0.2000001, 0.2, 1.7};
  EXPECT_FALSE(segment_blocked(tx, rx, graze));
}

TEST(Blockage, ApplyZeroesOnlyBlockedLinks) {
  const auto tb = core::make_experimental_testbed();
  const auto rx_xy = scenario::fig7_rx_positions();
  const auto h = tb.channel_for(rx_xy);
  const auto tx_poses = tb.tx_poses();
  const auto rx_poses = tb.rx_poses(rx_xy);

  // A person standing right on RX1 blocks everything to RX1; other
  // links are zeroed exactly when their segment intersects the body
  // (low cross-room links passing the spot also get shadowed).
  const std::vector<CylinderBlocker> blockers{
      {rx_xy[0].x, rx_xy[0].y, 0.25, 1.7}};
  const auto blocked = apply_blockage(h, tx_poses, rx_poses, blockers);
  for (std::size_t j = 0; j < h.num_tx(); ++j) {
    EXPECT_DOUBLE_EQ(blocked.gain(j, 0), 0.0);
    for (std::size_t k = 1; k < h.num_rx(); ++k) {
      const bool hit = segment_blocked(tx_poses[j].position,
                                       rx_poses[k].position, blockers[0]);
      EXPECT_DOUBLE_EQ(blocked.gain(j, k), hit ? 0.0 : h.gain(j, k))
          << j << "," << k;
    }
  }
}

TEST(Blockage, CountMatchesApply) {
  const auto tb = core::make_experimental_testbed();
  const auto rx_xy = scenario::fig7_rx_positions();
  const auto h = tb.channel_for(rx_xy);
  const auto tx_poses = tb.tx_poses();
  const auto rx_poses = tb.rx_poses(rx_xy);
  const std::vector<CylinderBlocker> blockers{{1.5, 1.0, 0.2, 1.7}};

  const auto blocked = apply_blockage(h, tx_poses, rx_poses, blockers);
  std::size_t changed = 0;
  for (std::size_t j = 0; j < h.num_tx(); ++j) {
    for (std::size_t k = 0; k < h.num_rx(); ++k) {
      // Count links that the blocker zeroed; links that were already 0
      // (out of FoV) may also intersect the cylinder, so compare the
      // geometric count against *all* intersections.
      if (h.gain(j, k) != blocked.gain(j, k)) ++changed;
    }
  }
  const std::size_t geometric =
      count_blocked_links(tx_poses, rx_poses, blockers);
  EXPECT_LE(changed, geometric);
  EXPECT_GT(geometric, 0u);
}

TEST(Blockage, NoBlockersIsIdentity) {
  const auto tb = core::make_experimental_testbed();
  const auto h = tb.channel_for(scenario::fig7_rx_positions());
  const auto same = apply_blockage(h, tb.tx_poses(),
                                   tb.rx_poses(scenario::fig7_rx_positions()), {});
  for (std::size_t j = 0; j < h.num_tx(); ++j) {
    for (std::size_t k = 0; k < h.num_rx(); ++k) {
      EXPECT_DOUBLE_EQ(same.gain(j, k), h.gain(j, k));
    }
  }
}

TEST(Blockage, VerticalSegmentInsideCylinder) {
  const CylinderBlocker blocker{0.0, 0.0, 0.3, 1.7};
  EXPECT_TRUE(
      segment_blocked({0.0, 0.0, 2.8}, {0.0, 0.0, 0.0}, blocker));
  EXPECT_FALSE(
      segment_blocked({1.0, 0.0, 2.8}, {1.0, 0.0, 0.0}, blocker));
}

}  // namespace
}  // namespace densevlc::channel
