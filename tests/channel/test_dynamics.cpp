// Tests for the Gauss-Markov link fading model.
#include "channel/dynamics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.hpp"

namespace densevlc::channel {
namespace {

TEST(Fading, StationaryMeanAndSigma) {
  FadingConfig cfg;
  cfg.sigma = 0.1;
  GaussMarkovFading fading{6, 6, cfg, Rng{1}};
  std::vector<double> samples;
  for (int step = 0; step < 4000; ++step) {
    fading.step(Seconds{0.1});
    samples.push_back(fading.factor(2, 3));
  }
  EXPECT_NEAR(stats::mean(samples), 1.0, 0.02);
  EXPECT_NEAR(stats::stddev(samples), 0.1, 0.02);
}

TEST(Fading, FactorsNonNegative) {
  FadingConfig cfg;
  cfg.sigma = 0.8;  // violent fading: clamping must engage
  GaussMarkovFading fading{4, 4, cfg, Rng{2}};
  for (int step = 0; step < 500; ++step) {
    fading.step(Seconds{0.05});
    for (std::size_t j = 0; j < 4; ++j) {
      for (std::size_t k = 0; k < 4; ++k) {
        EXPECT_GE(fading.factor(j, k), 0.0);
      }
    }
  }
}

TEST(Fading, TemporalCorrelationDecays) {
  FadingConfig cfg;
  cfg.sigma = 0.2;
  cfg.correlation_time_s = 1.0;
  GaussMarkovFading fading{1, 1, cfg, Rng{3}};
  // Lag-1 autocorrelation at dt = 0.1 should be ~exp(-0.1) = 0.905;
  // at dt = 2.0 it should be ~exp(-2) = 0.135.
  auto measure_corr = [&](double dt) {
    std::vector<double> a;
    std::vector<double> b;
    double prev = fading.factor(0, 0);
    for (int i = 0; i < 6000; ++i) {
      fading.step(Seconds{dt});
      const double cur = fading.factor(0, 0);
      a.push_back(prev - 1.0);
      b.push_back(cur - 1.0);
      prev = cur;
    }
    double num = 0.0;
    double den_a = 0.0;
    double den_b = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      num += a[i] * b[i];
      den_a += a[i] * a[i];
      den_b += b[i] * b[i];
    }
    return num / std::sqrt(den_a * den_b);
  };
  EXPECT_NEAR(measure_corr(0.1), std::exp(-0.1), 0.05);
  EXPECT_NEAR(measure_corr(2.0), std::exp(-2.0), 0.08);
}

TEST(Fading, ZeroDtIsNoOp) {
  GaussMarkovFading fading{2, 2, FadingConfig{}, Rng{4}};
  const double before = fading.factor(1, 1);
  fading.step(Seconds{0.0});
  fading.step(Seconds{-1.0});
  EXPECT_DOUBLE_EQ(fading.factor(1, 1), before);
}

TEST(Fading, AppliesMultiplicatively) {
  GaussMarkovFading fading{2, 2, FadingConfig{}, Rng{5}};
  const ChannelMatrix h{2, 2, {1e-6, 2e-6, 3e-6, 4e-6}};
  const auto faded = fading.apply(h);
  for (std::size_t j = 0; j < 2; ++j) {
    for (std::size_t k = 0; k < 2; ++k) {
      EXPECT_NEAR(faded.gain(j, k), h.gain(j, k) * fading.factor(j, k),
                  1e-18);
    }
  }
}

TEST(Fading, LinksFadeIndependently) {
  FadingConfig cfg;
  cfg.sigma = 0.2;
  GaussMarkovFading fading{2, 1, cfg, Rng{6}};
  // Correlation between two different links should be ~0.
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 5000; ++i) {
    fading.step(Seconds{0.5});
    a.push_back(fading.factor(0, 0) - 1.0);
    b.push_back(fading.factor(1, 0) - 1.0);
  }
  double num = 0.0;
  double den_a = 0.0;
  double den_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += a[i] * b[i];
    den_a += a[i] * a[i];
    den_b += b[i] * b[i];
  }
  EXPECT_NEAR(num / std::sqrt(den_a * den_b), 0.0, 0.05);
}

}  // namespace
}  // namespace densevlc::channel
