// Tests for the channel matrix, SINR (Eq. 12), throughput and power
// accounting (Eqs. 7, 11).
#include "channel/model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "scenario/scenarios.hpp"

namespace densevlc::channel {
namespace {

LinkBudget paper_budget() {
  return core::make_simulation_testbed().budget;
}

/// Tiny 2x2 setup with hand-set gains for closed-form checks.
ChannelMatrix tiny_matrix() {
  // TX0 strong to RX0, weak to RX1; TX1 symmetric.
  return ChannelMatrix{2, 2, {1e-6, 1e-8, 1e-8, 1e-6}};
}

TEST(ChannelMatrix, SizeValidation) {
  EXPECT_THROW((ChannelMatrix{2, 2, {1.0}}), std::invalid_argument);
}

TEST(ChannelMatrix, GeometryBestTxMatchesPaper) {
  const auto tb = core::make_simulation_testbed();
  const auto h = tb.channel_for(scenario::fig7_rx_positions());
  EXPECT_EQ(h.num_tx(), 36u);
  EXPECT_EQ(h.num_rx(), 4u);
  // Paper Sec. 4.2: TX8 serves RX1 first, TX10 serves RX2 first
  // (1-based); our indices are 0-based.
  EXPECT_EQ(h.best_tx_for(0), 7u);
  EXPECT_EQ(h.best_tx_for(1), 9u);
}

TEST(ChannelMatrix, SetGainOverwrites) {
  auto h = tiny_matrix();
  h.set_gain(0, 1, 0.5);
  EXPECT_DOUBLE_EQ(h.gain(0, 1), 0.5);
}

TEST(Allocation, RowTotals) {
  Allocation a{2, 2};
  a.set_swing(0, 0, 0.4);
  a.set_swing(0, 1, 0.3);
  EXPECT_DOUBLE_EQ(a.tx_total_swing(0).value(), 0.7);
  EXPECT_DOUBLE_EQ(a.tx_total_swing(1).value(), 0.0);
}

TEST(Power, QuadraticInTotalSwing) {
  const auto b = paper_budget();
  EXPECT_NEAR(tx_comm_power(900.0_mA, b).value(),
              b.dynamic_resistance_ohm * 0.45 * 0.45, 1e-15);
  // Splitting a TX's swing across RXs costs the same as one big swing.
  Allocation split{1, 2};
  split.set_swing(0, 0, 0.5);
  split.set_swing(0, 1, 0.4);
  Allocation merged{1, 1};
  merged.set_swing(0, 0, 0.9);
  EXPECT_NEAR(total_comm_power(split, b).value(),
              total_comm_power(merged, b).value(), 1e-15);
}

TEST(Sinr, ZeroAllocationIsZero) {
  const auto s = sinr(tiny_matrix(), Allocation{2, 2}, paper_budget());
  EXPECT_DOUBLE_EQ(s[0], 0.0);
  EXPECT_DOUBLE_EQ(s[1], 0.0);
}

TEST(Sinr, SingleLinkClosedForm) {
  const auto b = paper_budget();
  auto h = tiny_matrix();
  Allocation a{2, 2};
  a.set_swing(0, 0, 0.9);
  const double scale = b.responsivity_a_per_w * b.wall_plug_efficiency *
                       b.dynamic_resistance_ohm;
  const double current = scale * 1e-6 * 0.45 * 0.45;
  const double expected =
      current * current / (b.noise_psd_a2_per_hz * b.bandwidth_hz);
  EXPECT_NEAR(sinr(h, a, b)[0], expected, expected * 1e-12);
}

TEST(Sinr, InterferenceLowersSinr) {
  const auto b = paper_budget();
  const auto h = tiny_matrix();
  Allocation alone{2, 2};
  alone.set_swing(0, 0, 0.9);
  Allocation both = alone;
  both.set_swing(1, 1, 0.9);  // TX1 serves RX1, interferes at RX0
  EXPECT_GT(sinr(h, alone, b)[0], sinr(h, both, b)[0]);
}

TEST(Sinr, MoreServersRaiseSinr) {
  const auto b = paper_budget();
  const auto tb = core::make_simulation_testbed();
  const auto h = tb.channel_for({{0.92, 0.92, 0.0}});
  Allocation one{36, 1};
  one.set_swing(h.best_tx_for(0), 0, 0.9);
  Allocation two = one;
  two.set_swing(13, 0, 0.9);  // TX14, the second-preferred for this spot
  EXPECT_GT(sinr(h, two, b)[0], sinr(h, one, b)[0]);
}

TEST(Throughput, ShannonOfSinr) {
  const auto b = paper_budget();
  const auto h = tiny_matrix();
  Allocation a{2, 2};
  a.set_swing(0, 0, 0.9);
  const auto s = sinr(h, a, b);
  const auto t = throughput_bps(h, a, b);
  EXPECT_NEAR(t[0], b.bandwidth_hz * std::log2(1.0 + s[0]), 1e-6);
  EXPECT_DOUBLE_EQ(t[1], 0.0);
}

TEST(Utility, MonotoneInThroughput) {
  const auto b = paper_budget();
  const auto h = tiny_matrix();
  Allocation weak{2, 2};
  weak.set_swing(0, 0, 0.3);
  weak.set_swing(1, 1, 0.3);
  Allocation strong{2, 2};
  strong.set_swing(0, 0, 0.9);
  strong.set_swing(1, 1, 0.9);
  EXPECT_GT(sum_log_utility(h, strong, b), sum_log_utility(h, weak, b));
}

TEST(Utility, FiniteWhenOneRxIsDark) {
  const auto b = paper_budget();
  const auto h = tiny_matrix();
  Allocation a{2, 2};
  a.set_swing(0, 0, 0.9);  // RX1 gets nothing
  const double u = sum_log_utility(h, a, b);
  EXPECT_TRUE(std::isfinite(u));
}

TEST(LinkBudget, FromLedDerivesScalars) {
  const optics::LedModel led{optics::LedElectrical{},
                             optics::LedOperatingPoint{0.45, 0.9}};
  const auto b = LinkBudget::from_led(led, AmperesPerWatt{0.4},
                                      AmpsSquaredPerHertz{7.02e-23},
                                      Hertz{1e6});
  EXPECT_DOUBLE_EQ(b.dynamic_resistance_ohm, led.dynamic_resistance().value());
  EXPECT_DOUBLE_EQ(b.wall_plug_efficiency, 0.4);
  EXPECT_DOUBLE_EQ(b.responsivity_a_per_w, 0.4);
}

// Property: SINR of every RX is non-increasing when any *other* RX's
// swing grows (interference monotonicity).
class InterferenceSweep : public ::testing::TestWithParam<double> {};

TEST_P(InterferenceSweep, OtherRxSwingNeverHelps) {
  const auto b = paper_budget();
  const auto tb = core::make_simulation_testbed();
  const auto h = tb.channel_for(scenario::fig7_rx_positions());
  Allocation base{36, 4};
  base.set_swing(7, 0, 0.9);
  base.set_swing(9, 1, GetParam());
  Allocation more = base;
  more.set_swing(9, 1, std::min(0.9, GetParam() + 0.2));
  EXPECT_LE(sinr(h, more, b)[0], sinr(h, base, b)[0] + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Swings, InterferenceSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7));

// Incremental column update: recomputing only the moved RXs' columns
// must land bit-for-bit on a full from-scratch rebuild.
TEST(ChannelMatrix, UpdateColumnsMatchesFullRebuild) {
  const auto tb = core::make_simulation_testbed();
  auto rx = scenario::fig7_rx_positions();
  auto h = tb.channel_for(rx);

  rx[1].x += 0.40;
  rx[3].y -= 0.25;
  const auto full = tb.channel_for(rx);

  const std::size_t dirty[] = {1, 3};
  tb.update_channel_for(h, rx, dirty);

  ASSERT_EQ(h.num_tx(), full.num_tx());
  ASSERT_EQ(h.num_rx(), full.num_rx());
  for (std::size_t j = 0; j < h.num_tx(); ++j) {
    for (std::size_t k = 0; k < h.num_rx(); ++k) {
      EXPECT_EQ(h.gain(j, k), full.gain(j, k)) << "j=" << j << " k=" << k;
    }
  }
}

// An empty dirty list must leave the matrix untouched.
TEST(ChannelMatrix, UpdateColumnsEmptyDirtyListIsNoOp) {
  const auto tb = core::make_simulation_testbed();
  const auto rx = scenario::fig7_rx_positions();
  auto h = tb.channel_for(rx);
  const auto before = h;
  tb.update_channel_for(h, rx, {});
  for (std::size_t j = 0; j < h.num_tx(); ++j) {
    for (std::size_t k = 0; k < h.num_rx(); ++k) {
      EXPECT_EQ(h.gain(j, k), before.gain(j, k));
    }
  }
}

}  // namespace
}  // namespace densevlc::channel
