// Tests for the paper's evaluation scenarios.
#include "scenario/scenarios.hpp"

#include <gtest/gtest.h>

namespace densevlc::scenario {
namespace {

TEST(Scenario, SimulationTestbedMatchesTable1) {
  const auto tb = core::make_simulation_testbed();
  EXPECT_EQ(tb.grid.count(), 36u);
  EXPECT_DOUBLE_EQ(tb.grid.pitch, 0.5);
  EXPECT_DOUBLE_EQ(tb.grid.mount_height_m, 2.8);
  EXPECT_DOUBLE_EQ(tb.rx_height_m, 0.8);
  EXPECT_NEAR(tb.emitter.half_power_semi_angle_rad, 0.2618, 1e-4);
  EXPECT_DOUBLE_EQ(tb.budget.bandwidth_hz, 1e6);
  EXPECT_DOUBLE_EQ(tb.budget.noise_psd_a2_per_hz, 7.02e-23);
  EXPECT_DOUBLE_EQ(tb.led.operating_point().bias_current_a, 0.45);
  EXPECT_DOUBLE_EQ(tb.led.operating_point().max_swing_current_a, 0.9);
}

TEST(Scenario, ExperimentalTestbedAtTwoMeters) {
  const auto tb = core::make_experimental_testbed();
  EXPECT_DOUBLE_EQ(tb.grid.mount_height_m, 2.0);
  EXPECT_DOUBLE_EQ(tb.rx_height_m, 0.0);
}

TEST(Scenario, Fig7PositionsMatchTable6Scenario2) {
  const auto rx = fig7_rx_positions();
  ASSERT_EQ(rx.size(), 4u);
  EXPECT_DOUBLE_EQ(rx[0].x, 0.92);
  EXPECT_DOUBLE_EQ(rx[0].y, 0.92);
  EXPECT_DOUBLE_EQ(rx[3].x, 1.99);
  EXPECT_DOUBLE_EQ(rx[3].y, 1.69);
}

TEST(Scenario, Scenario1IsWellSeparated) {
  const auto rx = scenario1_rx_positions();
  ASSERT_EQ(rx.size(), 4u);
  // 2 m inter-RX spacing (interference-free by design).
  EXPECT_NEAR(geom::distance(rx[0], rx[1]), 2.0, 1e-12);
  EXPECT_NEAR(geom::distance(rx[0], rx[2]), 2.0, 1e-12);
}

TEST(Scenario, Scenario3IsUnderTxs) {
  const auto rx = scenario3_rx_positions();
  const auto tb = core::make_experimental_testbed();
  const auto poses = tb.tx_poses();
  // Every scenario-3 RX sits exactly under some TX.
  for (const auto& r : rx) {
    bool under = false;
    for (const auto& p : poses) {
      if (std::abs(p.position.x - r.x) < 1e-9 &&
          std::abs(p.position.y - r.y) < 1e-9) {
        under = true;
      }
    }
    EXPECT_TRUE(under) << "(" << r.x << "," << r.y << ")";
  }
}

TEST(Scenario, RandomInstancesRespectAnchorsAndRoom) {
  const auto tb = core::make_simulation_testbed();
  const auto instances = random_instances(100, 0.3, tb.room, 42);
  ASSERT_EQ(instances.size(), 100u);
  const auto anchors = fig7_rx_positions();
  for (const auto& inst : instances) {
    ASSERT_EQ(inst.size(), 4u);
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_LE(geom::distance(inst[k], anchors[k]), 0.3 + 1e-9);
      EXPECT_TRUE(tb.room.contains_xy(inst[k].x, inst[k].y));
    }
  }
}

TEST(Scenario, RandomInstancesDeterministic) {
  const auto tb = core::make_simulation_testbed();
  const auto a = random_instances(5, 0.3, tb.room, 7);
  const auto b = random_instances(5, 0.3, tb.room, 7);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_EQ(a[i][k], b[i][k]);
    }
  }
  const auto c = random_instances(5, 0.3, tb.room, 8);
  EXPECT_NE(a[0][0], c[0][0]);
}

TEST(Scenario, ChannelMatrixHasExpectedShape) {
  const auto tb = core::make_simulation_testbed();
  const auto h = tb.channel_for(fig7_rx_positions());
  EXPECT_EQ(h.num_tx(), 36u);
  EXPECT_EQ(h.num_rx(), 4u);
  // Every RX sees at least one TX.
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_GT(h.gain(h.best_tx_for(k), k), 0.0);
  }
}

TEST(Scenario, RxPosesFaceUpAtConfiguredHeight) {
  const auto tb = core::make_simulation_testbed();
  const auto poses = tb.rx_poses(fig7_rx_positions());
  for (const auto& p : poses) {
    EXPECT_DOUBLE_EQ(p.position.z, 0.8);
    EXPECT_DOUBLE_EQ(p.normal.z, 1.0);
  }
}

}  // namespace
}  // namespace densevlc::scenario
