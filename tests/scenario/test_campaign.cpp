// Campaign expansion and determinism.
//
// The contracts under test:
//   - expansion is point-major with instance seeds derived as
//     Rng::derive_stream_seed(base seed, expansion index);
//   - run_campaign() is bit-identical at thread counts {1, 4, hw}
//     (fingerprints compared double-for-double, not via hashes);
//   - results are independent of shard/submission order — reversed and
//     shuffled instance lists reproduce every fingerprint exactly;
//   - parse_campaign() rejects malformed [campaign]/[sweep] input and
//     sweep legs that expand into invalid specs, with typed errors.
#include "scenario/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace densevlc::scenario {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A small self-contained campaign: 2 x 2 sweep, uniform drops.
const char* kSmallCampaign = R"(
[scenario]
name = unit
kind = analytic
seed = 0xBEEF

[rx]
placement = uniform
count = 2
margin = 0.4

[campaign]
instances = 3

[sweep]
rx.count = 2 | 3
grid = grid.rows=4 grid.cols=4 grid.pitch=0.6 | grid.rows=5 grid.cols=5 grid.pitch=0.5
)";

TEST(Campaign, ExpansionIsPointMajorWithStreamSeeds) {
  const auto parsed = parse_campaign(kSmallCampaign);
  ASSERT_TRUE(parsed.ok()) << parsed.error_text();
  const CampaignSpec& campaign = *parsed.campaign;
  EXPECT_EQ(campaign.num_points(), 4u);
  EXPECT_EQ(campaign.num_instances(), 12u);

  std::vector<CampaignInstance> instances;
  ASSERT_TRUE(expand_campaign(campaign, 3, instances).empty());
  ASSERT_EQ(instances.size(), 12u);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    EXPECT_EQ(instances[i].index, i);
    EXPECT_EQ(instances[i].point, i / 3);
    EXPECT_EQ(instances[i].rep, i % 3);
    EXPECT_EQ(instances[i].seed, Rng::derive_stream_seed(0xBEEF, i));
  }
  // First axis (rx.count) outermost, second axis (grid) innermost.
  EXPECT_EQ(instances[0].spec.rx_count, 2u);
  EXPECT_EQ(instances[0].spec.grid_rows, 4u);
  EXPECT_EQ(instances[3].spec.rx_count, 2u);
  EXPECT_EQ(instances[3].spec.grid_rows, 5u);
  EXPECT_EQ(instances[6].spec.rx_count, 3u);
  EXPECT_EQ(instances[6].spec.grid_rows, 4u);
  EXPECT_EQ(instances[9].spec.rx_count, 3u);
  EXPECT_EQ(instances[9].spec.grid_rows, 5u);
}

TEST(Campaign, BitIdenticalAcrossThreadCounts) {
  const auto parsed = parse_campaign(kSmallCampaign);
  ASSERT_TRUE(parsed.ok()) << parsed.error_text();
  std::vector<CampaignInstance> instances;
  ASSERT_TRUE(expand_campaign(*parsed.campaign, 3, instances).empty());

  std::vector<std::size_t> thread_counts{1, 4};
  if (std::find(thread_counts.begin(), thread_counts.end(),
                hardware_threads()) == thread_counts.end()) {
    thread_counts.push_back(hardware_threads());
  }
  CampaignRun reference;
  for (std::size_t threads : thread_counts) {
    set_global_threads(threads);
    CampaignRun run = run_campaign(*parsed.campaign, instances);
    if (threads == thread_counts.front()) {
      reference = std::move(run);
      continue;
    }
    SCOPED_TRACE("threads = " + std::to_string(threads));
    ASSERT_EQ(run.instances.size(), reference.instances.size());
    for (std::size_t i = 0; i < run.instances.size(); ++i) {
      // Exact doubles, not hashes: any drift must be visible here.
      EXPECT_EQ(run.instances[i].fingerprint,
                reference.instances[i].fingerprint)
          << "instance " << i;
    }
    EXPECT_EQ(run.campaign_hash, reference.campaign_hash);
    ASSERT_EQ(run.points.size(), reference.points.size());
    for (std::size_t p = 0; p < run.points.size(); ++p) {
      EXPECT_EQ(run.points[p].point_hash, reference.points[p].point_hash);
      EXPECT_EQ(run.points[p].system_mbps.mean,
                reference.points[p].system_mbps.mean);
      EXPECT_EQ(run.points[p].p99_mbps, reference.points[p].p99_mbps);
    }
  }
  set_global_threads(0);
}

TEST(Campaign, ShardOrderIndependent) {
  const auto parsed = parse_campaign(kSmallCampaign);
  ASSERT_TRUE(parsed.ok()) << parsed.error_text();
  std::vector<CampaignInstance> instances;
  ASSERT_TRUE(expand_campaign(*parsed.campaign, 3, instances).empty());

  const CampaignRun forward = run_campaign(*parsed.campaign, instances);

  // Reversed submission order.
  std::vector<CampaignInstance> reversed{instances.rbegin(),
                                         instances.rend()};
  const CampaignRun rev_run = run_campaign(*parsed.campaign, reversed);
  for (std::size_t i = 0; i < reversed.size(); ++i) {
    EXPECT_EQ(rev_run.instances[i].fingerprint,
              forward.instances[reversed[i].index].fingerprint);
  }

  // Deterministically shuffled submission order.
  std::vector<CampaignInstance> shuffled = instances;
  Rng rng{42};
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform(0.0, static_cast<double>(i)));
    std::swap(shuffled[i - 1], shuffled[std::min(j, i - 1)]);
  }
  const CampaignRun shuf_run = run_campaign(*parsed.campaign, shuffled);
  for (std::size_t i = 0; i < shuffled.size(); ++i) {
    EXPECT_EQ(shuf_run.instances[i].fingerprint,
              forward.instances[shuffled[i].index].fingerprint);
  }
}

TEST(Campaign, QuickFlagshipCampaignParsesAndScales) {
  const std::string text =
      read_file(std::string{DVLC_SCENARIO_DIR} + "/campaign_quick.ini");
  const auto parsed = parse_campaign(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error_text();
  // The acceptance shape: 10 sweep points x 100 = 1000 full instances.
  EXPECT_EQ(parsed.campaign->num_points(), 10u);
  EXPECT_EQ(parsed.campaign->instances_per_point, 100u);
  EXPECT_EQ(parsed.campaign->num_instances(), 1000u);
  EXPECT_EQ(parsed.campaign->quick_instances_per_point, 4u);

  std::vector<CampaignInstance> instances;
  ASSERT_TRUE(expand_campaign(*parsed.campaign, 1, instances).empty());
  EXPECT_EQ(instances.size(), 10u);
}

TEST(Campaign, AggregatesMatchInstanceResults) {
  const auto parsed = parse_campaign(kSmallCampaign);
  ASSERT_TRUE(parsed.ok()) << parsed.error_text();
  std::vector<CampaignInstance> instances;
  ASSERT_TRUE(expand_campaign(*parsed.campaign, 3, instances).empty());
  const CampaignRun run = run_campaign(*parsed.campaign, instances);
  ASSERT_EQ(run.points.size(), 4u);
  for (std::size_t p = 0; p < run.points.size(); ++p) {
    EXPECT_EQ(run.points[p].instance_count, 3u);
    double sum = 0.0;
    for (std::size_t i = 0; i < instances.size(); ++i) {
      if (instances[i].point == p) sum += run.instances[i].system_mbps;
    }
    EXPECT_DOUBLE_EQ(run.points[p].system_mbps.mean, sum / 3.0);
    EXPECT_GT(run.points[p].system_mbps.mean, 0.0);
  }
}

TEST(Campaign, RejectsUnknownCampaignKey) {
  const auto parsed = parse_campaign(
      "[scenario]\nname = t\n[rx]\nplacement = uniform\ncount = 2\n"
      "[campaign]\nrepeats = 5\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error_text().find("campaign.repeats"), std::string::npos);
}

TEST(Campaign, RejectsBadSweepLeg) {
  // Second leg sweeps the grid beyond the room: typed sweep-point error.
  const auto parsed = parse_campaign(
      "[scenario]\nname = t\n[rx]\nplacement = uniform\ncount = 2\n"
      "[sweep]\ngrid.rows = 4 | 99\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error_text().find("grid.rows"), std::string::npos);
}

TEST(Campaign, RejectsDuplicateAxisAndEmptyLeg) {
  const auto dup = parse_campaign(
      "[scenario]\nname = t\n[rx]\nplacement = uniform\ncount = 2\n"
      "[sweep]\nrx.count = 2 | 3\nrx.count = 4\n");
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.error_text().find("duplicate"), std::string::npos);

  const auto empty = parse_campaign(
      "[scenario]\nname = t\n[rx]\nplacement = uniform\ncount = 2\n"
      "[sweep]\nrx.count = 2 | | 3\n");
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.error_text().find("empty sweep value"), std::string::npos);
}

TEST(Campaign, RejectsSweepPointThatExpandsInvalid) {
  // Each leg is fine syntactically, but mounting at 0.5 m puts the
  // luminaires below the default 0.8 m receiver plane.
  const auto parsed = parse_campaign(
      "[scenario]\nname = t\n[rx]\nplacement = uniform\ncount = 2\n"
      "[sweep]\ngrid.mount_height = 2.8 | 0.5\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error_text().find("sweep point 1"), std::string::npos);
}

}  // namespace
}  // namespace densevlc::scenario
