// Campaign expansion and determinism.
//
// The contracts under test:
//   - expansion is point-major with instance seeds derived as
//     Rng::derive_stream_seed(base seed, expansion index);
//   - run_campaign() is bit-identical at thread counts {1, 4, hw}
//     (fingerprints compared double-for-double, not via hashes);
//   - results are independent of shard/submission order — reversed and
//     shuffled instance lists reproduce every fingerprint exactly;
//   - parse_campaign() rejects malformed [campaign]/[sweep] input and
//     sweep legs that expand into invalid specs, with typed errors.
#include "scenario/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>

#include "common/journal.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace densevlc::scenario {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A small self-contained campaign: 2 x 2 sweep, uniform drops.
const char* kSmallCampaign = R"(
[scenario]
name = unit
kind = analytic
seed = 0xBEEF

[rx]
placement = uniform
count = 2
margin = 0.4

[campaign]
instances = 3

[sweep]
rx.count = 2 | 3
grid = grid.rows=4 grid.cols=4 grid.pitch=0.6 | grid.rows=5 grid.cols=5 grid.pitch=0.5
)";

TEST(Campaign, ExpansionIsPointMajorWithStreamSeeds) {
  const auto parsed = parse_campaign(kSmallCampaign);
  ASSERT_TRUE(parsed.ok()) << parsed.error_text();
  const CampaignSpec& campaign = *parsed.campaign;
  EXPECT_EQ(campaign.num_points(), 4u);
  EXPECT_EQ(campaign.num_instances(), 12u);

  std::vector<CampaignInstance> instances;
  ASSERT_TRUE(expand_campaign(campaign, 3, instances).empty());
  ASSERT_EQ(instances.size(), 12u);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    EXPECT_EQ(instances[i].index, i);
    EXPECT_EQ(instances[i].point, i / 3);
    EXPECT_EQ(instances[i].rep, i % 3);
    EXPECT_EQ(instances[i].seed, Rng::derive_stream_seed(0xBEEF, i));
  }
  // First axis (rx.count) outermost, second axis (grid) innermost.
  EXPECT_EQ(instances[0].spec.rx_count, 2u);
  EXPECT_EQ(instances[0].spec.grid_rows, 4u);
  EXPECT_EQ(instances[3].spec.rx_count, 2u);
  EXPECT_EQ(instances[3].spec.grid_rows, 5u);
  EXPECT_EQ(instances[6].spec.rx_count, 3u);
  EXPECT_EQ(instances[6].spec.grid_rows, 4u);
  EXPECT_EQ(instances[9].spec.rx_count, 3u);
  EXPECT_EQ(instances[9].spec.grid_rows, 5u);
}

TEST(Campaign, BitIdenticalAcrossThreadCounts) {
  const auto parsed = parse_campaign(kSmallCampaign);
  ASSERT_TRUE(parsed.ok()) << parsed.error_text();
  std::vector<CampaignInstance> instances;
  ASSERT_TRUE(expand_campaign(*parsed.campaign, 3, instances).empty());

  std::vector<std::size_t> thread_counts{1, 4};
  if (std::find(thread_counts.begin(), thread_counts.end(),
                hardware_threads()) == thread_counts.end()) {
    thread_counts.push_back(hardware_threads());
  }
  CampaignRun reference;
  for (std::size_t threads : thread_counts) {
    set_global_threads(threads);
    CampaignRun run = run_campaign(*parsed.campaign, instances);
    if (threads == thread_counts.front()) {
      reference = std::move(run);
      continue;
    }
    SCOPED_TRACE("threads = " + std::to_string(threads));
    ASSERT_EQ(run.instances.size(), reference.instances.size());
    for (std::size_t i = 0; i < run.instances.size(); ++i) {
      // Exact doubles, not hashes: any drift must be visible here.
      EXPECT_EQ(run.instances[i].fingerprint,
                reference.instances[i].fingerprint)
          << "instance " << i;
    }
    EXPECT_EQ(run.campaign_hash, reference.campaign_hash);
    ASSERT_EQ(run.points.size(), reference.points.size());
    for (std::size_t p = 0; p < run.points.size(); ++p) {
      EXPECT_EQ(run.points[p].point_hash, reference.points[p].point_hash);
      EXPECT_EQ(run.points[p].system_mbps.mean,
                reference.points[p].system_mbps.mean);
      EXPECT_EQ(run.points[p].p99_mbps, reference.points[p].p99_mbps);
    }
  }
  set_global_threads(0);
}

TEST(Campaign, ShardOrderIndependent) {
  const auto parsed = parse_campaign(kSmallCampaign);
  ASSERT_TRUE(parsed.ok()) << parsed.error_text();
  std::vector<CampaignInstance> instances;
  ASSERT_TRUE(expand_campaign(*parsed.campaign, 3, instances).empty());

  const CampaignRun forward = run_campaign(*parsed.campaign, instances);

  // Reversed submission order.
  std::vector<CampaignInstance> reversed{instances.rbegin(),
                                         instances.rend()};
  const CampaignRun rev_run = run_campaign(*parsed.campaign, reversed);
  for (std::size_t i = 0; i < reversed.size(); ++i) {
    EXPECT_EQ(rev_run.instances[i].fingerprint,
              forward.instances[reversed[i].index].fingerprint);
  }

  // Deterministically shuffled submission order.
  std::vector<CampaignInstance> shuffled = instances;
  Rng rng{42};
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform(0.0, static_cast<double>(i)));
    std::swap(shuffled[i - 1], shuffled[std::min(j, i - 1)]);
  }
  const CampaignRun shuf_run = run_campaign(*parsed.campaign, shuffled);
  for (std::size_t i = 0; i < shuffled.size(); ++i) {
    EXPECT_EQ(shuf_run.instances[i].fingerprint,
              forward.instances[shuffled[i].index].fingerprint);
  }
}

TEST(Campaign, QuickFlagshipCampaignParsesAndScales) {
  const std::string text =
      read_file(std::string{DVLC_SCENARIO_DIR} + "/campaign_quick.ini");
  const auto parsed = parse_campaign(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error_text();
  // The acceptance shape: 10 sweep points x 100 = 1000 full instances.
  EXPECT_EQ(parsed.campaign->num_points(), 10u);
  EXPECT_EQ(parsed.campaign->instances_per_point, 100u);
  EXPECT_EQ(parsed.campaign->num_instances(), 1000u);
  EXPECT_EQ(parsed.campaign->quick_instances_per_point, 4u);

  std::vector<CampaignInstance> instances;
  ASSERT_TRUE(expand_campaign(*parsed.campaign, 1, instances).empty());
  EXPECT_EQ(instances.size(), 10u);
}

TEST(Campaign, AggregatesMatchInstanceResults) {
  const auto parsed = parse_campaign(kSmallCampaign);
  ASSERT_TRUE(parsed.ok()) << parsed.error_text();
  std::vector<CampaignInstance> instances;
  ASSERT_TRUE(expand_campaign(*parsed.campaign, 3, instances).empty());
  const CampaignRun run = run_campaign(*parsed.campaign, instances);
  ASSERT_EQ(run.points.size(), 4u);
  for (std::size_t p = 0; p < run.points.size(); ++p) {
    EXPECT_EQ(run.points[p].instance_count, 3u);
    double sum = 0.0;
    for (std::size_t i = 0; i < instances.size(); ++i) {
      if (instances[i].point == p) sum += run.instances[i].system_mbps;
    }
    EXPECT_DOUBLE_EQ(run.points[p].system_mbps.mean, sum / 3.0);
    EXPECT_GT(run.points[p].system_mbps.mean, 0.0);
  }
}

TEST(Campaign, RejectsUnknownCampaignKey) {
  const auto parsed = parse_campaign(
      "[scenario]\nname = t\n[rx]\nplacement = uniform\ncount = 2\n"
      "[campaign]\nrepeats = 5\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error_text().find("campaign.repeats"), std::string::npos);
}

TEST(Campaign, RejectsBadSweepLeg) {
  // Second leg sweeps the grid beyond the room: typed sweep-point error.
  const auto parsed = parse_campaign(
      "[scenario]\nname = t\n[rx]\nplacement = uniform\ncount = 2\n"
      "[sweep]\ngrid.rows = 4 | 99\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error_text().find("grid.rows"), std::string::npos);
}

TEST(Campaign, RejectsDuplicateAxisAndEmptyLeg) {
  const auto dup = parse_campaign(
      "[scenario]\nname = t\n[rx]\nplacement = uniform\ncount = 2\n"
      "[sweep]\nrx.count = 2 | 3\nrx.count = 4\n");
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.error_text().find("duplicate"), std::string::npos);

  const auto empty = parse_campaign(
      "[scenario]\nname = t\n[rx]\nplacement = uniform\ncount = 2\n"
      "[sweep]\nrx.count = 2 | | 3\n");
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.error_text().find("empty sweep value"), std::string::npos);
}

TEST(Campaign, LoadCampaignFileMissingPathIsTypedError) {
  const std::string path = "/nonexistent_dvlc_dir/missing_campaign.ini";
  const auto result = load_campaign_file(path);
  ASSERT_FALSE(result.ok());
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0].key, path);
  EXPECT_NE(result.errors[0].message.find("missing or unreadable"),
            std::string::npos)
      << result.error_text();
}

TEST(Campaign, LoadCampaignFileReadsCommittedCampaign) {
  const auto result = load_campaign_file(
      std::string{DVLC_SCENARIO_DIR} + "/campaign_quick.ini");
  ASSERT_TRUE(result.ok()) << result.error_text();
  EXPECT_EQ(result.campaign->num_points(), 10u);
}

// --- durable journal layer -------------------------------------------------

namespace fs = std::filesystem;

/// Fresh campaign directory per use (wiped up front so a failing test
/// leaves its journals behind for inspection).
std::string scratch_dir(const std::string& name) {
  const fs::path dir =
      fs::temp_directory_path() / ("dvlc_campaign_" + name);
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  return dir.string();
}

std::string read_bytes(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  return {std::istreambuf_iterator<char>{in},
          std::istreambuf_iterator<char>{}};
}

void write_bytes(const std::string& path, const std::string& contents) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

/// Bit-pattern equality (covers NaN, -0.0 and every finite value).
void expect_bits_equal(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b));
}

void expect_same_points(const std::vector<PointAggregate>& got,
                        const std::vector<PointAggregate>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t p = 0; p < got.size(); ++p) {
    SCOPED_TRACE("point " + std::to_string(p));
    EXPECT_EQ(got[p].axis_values, want[p].axis_values);
    EXPECT_EQ(got[p].instance_count, want[p].instance_count);
    // Exact doubles: the resume contract is bit-identity, not tolerance.
    EXPECT_EQ(got[p].system_mbps.mean, want[p].system_mbps.mean);
    EXPECT_EQ(got[p].system_mbps.ci95, want[p].system_mbps.ci95);
    EXPECT_EQ(got[p].p50_mbps, want[p].p50_mbps);
    EXPECT_EQ(got[p].p99_mbps, want[p].p99_mbps);
    EXPECT_EQ(got[p].p999_mbps, want[p].p999_mbps);
    EXPECT_EQ(got[p].mean_jain, want[p].mean_jain);
    EXPECT_EQ(got[p].mean_power_w, want[p].mean_power_w);
    EXPECT_EQ(got[p].mean_txs, want[p].mean_txs);
    EXPECT_EQ(got[p].point_hash, want[p].point_hash);
  }
}

TEST(CampaignDurable, InstanceRecordRoundTripIsExact) {
  InstanceRecord record;
  record.index = 0xDEADBEEFCAFEULL;
  record.seed = 0x0123456789ABCDEFULL;
  record.fingerprint_hash = ~0ULL;
  record.system_mbps = -0.0;
  record.jain = std::numeric_limits<double>::quiet_NaN();
  record.power_used_w = std::numeric_limits<double>::denorm_min();
  record.txs_assigned = std::numeric_limits<double>::infinity();

  const std::vector<std::uint8_t> payload = encode_instance_record(record);
  const auto decoded = decode_instance_record(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->index, record.index);
  EXPECT_EQ(decoded->seed, record.seed);
  EXPECT_EQ(decoded->fingerprint_hash, record.fingerprint_hash);
  expect_bits_equal(decoded->system_mbps, record.system_mbps);
  expect_bits_equal(decoded->jain, record.jain);
  expect_bits_equal(decoded->power_used_w, record.power_used_w);
  expect_bits_equal(decoded->txs_assigned, record.txs_assigned);

  // Wrong tag or size must not decode.
  std::vector<std::uint8_t> wrong_tag = payload;
  wrong_tag[0] = 0x7F;
  EXPECT_FALSE(decode_instance_record(wrong_tag).has_value());
  std::vector<std::uint8_t> short_payload = payload;
  short_payload.pop_back();
  EXPECT_FALSE(decode_instance_record(short_payload).has_value());
}

TEST(CampaignDurable, IdentityCoversSpecAxesAndPerPoint) {
  const auto parsed = parse_campaign(kSmallCampaign);
  ASSERT_TRUE(parsed.ok()) << parsed.error_text();
  const CampaignSpec& campaign = *parsed.campaign;

  const std::uint64_t id = campaign_identity(campaign, 3);
  EXPECT_EQ(campaign_identity(campaign, 3), id);  // stable
  // A --quick run (fewer reps) is a *different* campaign.
  EXPECT_NE(campaign_identity(campaign, 2), id);

  CampaignSpec different_base = campaign;
  different_base.base.seed ^= 1;
  EXPECT_NE(campaign_identity(different_base, 3), id);

  CampaignSpec different_axis = campaign;
  different_axis.axes[0].values.push_back("4");
  EXPECT_NE(campaign_identity(different_axis, 3), id);
}

TEST(CampaignDurable, BackoffIsCappedExponential) {
  EXPECT_EQ(campaign_backoff_ms(0), 100u);
  EXPECT_EQ(campaign_backoff_ms(1), 200u);
  EXPECT_EQ(campaign_backoff_ms(2), 400u);
  EXPECT_EQ(campaign_backoff_ms(5), 3200u);
  EXPECT_EQ(campaign_backoff_ms(6), 5000u);
  EXPECT_EQ(campaign_backoff_ms(63), 5000u);  // capped, no overflow
  for (std::size_t a = 1; a < 16; ++a) {
    EXPECT_GE(campaign_backoff_ms(a), campaign_backoff_ms(a - 1));
  }
}

TEST(CampaignDurable, OpenRefusesOverwriteAndForeignIdentity) {
  const auto parsed = parse_campaign(kSmallCampaign);
  ASSERT_TRUE(parsed.ok()) << parsed.error_text();
  std::vector<CampaignInstance> instances;
  ASSERT_TRUE(expand_campaign(*parsed.campaign, 3, instances).empty());
  const std::uint64_t id = campaign_identity(*parsed.campaign, 3);
  const std::string dir = scratch_dir("refuse");

  {
    auto open = CampaignJournal::open(dir, 0, id, instances.size(),
                                      /*resume=*/false);
    ASSERT_NE(open.campaign_journal, nullptr) << open.error;
    EXPECT_TRUE(open.recovered.empty());
    CampaignRunOptions options;
    options.campaign_journal = open.campaign_journal.get();
    (void)run_campaign(*parsed.campaign, instances, options);
    EXPECT_TRUE(open.campaign_journal->flush());
    EXPECT_EQ(open.campaign_journal->records_written(), instances.size());
  }

  // A journal with finished work must not be silently overwritten.
  auto fresh = CampaignJournal::open(dir, 0, id, instances.size(),
                                     /*resume=*/false);
  EXPECT_EQ(fresh.campaign_journal, nullptr);
  EXPECT_NE(fresh.error.find("resume"), std::string::npos) << fresh.error;

  // A journal from a different campaign must not be resumed.
  auto foreign = CampaignJournal::open(dir, 0, id ^ 1, instances.size(),
                                       /*resume=*/true);
  EXPECT_EQ(foreign.campaign_journal, nullptr);
  EXPECT_NE(foreign.error.find("identity mismatch"), std::string::npos)
      << foreign.error;

  // The honest resume recovers every record.
  auto resume = CampaignJournal::open(dir, 0, id, instances.size(),
                                      /*resume=*/true);
  ASSERT_NE(resume.campaign_journal, nullptr) << resume.error;
  EXPECT_EQ(resume.recovered.size(), instances.size());
  EXPECT_EQ(resume.dropped_bytes, 0u);
}

TEST(CampaignDurable, SummaryFromRecordsMatchesLiveRun) {
  const auto parsed = parse_campaign(kSmallCampaign);
  ASSERT_TRUE(parsed.ok()) << parsed.error_text();
  std::vector<CampaignInstance> instances;
  ASSERT_TRUE(expand_campaign(*parsed.campaign, 3, instances).empty());
  const std::uint64_t id = campaign_identity(*parsed.campaign, 3);
  const std::string dir = scratch_dir("summary");

  CampaignRun live;
  {
    auto open = CampaignJournal::open(dir, 0, id, instances.size(),
                                      /*resume=*/false);
    ASSERT_NE(open.campaign_journal, nullptr) << open.error;
    CampaignRunOptions options;
    options.campaign_journal = open.campaign_journal.get();
    live = run_campaign(*parsed.campaign, instances, options);
    EXPECT_TRUE(open.campaign_journal->flush());
  }

  const CampaignRecovery recovery =
      recover_campaign_dir(dir, id, instances.size());
  ASSERT_TRUE(recovery.errors.empty()) << recovery.errors.front();
  EXPECT_EQ(recovery.journal_files, 1u);
  ASSERT_EQ(recovery.records.size(), instances.size());
  // Records carry the identity the seed contract promises.
  for (std::size_t i = 0; i < recovery.records.size(); ++i) {
    EXPECT_EQ(recovery.records[i].index, i);
    EXPECT_EQ(recovery.records[i].seed, instances[i].seed);
  }

  const CampaignSummary summary =
      summarize_records(*parsed.campaign, 3, recovery.records);
  EXPECT_EQ(summary.campaign_hash, live.campaign_hash);
  EXPECT_EQ(summary.instance_count, instances.size());
  expect_same_points(summary.points, live.points);
}

/// The tentpole acceptance property: SIGKILL the worker at ANY byte of
/// the journal — frame boundaries, mid-record, mid-header — and the
/// resumed campaign reduces to the exact hash and point doubles of an
/// uninterrupted run.
TEST(CampaignDurable, ResumeIsBitIdenticalAtEveryCrashPoint) {
  const auto parsed = parse_campaign(kSmallCampaign);
  ASSERT_TRUE(parsed.ok()) << parsed.error_text();
  std::vector<CampaignInstance> instances;
  ASSERT_TRUE(expand_campaign(*parsed.campaign, 3, instances).empty());
  const std::uint64_t id = campaign_identity(*parsed.campaign, 3);

  const CampaignRun reference = run_campaign(*parsed.campaign, instances);

  // One uninterrupted journaled run provides the byte stream to cut.
  const std::string full_dir = scratch_dir("crash_full");
  {
    auto open = CampaignJournal::open(full_dir, 0, id, instances.size(),
                                      /*resume=*/false);
    ASSERT_NE(open.campaign_journal, nullptr) << open.error;
    CampaignRunOptions options;
    options.campaign_journal = open.campaign_journal.get();
    (void)run_campaign(*parsed.campaign, instances, options);
    ASSERT_TRUE(open.campaign_journal->flush());
  }
  const std::string full = read_bytes(shard_journal_path(full_dir, 0));
  ASSERT_FALSE(full.empty());

  // Crash points: a coarse stride for coverage plus every frame
  // boundary and its neighbours (the off-by-one hot spots).
  std::set<std::size_t> cuts;
  for (std::size_t len = 0; len <= full.size(); len += 13) cuts.insert(len);
  const std::size_t header_frame = 8 + 33;
  const std::size_t record_frame = 8 + (1 + 7 * 8);
  for (std::size_t b = header_frame; b <= full.size(); b += record_frame) {
    cuts.insert(b);
    if (b > 0) cuts.insert(b - 1);
    if (b + 1 <= full.size()) cuts.insert(b + 1);
  }
  cuts.insert(full.size());

  const std::string dir = scratch_dir("crash_cut");
  for (const std::size_t len : cuts) {
    SCOPED_TRACE("crash at byte " + std::to_string(len));
    std::error_code ec;
    fs::remove_all(dir, ec);
    fs::create_directories(dir, ec);
    write_bytes(shard_journal_path(dir, 0), full.substr(0, len));

    auto open = CampaignJournal::open(dir, 0, id, instances.size(),
                                      /*resume=*/true);
    ASSERT_NE(open.campaign_journal, nullptr) << open.error;

    std::set<std::size_t> done;
    for (const InstanceRecord& record : open.recovered) {
      done.insert(static_cast<std::size_t>(record.index));
    }
    std::vector<CampaignInstance> todo;
    for (const CampaignInstance& inst : instances) {
      if (done.count(inst.index) == 0) todo.push_back(inst);
    }
    CampaignRunOptions options;
    options.campaign_journal = open.campaign_journal.get();
    (void)run_campaign(*parsed.campaign, todo, options);
    ASSERT_TRUE(open.campaign_journal->flush());
    open.campaign_journal.reset();

    const CampaignRecovery recovery =
        recover_campaign_dir(dir, id, instances.size());
    ASSERT_TRUE(recovery.errors.empty()) << recovery.errors.front();
    ASSERT_EQ(recovery.records.size(), instances.size());
    const CampaignSummary summary =
        summarize_records(*parsed.campaign, 3, recovery.records);
    EXPECT_EQ(summary.campaign_hash, reference.campaign_hash);
    expect_same_points(summary.points, reference.points);
  }
}

TEST(CampaignDurable, DisjointShardsMergeToTheFullCampaign) {
  const auto parsed = parse_campaign(kSmallCampaign);
  ASSERT_TRUE(parsed.ok()) << parsed.error_text();
  std::vector<CampaignInstance> instances;
  ASSERT_TRUE(expand_campaign(*parsed.campaign, 3, instances).empty());
  const std::uint64_t id = campaign_identity(*parsed.campaign, 3);
  const CampaignRun reference = run_campaign(*parsed.campaign, instances);

  const std::string dir = scratch_dir("shards");
  for (std::size_t shard = 0; shard < 2; ++shard) {
    std::vector<CampaignInstance> mine;
    for (const CampaignInstance& inst : instances) {
      if (inst.index % 2 == shard) mine.push_back(inst);
    }
    auto open = CampaignJournal::open(dir, shard, id, instances.size(),
                                      /*resume=*/false);
    ASSERT_NE(open.campaign_journal, nullptr) << open.error;
    CampaignRunOptions options;
    options.campaign_journal = open.campaign_journal.get();
    (void)run_campaign(*parsed.campaign, mine, options);
    ASSERT_TRUE(open.campaign_journal->flush());
  }

  const CampaignRecovery recovery =
      recover_campaign_dir(dir, id, instances.size());
  ASSERT_TRUE(recovery.errors.empty()) << recovery.errors.front();
  EXPECT_EQ(recovery.journal_files, 2u);
  ASSERT_EQ(recovery.records.size(), instances.size());
  const CampaignSummary summary =
      summarize_records(*parsed.campaign, 3, recovery.records);
  EXPECT_EQ(summary.campaign_hash, reference.campaign_hash);
  expect_same_points(summary.points, reference.points);
}

TEST(CampaignDurable, DuplicatesToleratedConflictsFatal) {
  const auto parsed = parse_campaign(kSmallCampaign);
  ASSERT_TRUE(parsed.ok()) << parsed.error_text();
  std::vector<CampaignInstance> instances;
  ASSERT_TRUE(expand_campaign(*parsed.campaign, 3, instances).empty());
  const std::uint64_t id = campaign_identity(*parsed.campaign, 3);

  // Two shards journal the WHOLE campaign each — the requeued-shard
  // overlap case. Byte-equal duplicates merge cleanly.
  const std::string dir = scratch_dir("dups");
  for (std::size_t shard = 0; shard < 2; ++shard) {
    auto open = CampaignJournal::open(dir, shard, id, instances.size(),
                                      /*resume=*/false);
    ASSERT_NE(open.campaign_journal, nullptr) << open.error;
    CampaignRunOptions options;
    options.campaign_journal = open.campaign_journal.get();
    (void)run_campaign(*parsed.campaign, instances, options);
    ASSERT_TRUE(open.campaign_journal->flush());
  }
  CampaignRecovery recovery = recover_campaign_dir(dir, id, instances.size());
  EXPECT_TRUE(recovery.errors.empty());
  EXPECT_EQ(recovery.records.size(), instances.size());

  // A shard journaling a *different* result under an existing index is
  // corruption (or a mixed-campaign accident) and must be fatal.
  {
    auto open = CampaignJournal::open(dir, 2, id, instances.size(),
                                      /*resume=*/false);
    ASSERT_NE(open.campaign_journal, nullptr) << open.error;
    InstanceResult forged;
    forged.fingerprint = {1.0, 2.0, 3.0};
    forged.system_mbps = 999.0;
    open.campaign_journal->on_result(instances[0], forged);
    ASSERT_TRUE(open.campaign_journal->flush());
  }
  recovery = recover_campaign_dir(dir, id, instances.size());
  ASSERT_FALSE(recovery.errors.empty());
  EXPECT_NE(recovery.errors.front().find("conflicting duplicate"),
            std::string::npos)
      << recovery.errors.front();
}

TEST(Campaign, RejectsSweepPointThatExpandsInvalid) {
  // Each leg is fine syntactically, but mounting at 0.5 m puts the
  // luminaires below the default 0.8 m receiver plane.
  const auto parsed = parse_campaign(
      "[scenario]\nname = t\n[rx]\nplacement = uniform\ncount = 2\n"
      "[sweep]\ngrid.mount_height = 2.8 | 0.5\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error_text().find("sweep point 1"), std::string::npos);
}

}  // namespace
}  // namespace densevlc::scenario
