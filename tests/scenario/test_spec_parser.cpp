// Scenario spec parser: round-trip identity, typed rejection, fuzz.
//
// The contract under test: parse_spec() either returns a validated spec
// or a list of typed errors naming the offending keys — malformed or
// out-of-range values are never silently defaulted — and
// serialize_spec() is a canonical form, so parse(serialize(s))
// reproduces s exactly. The bad-spec corpus under bad_specs/ pins one
// rejection case per file via `; expect-error: <key>` annotations.
#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/rng.hpp"

namespace densevlc::scenario {
namespace {

/// Canonical-form equality: serialize -> parse -> serialize fixpoint.
void expect_round_trip(const ScenarioSpec& spec) {
  const std::string text = serialize_spec(spec);
  const SpecParseResult reparsed = parse_spec(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error_text() << "\n" << text;
  EXPECT_EQ(serialize_spec(*reparsed.spec), text);
}

/// The parse must fail, and some error must name `key`.
void expect_rejected(const std::string& text, const std::string& key) {
  const SpecParseResult result = parse_spec(text);
  ASSERT_FALSE(result.ok()) << "accepted despite bad " << key;
  bool found = false;
  for (const SpecError& e : result.errors) found = found || e.key == key;
  EXPECT_TRUE(found) << "no error names '" << key << "'; got:\n"
                     << result.error_text();
}

/// A minimal valid scenario to mutate in rejection tests.
std::string valid_text(const std::string& extra = {}) {
  return "[scenario]\nname = t\nkind = analytic\n"
         "[rx]\nplacement = uniform\ncount = 2\nmargin = 0.4\n" +
         extra;
}

TEST(SpecParser, SampleScenarioDefaultsRoundTrip) {
  ScenarioSpec spec = spec_defaults(TestbedKind::kSimulation);
  spec.rx_count = 4;
  spec.rx_fixed = {{0.92, 0.92, 0.0},
                   {1.65, 0.65, 0.0},
                   {0.72, 1.93, 0.0},
                   {1.99, 1.69, 0.0}};
  expect_round_trip(spec);
}

TEST(SpecParser, AllSectionsRoundTrip) {
  ScenarioSpec spec = spec_defaults(TestbedKind::kExperimental);
  spec.name = "kitchen-sink";
  spec.kind = EvalKind::kSoak;
  spec.seed = 0xDEADBEEF;
  spec.epochs = 17;
  spec.kappa = 2.25;
  spec.power_budget_w = 0.8;
  spec.bandwidth_mhz = 2.5;
  spec.incremental_probing = true;
  spec.room_width_m = 4.5;
  spec.room_depth_m = 3.25;
  spec.room_height_m = 3.0;
  spec.grid_rows = 5;
  spec.grid_cols = 7;
  spec.grid_pitch_m = 0.4375;
  spec.grid_mount_height_m = 2.5;
  spec.led_bias_ma = 387.5;
  spec.led_max_swing_ma = 775.0;
  spec.led_half_angle_deg = 22.5;
  spec.placement = RxPlacement::kUniform;
  spec.rx_count = 3;
  spec.rx_height_m = 0.75;
  spec.rx_margin_m = 0.5;
  spec.dimming_enabled = true;
  spec.target_lux = 425.0;
  spec.leds_per_tx = 2;
  spec.blockers = {{1.0, 1.5, 0.25, 1.7}, {2.0, 2.0, 0.3, 1.8}};
  spec.faults_enabled = true;
  spec.led_fail_fraction = 0.125;
  spec.fault_time_s = 4.5;
  spec.fault_seed = 0xFA17;
  expect_round_trip(spec);
}

TEST(SpecParser, FuzzRandomSpecsRoundTrip) {
  Rng rng{0x5EED50 + 7};  // arbitrary fixed seed
  for (int iter = 0; iter < 200; ++iter) {
    ScenarioSpec spec = spec_defaults(rng.uniform(0.0, 1.0) < 0.5
                                          ? TestbedKind::kSimulation
                                          : TestbedKind::kExperimental);
    spec.name = "fuzz" + std::to_string(iter);
    spec.kind = rng.uniform(0.0, 1.0) < 0.5 ? EvalKind::kAnalytic
                                            : EvalKind::kSoak;
    spec.seed = static_cast<std::uint64_t>(rng.uniform(0.0, 1e18));
    spec.epochs = 1 + static_cast<std::size_t>(rng.uniform(0.0, 99.0));
    spec.kappa = rng.uniform(0.1, 5.0);
    spec.power_budget_w = rng.uniform(0.1, 3.0);
    spec.bandwidth_mhz = rng.uniform(0.5, 10.0);
    spec.room_width_m = rng.uniform(2.0, 8.0);
    spec.room_depth_m = rng.uniform(2.0, 8.0);
    spec.room_height_m = rng.uniform(2.5, 4.0);
    spec.grid_rows = 1 + static_cast<std::size_t>(rng.uniform(0.0, 7.0));
    spec.grid_cols = 1 + static_cast<std::size_t>(rng.uniform(0.0, 7.0));
    // Pitch small enough for any grid in the smallest room dimension.
    spec.grid_pitch_m = rng.uniform(0.05, 2.0 / 8.0);
    spec.grid_mount_height_m = rng.uniform(1.8, spec.room_height_m);
    spec.led_bias_ma = rng.uniform(100.0, 700.0);
    spec.led_max_swing_ma = rng.uniform(100.0, 1400.0);
    spec.led_half_angle_deg = rng.uniform(5.0, 90.0);
    spec.placement = RxPlacement::kUniform;
    spec.rx_count = 1 + static_cast<std::size_t>(rng.uniform(0.0, 7.0));
    spec.rx_height_m = rng.uniform(0.0, spec.grid_mount_height_m - 0.1);
    spec.rx_margin_m = rng.uniform(0.0, 0.9);
    if (rng.uniform(0.0, 1.0) < 0.3) {
      spec.dimming_enabled = true;
      spec.target_lux = rng.uniform(50.0, 900.0);
      spec.leds_per_tx = 1 + static_cast<std::size_t>(rng.uniform(0.0, 3.0));
    }
    if (rng.uniform(0.0, 1.0) < 0.3) {
      spec.blockers.push_back({rng.uniform(0.0, spec.room_width_m),
                               rng.uniform(0.0, spec.room_depth_m),
                               rng.uniform(0.05, 0.5),
                               rng.uniform(0.5, 2.0)});
    }
    if (spec.kind == EvalKind::kSoak && rng.uniform(0.0, 1.0) < 0.3) {
      spec.faults_enabled = true;
      spec.led_fail_fraction = rng.uniform(0.0, 1.0);
      spec.fault_time_s = rng.uniform(0.0, 20.0);
      spec.fault_seed = static_cast<std::uint64_t>(rng.uniform(0.0, 1e18));
    }
    ASSERT_TRUE(validate_spec(spec).empty());
    expect_round_trip(spec);
  }
}

TEST(SpecParser, RejectsUnknownKey) {
  expect_rejected(valid_text("[grid]\nrowz = 6\n"), "grid.rowz");
}

TEST(SpecParser, RejectsMalformedNumberInsteadOfDefaulting) {
  expect_rejected(valid_text("[grid]\npitch = fast\n"), "grid.pitch");
  expect_rejected(valid_text("[led]\nbias_ma = 45O\n"), "led.bias_ma");
  expect_rejected(valid_text("[system]\nkappa = \n"), "system.kappa");
}

TEST(SpecParser, RejectsOutOfRangeValues) {
  expect_rejected(valid_text("[grid]\nrows = 0\n"), "grid.rows");
  expect_rejected(valid_text("[grid]\nrows = 65\n"), "grid.rows");
  expect_rejected(valid_text("[led]\nhalf_angle_deg = 120\n"),
                  "led.half_angle_deg");
  expect_rejected(valid_text("[scenario]\nepochs = 0\n"), "scenario.epochs");
  expect_rejected(valid_text("[faults]\nled_fail_fraction = 1.5\n"),
                  "faults.led_fail_fraction");
}

TEST(SpecParser, RejectsMalformedBoolAndEnum) {
  expect_rejected(valid_text("[system]\nincremental_probing = maybe\n"),
                  "system.incremental_probing");
  expect_rejected(valid_text("[scenario]\nkind = quantum\n"),
                  "scenario.kind");
  expect_rejected(valid_text("[system]\ntestbed = lab\n"), "system.testbed");
  expect_rejected(valid_text("[rx]\nplacement = grid\n"), "rx.placement");
}

TEST(SpecParser, CrossFieldValidation) {
  // Fixed placement with a coordinate-count mismatch.
  expect_rejected(
      "[scenario]\nname = t\n[rx]\nplacement = fixed\ncount = 2\n"
      "x1 = 1.0\ny1 = 1.0\n",
      "rx.count");
  // Receiver outside the room.
  expect_rejected(
      "[scenario]\nname = t\n[rx]\nplacement = fixed\ncount = 1\n"
      "x1 = 9.0\ny1 = 1.0\n",
      "rx.x1");
  // Uniform placement must not list coordinates.
  expect_rejected(valid_text("[rx]\nx1 = 1.0\ny1 = 1.0\n"), "rx.x1");
  // Margin eats the whole floor.
  expect_rejected(valid_text("[rx]\nmargin = 1.5\n"), "rx.margin");
  // Luminaires above the ceiling.
  expect_rejected(valid_text("[grid]\nmount_height = 3.5\n"),
                  "grid.mount_height");
  // Grid footprint wider than the room.
  expect_rejected(valid_text("[grid]\npitch = 0.7\n"), "grid.pitch");
  // Faults demand a soak.
  expect_rejected(valid_text("[faults]\nled_fail_fraction = 0.1\n"),
                  "faults.led_fail_fraction");
  // Receivers at/above the luminaire plane.
  expect_rejected(valid_text("[rx]\nheight = 2.8\n"), "rx.height");
}

TEST(SpecParser, MissingReceiverCountIsAnError) {
  expect_rejected("[scenario]\nname = t\n", "rx.count");
}

TEST(SpecParser, TestbedRebasesDefaultsRegardlessOfKeyOrder) {
  // system.testbed appears *after* [grid] in map order; the parser must
  // still re-base the defaults before applying any key.
  const auto result = parse_spec(
      "[system]\ntestbed = experimental\n" + valid_text());
  ASSERT_TRUE(result.ok()) << result.error_text();
  EXPECT_DOUBLE_EQ(result.spec->grid_mount_height_m, 2.0);
  EXPECT_DOUBLE_EQ(result.spec->rx_height_m, 0.0);
}

TEST(SpecParser, ApplyOverrideRejectsUnknownAndMalformed) {
  ScenarioSpec spec = spec_defaults(TestbedKind::kSimulation);
  EXPECT_TRUE(apply_override(spec, "grid.rowz", "6").has_value());
  EXPECT_TRUE(apply_override(spec, "grid.rows", "six").has_value());
  EXPECT_FALSE(apply_override(spec, "grid.rows", "6").has_value());
  EXPECT_EQ(spec.grid_rows, 6u);
}

TEST(SpecParser, ErrorsCarryTheOffendingKey) {
  const auto result = parse_spec(valid_text("[grid]\nrows = 0\npitch = x\n"));
  ASSERT_FALSE(result.ok());
  EXPECT_GE(result.errors.size(), 2u);
  for (const SpecError& e : result.errors) {
    EXPECT_FALSE(e.key.empty());
    EXPECT_FALSE(e.message.empty());
  }
}

TEST(SpecParser, BadSpecCorpusRejectsWithAnnotatedKey) {
  namespace fs = std::filesystem;
  const fs::path dir{DVLC_BAD_SPEC_DIR};
  ASSERT_TRUE(fs::exists(dir)) << dir;
  std::size_t cases = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".ini") continue;
    ++cases;
    std::ifstream in{entry.path()};
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    // First line: "; expect-error: <key>".
    const std::string marker = "; expect-error:";
    ASSERT_EQ(text.rfind(marker, 0), 0u)
        << entry.path() << " lacks an expect-error annotation";
    const auto eol = text.find('\n');
    std::string key = text.substr(marker.size(), eol - marker.size());
    key.erase(0, key.find_first_not_of(' '));
    SCOPED_TRACE(entry.path().filename().string());
    expect_rejected(text, key);
  }
  EXPECT_GE(cases, 8u) << "bad-spec corpus went missing";
}

TEST(SpecParser, LoadSpecFileMissingPathIsTypedError) {
  const std::string path = "/nonexistent_dvlc_dir/missing_scenario.ini";
  const SpecParseResult result = load_spec_file(path);
  ASSERT_FALSE(result.ok());
  ASSERT_EQ(result.errors.size(), 1u);
  // The error must carry the offending path, not a generic message.
  EXPECT_EQ(result.errors[0].key, path);
  EXPECT_NE(result.errors[0].message.find("missing or unreadable"),
            std::string::npos)
      << result.error_text();
}

TEST(SpecParser, LoadSpecFileRoundTripsSerializedSpec) {
  const SpecParseResult parsed = parse_spec(valid_text());
  ASSERT_TRUE(parsed.ok()) << parsed.error_text();
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "dvlc_load_spec_file.ini";
  {
    std::ofstream out{path};
    out << serialize_spec(*parsed.spec);
    ASSERT_TRUE(out.good());
  }
  const SpecParseResult result = load_spec_file(path.string());
  ASSERT_TRUE(result.ok()) << result.error_text();
  EXPECT_EQ(serialize_spec(*result.spec), serialize_spec(*parsed.spec));
}

}  // namespace
}  // namespace densevlc::scenario
