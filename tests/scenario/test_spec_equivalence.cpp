// Differential harness: committed spec files vs hand-wired C++.
//
// Each test parses one of the committed campaign files under scenarios/,
// expands an instance, runs it through the scenario compiler — and then
// reproduces the same instance with the legacy hand-wired construction
// (the exact calls the pre-spec bench/ext_* binaries made, seeded with
// the instance's derived stream seed). The per-RX throughput
// fingerprints must agree bit for bit: the spec path is a refactoring of
// the hand wiring, not an approximation of it.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "alloc/assignment.hpp"
#include "channel/blockage.hpp"
#include "common/rng.hpp"
#include "core/system.hpp"
#include "core/testbed.hpp"
#include "illum/dimming.hpp"
#include "scenario/campaign.hpp"
#include "scenario/scenarios.hpp"

namespace densevlc::scenario {
namespace {

CampaignSpec load_campaign(const std::string& name) {
  const std::string path = std::string{DVLC_SCENARIO_DIR} + "/" + name;
  std::ifstream in{path};
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const CampaignParseResult parsed = parse_campaign(buffer.str());
  EXPECT_TRUE(parsed.ok()) << parsed.error_text();
  return *parsed.campaign;
}

/// The expanded instance at (point, rep), straight from the spec.
CampaignInstance instance_at(const CampaignSpec& campaign, std::size_t point,
                             std::size_t rep) {
  std::vector<CampaignInstance> instances;
  const auto errors =
      expand_campaign(campaign, campaign.instances_per_point, instances);
  EXPECT_TRUE(errors.empty());
  const std::size_t index = point * campaign.instances_per_point + rep;
  EXPECT_LT(index, instances.size());
  return instances[index];
}

/// Per-RX Shannon throughputs of the legacy analytic wiring.
std::vector<double> legacy_analytic(const core::Testbed& tb,
                                    const std::vector<geom::Vec3>& rx_xy,
                                    double kappa, double budget_w,
                                    const alloc::AssignmentOptions& opts,
                                    const channel::LinkBudget& budget) {
  const auto h = tb.channel_for(rx_xy);
  const auto res =
      alloc::heuristic_allocate(h, kappa, Watts{budget_w}, budget, opts);
  return channel::throughput_bps(h, res.allocation, budget);
}

TEST(SpecEquivalence, DensityInstanceMatchesHandWiring) {
  const CampaignSpec campaign = load_campaign("ext_density.ini");
  // Point 11: grid leg 2 (8x8 @ 0.375 m) x rx leg 3 (8 receivers).
  const CampaignInstance inst = instance_at(campaign, 11, 13);
  ASSERT_EQ(inst.spec.grid_rows, 8u);
  ASSERT_EQ(inst.spec.rx_count, 8u);
  const InstanceResult spec_run =
      run_instance(compile(inst.spec), inst.seed);

  // Legacy wiring of bench/ext_density, at the instance's stream seed.
  core::Testbed tb = core::make_simulation_testbed();
  tb.grid = geom::GridSpec{8, 8, 0.375, 2.8};
  Rng rng{Rng::derive_stream_seed(inst.seed, kPlacementStream)};
  std::vector<geom::Vec3> rx_xy;
  for (std::size_t k = 0; k < 8; ++k) {
    const double x = rng.uniform(0.4, 2.6);
    const double y = rng.uniform(0.4, 2.6);
    rx_xy.push_back({x, y, 0.0});
  }
  const auto tput = legacy_analytic(tb, rx_xy, 1.3, 1.2,
                                    alloc::AssignmentOptions{}, tb.budget);
  EXPECT_EQ(spec_run.fingerprint, tput);
}

TEST(SpecEquivalence, DensitySeedsFollowTheStreamContract) {
  const CampaignSpec campaign = load_campaign("ext_density.ini");
  const CampaignInstance inst = instance_at(campaign, 3, 5);
  EXPECT_EQ(inst.seed,
            Rng::derive_stream_seed(campaign.base.seed,
                                    3 * campaign.instances_per_point + 5));
}

TEST(SpecEquivalence, DimmingInstanceMatchesHandWiring) {
  const CampaignSpec campaign = load_campaign("ext_dimming.ini");
  // Point 2: illum.target_lux = 300.
  const CampaignInstance inst = instance_at(campaign, 2, 0);
  ASSERT_TRUE(inst.spec.dimming_enabled);
  ASSERT_DOUBLE_EQ(inst.spec.target_lux, 300.0);
  const InstanceResult spec_run =
      run_instance(compile(inst.spec), inst.seed);

  // Legacy wiring of bench/ext_dimming.
  const auto tb = core::make_simulation_testbed();
  const auto rx_xy = fig7_rx_positions();
  illum::LuminaireDesign design;
  design.target_lux = 300.0;
  const auto plan = plan_luminaires(tb.room, tb.tx_poses(), tb.emitter,
                                    tb.led.electrical(), design);
  const optics::LedModel led{tb.led.electrical(),
                             {plan.bias_a, plan.max_swing_a}};
  const auto budget = channel::LinkBudget::from_led(
      led, AmperesPerWatt{0.4}, AmpsSquaredPerHertz{7.02e-23}, Hertz{1e6});
  alloc::AssignmentOptions opts;
  opts.max_swing_a = plan.max_swing_a;
  const auto tput = legacy_analytic(tb, rx_xy, 1.3, 0.6, opts, budget);
  EXPECT_EQ(spec_run.fingerprint, tput);
}

TEST(SpecEquivalence, BlockageBaseSpecMatchesHandWiring) {
  const CampaignSpec campaign = load_campaign("ext_blockage.ini");
  const ScenarioSpec& spec = campaign.base;
  ASSERT_EQ(spec.blockers.size(), 1u);
  const InstanceResult spec_run = run_instance(compile(spec), spec.seed);

  // Legacy wiring of bench/ext_blockage's on-service case.
  const auto tb = core::make_experimental_testbed();
  const auto rx_xy = fig7_rx_positions();
  const std::vector<channel::CylinderBlocker> person{{1.07, 0.92, 0.25, 1.7}};
  auto h = tb.channel_for(rx_xy);
  h = channel::apply_blockage(h, tb.tx_poses(), tb.rx_poses(rx_xy), person);
  const auto res = alloc::heuristic_allocate(
      h, 1.3, Watts{1.2}, tb.budget, alloc::AssignmentOptions{});
  const auto tput = channel::throughput_bps(h, res.allocation, tb.budget);
  EXPECT_EQ(spec_run.fingerprint, tput);
}

TEST(SpecEquivalence, FaultSoakEpochFingerprintsMatchHandWiring) {
  const CampaignSpec campaign = load_campaign("ext_faults.ini");
  // Point 1: led_fail_fraction = 0.1.
  const CampaignInstance inst = instance_at(campaign, 1, 0);
  ASSERT_TRUE(inst.spec.faults_enabled);
  ASSERT_DOUBLE_EQ(inst.spec.led_fail_fraction, 0.1);
  const InstanceResult spec_run =
      run_instance(compile(inst.spec), inst.seed);

  // Legacy wiring of bench/ext_faults::run_soak (quick mode: 10 epochs,
  // failure at t = 3.5 s), seeded with the instance's stream seed.
  core::SystemConfig cfg;
  cfg.testbed = core::make_experimental_testbed();
  cfg.power_budget_w = 1.2;
  cfg.seed = inst.seed;
  cfg.faults =
      chaos_schedule(36, 0.1, 3.5, cfg.mac.epoch_period_s, 0xFA17);
  auto system =
      core::DenseVlcSystem::with_static_rxs(cfg, fig7_rx_positions());
  std::vector<double> fingerprint;
  std::vector<double> held_mbps;
  std::vector<double> decided_mbps;
  for (std::size_t e = 0; e < 10; ++e) {
    const double t = static_cast<double>(e) * cfg.mac.epoch_period_s;
    const auto held =
        system.controller().expected_throughput(system.faulted_channel(t));
    double held_sum = 0.0;
    for (double x : held) held_sum += x;
    held_mbps.push_back(held_sum / 1e6);
    const auto epoch = system.run_epoch_analytic(t);
    double post_sum = 0.0;
    for (double x : epoch.throughput_bps) {
      post_sum += x;
      fingerprint.push_back(x);
    }
    decided_mbps.push_back(post_sum / 1e6);
  }

  EXPECT_EQ(spec_run.fingerprint, fingerprint);
  EXPECT_EQ(spec_run.epoch_held_mbps, held_mbps);
  EXPECT_EQ(spec_run.epoch_decided_mbps, decided_mbps);
  EXPECT_EQ(spec_run.watchdog_holds, system.controller().watchdog_holds());
}

TEST(SpecEquivalence, DefaultSpecCompilesToSimulationTestbed) {
  ScenarioSpec spec = spec_defaults(TestbedKind::kSimulation);
  spec.rx_count = 4;
  spec.rx_fixed = fig7_rx_positions();
  const CompiledScenario compiled = compile(spec);
  const core::Testbed reference = core::make_simulation_testbed();
  const auto& tb = compiled.system.testbed;
  EXPECT_EQ(tb.grid.rows, reference.grid.rows);
  EXPECT_EQ(tb.grid.cols, reference.grid.cols);
  EXPECT_EQ(tb.grid.pitch, reference.grid.pitch);
  EXPECT_EQ(tb.grid.mount_height_m, reference.grid.mount_height_m);
  EXPECT_EQ(tb.rx_height_m, reference.rx_height_m);
  EXPECT_EQ(tb.emitter.half_power_semi_angle_rad,
            reference.emitter.half_power_semi_angle_rad);
  EXPECT_EQ(tb.led.operating_point().bias_current_a,
            reference.led.operating_point().bias_current_a);
  EXPECT_EQ(tb.led.operating_point().max_swing_current_a,
            reference.led.operating_point().max_swing_current_a);
  EXPECT_EQ(tb.budget.bandwidth_hz, reference.budget.bandwidth_hz);
  EXPECT_EQ(tb.budget.noise_psd_a2_per_hz,
            reference.budget.noise_psd_a2_per_hz);
}

}  // namespace
}  // namespace densevlc::scenario
