// Tests for the deterministic fault-injection schedule.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <set>

namespace densevlc::fault {
namespace {

FaultEvent make_event(FaultKind kind, double t0, double t1,
                      std::size_t target = 0, double magnitude = 1.0) {
  FaultEvent e;
  e.kind = kind;
  e.t_start_s = t0;
  e.t_end_s = t1;
  e.target = target;
  e.magnitude = magnitude;
  return e;
}

TEST(FaultSchedule, EmptyScheduleIsTransparent) {
  const FaultSchedule s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.tx_dead(0, 0.0));
  EXPECT_DOUBLE_EQ(s.tx_output_scale(0, 0.0), 1.0);
  EXPECT_FALSE(s.rx_down(0, 0.0));
  EXPECT_FALSE(s.reports_blocked(0.0));
  EXPECT_FALSE(s.sync_pilot_lost(0.0));
  EXPECT_FALSE(s.epoch_overrun(0.0));
  EXPECT_EQ(s.dead_tx_count(0.0), 0u);
}

TEST(FaultSchedule, WindowIsHalfOpen) {
  FaultSchedule s;
  s.add(make_event(FaultKind::kLedBurnout, 2.0, 5.0, 7));
  EXPECT_FALSE(s.tx_dead(7, 1.999));
  EXPECT_TRUE(s.tx_dead(7, 2.0));   // start inclusive
  EXPECT_TRUE(s.tx_dead(7, 4.999));
  EXPECT_FALSE(s.tx_dead(7, 5.0));  // end exclusive
  EXPECT_FALSE(s.tx_dead(6, 3.0));  // wrong target
}

TEST(FaultSchedule, PermanentBurnoutNeverEnds) {
  FaultSchedule s;
  FaultEvent e;
  e.kind = FaultKind::kLedBurnout;
  e.t_start_s = 1.0;
  e.target = 3;  // default t_end_s = infinity
  s.add(e);
  EXPECT_TRUE(s.tx_dead(3, 1e9));
  EXPECT_DOUBLE_EQ(s.tx_output_scale(3, 1e9), 0.0);
}

TEST(FaultSchedule, SaturationCapsOutputScale) {
  FaultSchedule s;
  s.add(make_event(FaultKind::kDriverSaturation, 0.0, 10.0, 2, 0.4));
  EXPECT_DOUBLE_EQ(s.tx_output_scale(2, 5.0), 0.4);
  EXPECT_DOUBLE_EQ(s.tx_output_scale(2, 10.0), 1.0);  // window closed
  EXPECT_FALSE(s.tx_dead(2, 5.0));  // saturated, not dead
}

TEST(FaultSchedule, FlickerIsDeterministicAndBounded) {
  FaultSchedule s;
  s.add(make_event(FaultKind::kLedFlicker, 0.0, 100.0, 4, 0.5));
  const double first = s.tx_output_scale(4, 3.25);
  // Same (tx, time) query always hashes to the same jitter.
  EXPECT_DOUBLE_EQ(s.tx_output_scale(4, 3.25), first);
  // Depth 0.5 keeps the output within [0.5, 1].
  bool varies = false;
  double prev = first;
  for (int i = 0; i < 64; ++i) {
    const double scale = s.tx_output_scale(4, 0.1 * i);
    EXPECT_GE(scale, 0.5);
    EXPECT_LE(scale, 1.0);
    varies = varies || scale != prev;
    prev = scale;
  }
  EXPECT_TRUE(varies);  // it must actually flicker
}

TEST(FaultSchedule, GlobalKindsIgnoreTarget) {
  FaultSchedule s;
  s.add(make_event(FaultKind::kReportLossBurst, 1.0, 2.0, 99));
  s.add(make_event(FaultKind::kSyncPilotLoss, 3.0, 4.0));
  s.add(make_event(FaultKind::kEpochOverrun, 5.0, 6.0));
  EXPECT_TRUE(s.reports_blocked(1.5));
  EXPECT_FALSE(s.reports_blocked(2.5));
  EXPECT_TRUE(s.sync_pilot_lost(3.5));
  EXPECT_TRUE(s.epoch_overrun(5.5));
  EXPECT_FALSE(s.epoch_overrun(4.5));
}

TEST(FaultSchedule, RxDropoutTracksTarget) {
  FaultSchedule s;
  s.add(make_event(FaultKind::kRxDropout, 0.0, 2.0, 1));
  EXPECT_TRUE(s.rx_down(1, 1.0));
  EXPECT_FALSE(s.rx_down(0, 1.0));
  EXPECT_FALSE(s.rx_down(1, 2.0));
}

TEST(FaultSchedule, DeadTxCountDeduplicatesTargets) {
  FaultSchedule s;
  s.add(make_event(FaultKind::kLedBurnout, 0.0, 10.0, 5));
  s.add(make_event(FaultKind::kLedBurnout, 1.0, 10.0, 5));  // same TX again
  s.add(make_event(FaultKind::kLedBurnout, 1.0, 10.0, 6));
  EXPECT_EQ(s.dead_tx_count(2.0), 2u);
  EXPECT_EQ(s.dead_tx_count(0.5), 1u);
}

TEST(FaultSchedule, RandomBurnoutsAreSeededAndDistinct) {
  const auto a = FaultSchedule::random_led_burnouts(36, 8, 3.0, 0xFA17);
  const auto b = FaultSchedule::random_led_burnouts(36, 8, 3.0, 0xFA17);
  const auto c = FaultSchedule::random_led_burnouts(36, 8, 3.0, 0xFA18);
  ASSERT_EQ(a.size(), 8u);
  std::set<std::size_t> targets_a, targets_c;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, FaultKind::kLedBurnout);
    EXPECT_EQ(a.events()[i].target, b.events()[i].target);  // same seed
    EXPECT_DOUBLE_EQ(a.events()[i].t_start_s, 3.0);
    targets_a.insert(a.events()[i].target);
    targets_c.insert(c.events()[i].target);
    EXPECT_LT(a.events()[i].target, 36u);
  }
  EXPECT_EQ(targets_a.size(), 8u);  // no TX burnt twice
  EXPECT_EQ(a.dead_tx_count(4.0), 8u);
  // A different seed must (with these values) pick a different set.
  EXPECT_NE(targets_a, targets_c);
}

TEST(FaultSchedule, ToStringCoversAllKinds) {
  EXPECT_STREQ(to_string(FaultKind::kLedBurnout), "led_burnout");
  EXPECT_STREQ(to_string(FaultKind::kLedFlicker), "led_flicker");
  EXPECT_STREQ(to_string(FaultKind::kDriverSaturation), "driver_saturation");
  EXPECT_STREQ(to_string(FaultKind::kRxDropout), "rx_dropout");
  EXPECT_STREQ(to_string(FaultKind::kReportLossBurst), "report_loss_burst");
  EXPECT_STREQ(to_string(FaultKind::kSyncPilotLoss), "sync_pilot_loss");
  EXPECT_STREQ(to_string(FaultKind::kEpochOverrun), "epoch_overrun");
  EXPECT_STREQ(to_string(FaultKind::kWorkerCrash), "worker_crash");
}

TEST(FaultSchedule, WorkerCrashAfterReturnsFirstCrashTarget) {
  FaultSchedule s;
  EXPECT_FALSE(s.worker_crash_after().has_value());
  s.add(make_event(FaultKind::kLedBurnout, 0.0, 10.0, 5));
  EXPECT_FALSE(s.worker_crash_after().has_value());
  // The target of a kWorkerCrash event is an instance *count*, not a TX.
  s.add(make_event(FaultKind::kWorkerCrash, 0.0, 0.0, 7));
  s.add(make_event(FaultKind::kWorkerCrash, 0.0, 0.0, 3));
  ASSERT_TRUE(s.worker_crash_after().has_value());
  EXPECT_EQ(*s.worker_crash_after(), 7u);
}

}  // namespace
}  // namespace densevlc::fault
