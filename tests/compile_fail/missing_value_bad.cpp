// Must NOT compile: a Quantity does not implicitly decay to double. The
// .value() escape hatch is explicit so every exit from the typed world is
// grep-able (and lintable).
#include "common/quantity.hpp"

namespace densevlc {

double misuse() {
  const Watts p{2.0};
  double raw = p;  // needs p.value()
  return raw;
}

}  // namespace densevlc
