// Corrected twin of bps_for_hz_bad.cpp: the front-end takes bandwidth in
// hertz; bit/s / Hz is spectral efficiency in bits, a separate quantity.
#include <type_traits>

#include "common/quantity.hpp"

namespace densevlc {

Amperes noise_sigma(Hertz bandwidth) {
  return Amperes{1e-9} * (bandwidth * Seconds{1.0});
}

Amperes correct() { return noise_sigma(Hertz{2e6}); }

// bit/s over Hz derives bits per channel use — still typed, never double.
static_assert(
    std::is_same_v<decltype(BitsPerSecond{} / Hertz{}), Bits>,
    "spectral efficiency carries the data axis");

}  // namespace densevlc
