// Must NOT compile: A * ohm is volts, not watts. Eq. 10's communication
// power is r * (Isw/2)^2 — dropping one current factor used to be a silent
// numeric bug; now the derived dimension refuses to convert.
#include "common/quantity.hpp"

namespace densevlc {

Watts misuse() {
  const Amperes half_swing{0.45};
  const Ohms r{0.2188};
  return half_swing * r;  // V, not W
}

}  // namespace densevlc
