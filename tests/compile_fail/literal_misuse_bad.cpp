// Must NOT compile: a unit literal carries its dimension — 450.0_mA is a
// current and cannot initialize a power, and a bare double cannot
// implicitly become a Seconds.
#include "common/quantity.hpp"

namespace densevlc {

using namespace literals;

Watts misuse() {
  Seconds dwell = 0.05;      // bare double: construction is explicit
  (void)dwell;
  return Watts{} + 450.0_mA; // mA literal is Amperes, not Watts
}

}  // namespace densevlc
