// Must NOT compile: illuminance (lux) passed where a power budget (watts)
// is expected — the exact transposition the Quantity layer exists to stop
// (paper Sec. 3 mixes both in the joint illumination/communication budget).
#include "common/quantity.hpp"

namespace densevlc {

Watts clamp_budget(Watts requested) { return requested; }

Watts misuse() { return clamp_budget(Lux{300.0}); }

}  // namespace densevlc
