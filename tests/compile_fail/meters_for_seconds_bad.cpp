// Must NOT compile: a distance is not a duration. GaussMarkovFading::step
// takes Seconds; handing it the receiver height used to be a plausible
// argument transposition.
#include "common/quantity.hpp"

namespace densevlc {

Seconds advance(Seconds dt) { return dt; }

Seconds misuse() { return advance(Meters{0.8}); }

}  // namespace densevlc
