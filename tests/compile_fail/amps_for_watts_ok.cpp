// Corrected twin of amps_for_watts_bad.cpp: A^2 * ohm derives watts.
#include "common/quantity.hpp"

namespace densevlc {

Watts correct() {
  const Amperes half_swing{0.45};
  const Ohms r{0.2188};
  return half_swing * half_swing * r;  // Eq. 10: P_C = r * (Isw/2)^2
}

}  // namespace densevlc
