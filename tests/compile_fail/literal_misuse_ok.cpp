// Corrected twin of literal_misuse_bad.cpp: each literal feeds its own
// dimension.
#include "common/quantity.hpp"

namespace densevlc {

using namespace literals;

Watts correct() {
  Seconds dwell = 0.05_s;
  (void)dwell;
  Amperes bias = 450.0_mA;
  (void)bias;
  return Watts{} + 2.0_W;
}

}  // namespace densevlc
