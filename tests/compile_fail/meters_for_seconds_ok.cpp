// Corrected twin of meters_for_seconds_bad.cpp.
#include "common/quantity.hpp"

namespace densevlc {

Seconds advance(Seconds dt) { return dt; }

Seconds correct() { return advance(Seconds{0.01}); }

}  // namespace densevlc
