// Corrected twin of missing_value_bad.cpp: explicit .value() unwrap.
#include "common/quantity.hpp"

namespace densevlc {

double correct() {
  const Watts p{2.0};
  double raw = p.value();
  return raw;
}

}  // namespace densevlc
