// Must NOT compile: throughput (bit/s) is not bandwidth (Hz). The data
// axis keeps them distinct even though both are "per second".
#include "common/quantity.hpp"

namespace densevlc {

Amperes noise_sigma(Hertz bandwidth) {
  return Amperes{1e-9} * (bandwidth * Seconds{1.0});
}

Amperes misuse() { return noise_sigma(BitsPerSecond{2e6}); }

}  // namespace densevlc
