// Corrected twin of lux_for_watts_bad.cpp: the budget is given in watts.
#include "common/quantity.hpp"

namespace densevlc {

Watts clamp_budget(Watts requested) { return requested; }

Watts correct() { return clamp_budget(Watts{2.0}); }

}  // namespace densevlc
