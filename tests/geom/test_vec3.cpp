// Tests for the 3-D vector algebra.
#include "geom/vec3.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace densevlc::geom {
namespace {

TEST(Vec3, ArithmeticBasics) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{4.0, 5.0, 6.0};
  EXPECT_EQ(a + b, (Vec3{5.0, 7.0, 9.0}));
  EXPECT_EQ(b - a, (Vec3{3.0, 3.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec3{2.0, 4.0, 6.0}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(b / 2.0, (Vec3{2.0, 2.5, 3.0}));
}

TEST(Vec3, DotAndNorm) {
  const Vec3 a{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(a.dot(a), 25.0);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 25.0);
}

TEST(Vec3, NormalizedHasUnitLength) {
  const Vec3 a{1.0, 2.0, -2.0};
  EXPECT_NEAR(a.normalized().norm(), 1.0, 1e-15);
}

TEST(Vec3, CrossProductOrthogonal) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  EXPECT_EQ(x.cross(y), (Vec3{0.0, 0.0, 1.0}));
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-2.0, 0.5, 4.0};
  const Vec3 c = a.cross(b);
  EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
  EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
}

TEST(Vec3, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0, 0}, {3, 4, 0}), 5.0);
}

TEST(Pose, CeilingFacesDown) {
  const Pose p = ceiling_pose(1.0, 2.0, 2.8);
  EXPECT_EQ(p.position, (Vec3{1.0, 2.0, 2.8}));
  EXPECT_EQ(p.normal, (Vec3{0.0, 0.0, -1.0}));
}

TEST(Pose, FloorFacesUp) {
  const Pose p = floor_pose(0.5, 0.5, 0.8);
  EXPECT_EQ(p.normal, (Vec3{0.0, 0.0, 1.0}));
}

}  // namespace
}  // namespace densevlc::geom
