// Tests for room geometry and ceiling grids.
#include "geom/grid.hpp"

#include <gtest/gtest.h>

namespace densevlc::geom {
namespace {

TEST(Grid, PaperLayoutIsCenteredSixBySix) {
  const Room room{3.0, 3.0, 2.8};
  const GridSpec spec{6, 6, 0.5, 2.8};
  const auto poses = make_ceiling_grid(room, spec);
  ASSERT_EQ(poses.size(), 36u);
  // TX1 (index 0) sits at (0.25, 0.25); TX36 at (2.75, 2.75).
  EXPECT_NEAR(poses[0].position.x, 0.25, 1e-12);
  EXPECT_NEAR(poses[0].position.y, 0.25, 1e-12);
  EXPECT_NEAR(poses[35].position.x, 2.75, 1e-12);
  EXPECT_NEAR(poses[35].position.y, 2.75, 1e-12);
}

TEST(Grid, IndexAdvancesAlongXFirst) {
  const Room room{3.0, 3.0, 2.8};
  const GridSpec spec{6, 6, 0.5, 2.8};
  const auto poses = make_ceiling_grid(room, spec);
  // TX2 is 0.5 m along x from TX1; TX7 is 0.5 m along y.
  EXPECT_NEAR(poses[1].position.x - poses[0].position.x, 0.5, 1e-12);
  EXPECT_NEAR(poses[1].position.y, poses[0].position.y, 1e-12);
  EXPECT_NEAR(poses[6].position.y - poses[0].position.y, 0.5, 1e-12);
  EXPECT_NEAR(poses[6].position.x, poses[0].position.x, 1e-12);
}

TEST(Grid, AllPosesFaceDownAtMountHeight) {
  const Room room{3.0, 3.0, 2.8};
  const GridSpec spec{4, 4, 0.6, 2.0};
  for (const auto& p : make_ceiling_grid(room, spec)) {
    EXPECT_DOUBLE_EQ(p.position.z, 2.0);
    EXPECT_DOUBLE_EQ(p.normal.z, -1.0);
  }
}

TEST(Grid, RectangularGridCount) {
  const Room room{4.0, 2.0, 3.0};
  const GridSpec spec{2, 5, 0.4, 3.0};
  EXPECT_EQ(make_ceiling_grid(room, spec).size(), 10u);
  EXPECT_EQ(spec.count(), 10u);
}

TEST(Room, ContainsXy) {
  const Room room{3.0, 3.0, 2.8};
  EXPECT_TRUE(room.contains_xy(0.0, 0.0));
  EXPECT_TRUE(room.contains_xy(3.0, 3.0));
  EXPECT_FALSE(room.contains_xy(-0.1, 1.0));
  EXPECT_FALSE(room.contains_xy(1.0, 3.1));
}

TEST(Raster, CoversCornersInclusive) {
  const auto pts = make_raster(0.0, 1.0, 0.0, 2.0, 0.8, 3);
  ASSERT_EQ(pts.size(), 9u);
  EXPECT_EQ(pts.front(), (Vec3{0.0, 0.0, 0.8}));
  EXPECT_EQ(pts.back(), (Vec3{1.0, 2.0, 0.8}));
  EXPECT_EQ(pts[4], (Vec3{0.5, 1.0, 0.8}));  // center
}

TEST(Raster, ZeroAndOnePoints) {
  EXPECT_TRUE(make_raster(0, 1, 0, 1, 0, 0).empty());
  const auto one = make_raster(0.0, 1.0, 0.0, 1.0, 0.5, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], (Vec3{0.0, 0.0, 0.5}));
}

}  // namespace
}  // namespace densevlc::geom
