// Tests for the receiver mobility models.
#include "geom/mobility.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace densevlc::geom {
namespace {

TEST(Static, NeverMoves) {
  const StaticMobility m{{1.0, 2.0, 0.0}};
  EXPECT_EQ(m.position(0.0), (geom::Vec3{1.0, 2.0, 0.0}));
  EXPECT_EQ(m.position(100.0), (geom::Vec3{1.0, 2.0, 0.0}));
}

TEST(Waypoint, RejectsEmptyAndNonMonotonic) {
  EXPECT_THROW(WaypointMobility{std::vector<WaypointMobility::Waypoint>{}},
               std::invalid_argument);
  EXPECT_THROW(
      WaypointMobility({{1.0, {0, 0, 0}}, {1.0, {1, 1, 0}}}),
      std::invalid_argument);
}

TEST(Waypoint, InterpolatesLinearly) {
  const WaypointMobility m({{0.0, {0.0, 0.0, 0.0}}, {10.0, {2.0, 4.0, 0.0}}});
  const auto mid = m.position(5.0);
  EXPECT_NEAR(mid.x, 1.0, 1e-12);
  EXPECT_NEAR(mid.y, 2.0, 1e-12);
}

TEST(Waypoint, HoldsAtEnds) {
  const WaypointMobility m({{1.0, {1.0, 1.0, 0.0}}, {2.0, {3.0, 3.0, 0.0}}});
  EXPECT_EQ(m.position(0.0), (geom::Vec3{1.0, 1.0, 0.0}));
  EXPECT_EQ(m.position(99.0), (geom::Vec3{3.0, 3.0, 0.0}));
}

TEST(Waypoint, MultiSegmentPath) {
  const WaypointMobility m({{0.0, {0.0, 0.0, 0.0}},
                            {1.0, {1.0, 0.0, 0.0}},
                            {2.0, {1.0, 1.0, 0.0}}});
  EXPECT_NEAR(m.position(0.5).x, 0.5, 1e-12);
  EXPECT_NEAR(m.position(1.5).y, 0.5, 1e-12);
  EXPECT_NEAR(m.position(1.5).x, 1.0, 1e-12);
}

TEST(RandomWalk, StaysInRoom) {
  const geom::Room room{3.0, 3.0, 2.8};
  const RandomWalkMobility m{{1.5, 1.5, 0.0}, 0.5, 2.0, room, 60.0, 99};
  for (double t = 0.0; t <= 60.0; t += 0.37) {
    const auto p = m.position(t);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, room.width);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, room.depth);
  }
}

TEST(RandomWalk, ActuallyMoves) {
  const geom::Room room{3.0, 3.0, 2.8};
  const RandomWalkMobility m{{1.5, 1.5, 0.0}, 0.5, 2.0, room, 10.0, 7};
  const auto start = m.position(0.0);
  const auto later = m.position(5.0);
  EXPECT_GT(geom::distance(start, later), 0.1);
}

TEST(RandomWalk, SpeedBoundsDisplacement) {
  const geom::Room room{30.0, 30.0, 2.8};  // huge room: no wall bounces
  const double speed = 0.5;
  const RandomWalkMobility m{{15.0, 15.0, 0.0}, speed, 5.0, room, 20.0, 3};
  for (double t = 0.0; t < 19.0; t += 1.0) {
    const double d = geom::distance(m.position(t), m.position(t + 1.0));
    EXPECT_LE(d, speed * 1.0 + 0.02);
  }
}

TEST(RandomWalk, DeterministicGivenSeed) {
  const geom::Room room{3.0, 3.0, 2.8};
  const RandomWalkMobility a{{1.0, 1.0, 0.0}, 0.4, 1.5, room, 10.0, 42};
  const RandomWalkMobility b{{1.0, 1.0, 0.0}, 0.4, 1.5, room, 10.0, 42};
  for (double t = 0.0; t < 10.0; t += 0.9) {
    EXPECT_EQ(a.position(t), b.position(t));
  }
}

TEST(RandomWalk, ClampsPastDuration) {
  const geom::Room room{3.0, 3.0, 2.8};
  const RandomWalkMobility m{{1.0, 1.0, 0.0}, 0.4, 1.5, room, 5.0, 1};
  EXPECT_EQ(m.position(5.0), m.position(1000.0));
  EXPECT_EQ(m.position(-1.0), m.position(0.0));
}

}  // namespace
}  // namespace densevlc::geom
