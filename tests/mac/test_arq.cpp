// Tests for the stop-and-wait ARQ layer.
#include "mac/arq.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace densevlc::mac {
namespace {

TEST(Segment, RoundTrip) {
  const Segment s{7, {1, 2, 3}};
  const auto decoded = decode_segment(encode_segment(s));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, s);
}

TEST(Segment, EmptyPayloadRejected) {
  EXPECT_FALSE(decode_segment(std::vector<std::uint8_t>{}).has_value());
}

TEST(ArqTx, IdleWhenEmpty) {
  ArqTransmitter tx;
  EXPECT_FALSE(tx.next_segment().has_value());
  EXPECT_EQ(tx.backlog(), 0u);
}

TEST(ArqTx, HappyPathDelivers) {
  ArqTransmitter tx;
  tx.enqueue({10, 11});
  tx.enqueue({12});
  const auto first = tx.next_segment();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->seq, 0);
  EXPECT_TRUE(tx.on_ack(first->seq));
  const auto second = tx.next_segment();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->seq, 1);
  EXPECT_EQ(second->data, (std::vector<std::uint8_t>{12}));
  tx.on_ack(second->seq);
  EXPECT_EQ(tx.delivered(), 2u);
  EXPECT_EQ(tx.dropped(), 0u);
}

TEST(ArqTx, RetransmitsSameSegmentUntilAck) {
  ArqTransmitter tx{4};
  tx.enqueue({42});
  const auto a = tx.next_segment();
  tx.on_timeout();
  const auto b = tx.next_segment();
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->seq, b->seq);
  EXPECT_EQ(a->data, b->data);
  EXPECT_EQ(tx.transmissions(), 2u);
}

TEST(ArqTx, DropsAfterMaxAttempts) {
  ArqTransmitter tx{3};
  tx.enqueue({1});
  for (int attempt = 0; attempt < 3; ++attempt) {
    ASSERT_TRUE(tx.next_segment().has_value());
    tx.on_timeout();
  }
  EXPECT_EQ(tx.dropped(), 1u);
  EXPECT_FALSE(tx.next_segment().has_value());
}

TEST(ArqTx, GiveUpNotificationCarriesPayload) {
  ArqTransmitter tx{2};
  tx.enqueue({0xAB, 0xCD});
  ASSERT_TRUE(tx.next_segment().has_value());
  // Retries remain after the first timeout: no give-up yet.
  EXPECT_FALSE(tx.on_timeout().has_value());
  ASSERT_TRUE(tx.next_segment().has_value());
  const auto give_up = tx.on_timeout();
  ASSERT_TRUE(give_up.has_value());
  EXPECT_EQ(give_up->seq, 0);
  EXPECT_EQ(give_up->attempts, 2u);
  EXPECT_EQ(give_up->data, (std::vector<std::uint8_t>{0xAB, 0xCD}));
  EXPECT_EQ(tx.dropped(), 1u);
  // The transmitter moves on to the next queued segment afterwards.
  tx.enqueue({7});
  const auto next = tx.next_segment();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->seq, 1);
}

TEST(ArqTx, TimeoutWhileIdleGivesNothing) {
  ArqTransmitter tx{2};
  EXPECT_FALSE(tx.on_timeout().has_value());
  EXPECT_EQ(tx.dropped(), 0u);
}

TEST(ArqTx, StaleAckIgnored) {
  ArqTransmitter tx;
  tx.enqueue({1});
  const auto seg = tx.next_segment();
  ASSERT_TRUE(seg.has_value());
  EXPECT_FALSE(tx.on_ack(static_cast<std::uint8_t>(seg->seq + 1)));
  EXPECT_EQ(tx.delivered(), 0u);
  EXPECT_TRUE(tx.on_ack(seg->seq));
}

TEST(ArqTx, SequenceNumbersWrap) {
  ArqTransmitter tx;
  for (int i = 0; i < 258; ++i) {
    tx.enqueue({static_cast<std::uint8_t>(i)});
    const auto seg = tx.next_segment();
    ASSERT_TRUE(seg.has_value());
    EXPECT_EQ(seg->seq, static_cast<std::uint8_t>(i));
    tx.on_ack(seg->seq);
  }
}

TEST(ArqTx, ReorderedAndDuplicatedAcksIgnored) {
  ArqTransmitter tx;
  tx.enqueue({1});
  tx.enqueue({2});
  const auto first = tx.next_segment();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(tx.on_ack(first->seq));
  const auto second = tx.next_segment();
  ASSERT_TRUE(second.has_value());
  // A late duplicate of the first ACK arrives out of order: it must not
  // acknowledge the new outstanding segment.
  EXPECT_FALSE(tx.on_ack(first->seq));
  EXPECT_EQ(tx.delivered(), 1u);
  ASSERT_TRUE(tx.next_segment().has_value());  // still outstanding
  EXPECT_TRUE(tx.on_ack(second->seq));
  // And a duplicate of the now-consumed ACK is also a no-op.
  EXPECT_FALSE(tx.on_ack(second->seq));
  EXPECT_EQ(tx.delivered(), 2u);
  EXPECT_EQ(tx.dropped(), 0u);
}

TEST(ArqRx, AcceptsNewRejectsDuplicate) {
  ArqReceiver rx;
  const Segment s{5, {9}};
  const auto first = rx.on_segment(s);
  EXPECT_TRUE(first.deliver_to_app);
  EXPECT_EQ(first.ack_seq, 5);
  const auto dup = rx.on_segment(s);
  EXPECT_FALSE(dup.deliver_to_app);
  EXPECT_EQ(dup.ack_seq, 5);  // duplicate still gets ACKed
  EXPECT_EQ(rx.duplicates(), 1u);
  EXPECT_EQ(rx.accepted(), 1u);
}

TEST(ArqRx, DuplicateSuppressionAcrossSequenceWrap) {
  ArqTransmitter tx;
  ArqReceiver rx;
  // March the transmitter through the full sequence space and past the
  // 255 -> 0 wrap, duplicating every downlink frame (as a lost ACK
  // would): the receiver must deliver each segment exactly once and ACK
  // the duplicate without delivering it — including at the wrap, where
  // seq 0 reappears and must not be mistaken for the original seq 0.
  for (int i = 0; i < 260; ++i) {
    tx.enqueue({static_cast<std::uint8_t>(i)});
    const auto seg = tx.next_segment();
    ASSERT_TRUE(seg.has_value());
    EXPECT_EQ(seg->seq, static_cast<std::uint8_t>(i));
    const auto fresh = rx.on_segment(*seg);
    EXPECT_TRUE(fresh.deliver_to_app) << "i=" << i;
    const auto dup = rx.on_segment(*seg);
    EXPECT_FALSE(dup.deliver_to_app) << "i=" << i;
    EXPECT_EQ(dup.ack_seq, seg->seq);
    ASSERT_TRUE(tx.on_ack(dup.ack_seq));
  }
  EXPECT_EQ(rx.accepted(), 260u);
  EXPECT_EQ(rx.duplicates(), 260u);
  EXPECT_EQ(tx.delivered(), 260u);
}

TEST(Arq, EndToEndOverLossyLink) {
  // Simulate a 30%-loss downlink and a 20%-loss ACK path: with 6
  // attempts the vast majority of segments must get through exactly
  // once.
  ArqTransmitter tx{6};
  ArqReceiver rx;
  Rng rng{77};
  const int total = 200;
  for (int i = 0; i < total; ++i) {
    tx.enqueue({static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i >> 8)});
  }
  int app_deliveries = 0;
  while (const auto seg = tx.next_segment()) {
    const bool down_ok = !rng.bernoulli(0.3);
    if (!down_ok) {
      tx.on_timeout();
      continue;
    }
    const auto outcome = rx.on_segment(*seg);
    if (outcome.deliver_to_app) ++app_deliveries;
    const bool ack_ok = !rng.bernoulli(0.2);
    if (ack_ok) {
      tx.on_ack(outcome.ack_seq);
    } else {
      tx.on_timeout();  // ACK lost: transmitter retries a received frame
    }
  }
  EXPECT_GT(app_deliveries, total * 95 / 100);
  EXPECT_EQ(static_cast<int>(tx.delivered() + tx.dropped()), total);
  // Duplicates happen exactly when ACKs are lost; the receiver must have
  // suppressed all of them.
  EXPECT_EQ(app_deliveries, static_cast<int>(rx.accepted()));
}

}  // namespace
}  // namespace densevlc::mac
