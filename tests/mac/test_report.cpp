// Tests for the channel-report codec.
#include "mac/report.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace densevlc::mac {
namespace {

TEST(Report, QuantizationRoundTripWithinHalfLsb) {
  for (double g : {0.0, 1e-9, 3.7e-7, 8.6e-7, 2e-6}) {
    const double rt = dequantize_gain(quantize_gain(g));
    EXPECT_NEAR(rt, std::min(g, kGainMax), kGainLsb / 2.0 + 1e-15);
  }
}

TEST(Report, QuantizationClipsAboveRange) {
  EXPECT_EQ(quantize_gain(1.0), 65535);
  EXPECT_EQ(quantize_gain(-1e-9), 0);
}

TEST(Report, EncodeDecodeRoundTrip) {
  ChannelReport report;
  report.rx_id = 3;
  report.epoch = 42;
  Rng rng{1};
  for (int i = 0; i < 36; ++i) {
    report.gains.push_back(rng.uniform(0.0, 1e-6));
  }
  const auto decoded = decode_report(encode_report(report));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->rx_id, 3);
  EXPECT_EQ(decoded->epoch, 42);
  ASSERT_EQ(decoded->gains.size(), 36u);
  for (std::size_t j = 0; j < 36; ++j) {
    EXPECT_NEAR(decoded->gains[j], report.gains[j], kGainLsb / 2.0 + 1e-15);
  }
}

TEST(Report, PayloadIsMinimal) {
  ChannelReport report;
  report.gains.assign(36, 1e-7);
  // 4-byte header + 2 bytes per TX: 76 bytes for the paper's grid.
  EXPECT_EQ(encode_report(report).size(), 76u);
}

TEST(Report, DecodeRejectsTruncated) {
  ChannelReport report;
  report.gains.assign(10, 1e-7);
  auto bytes = encode_report(report);
  bytes.pop_back();
  EXPECT_FALSE(decode_report(bytes).has_value());
  EXPECT_FALSE(decode_report(std::vector<std::uint8_t>{1, 2}).has_value());
}

TEST(Report, FrameWrapsProtocolAndAddresses) {
  ChannelReport report;
  report.rx_id = 2;
  report.gains.assign(4, 5e-7);
  const auto frame = report_frame(report, 0xC0);
  EXPECT_EQ(frame.dst, 0xC0);
  EXPECT_EQ(frame.src, 2);
  EXPECT_EQ(frame.protocol,
            static_cast<std::uint16_t>(phy::Protocol::kChannelReport));
  const auto decoded = decode_report(frame.payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->rx_id, 2);
}

TEST(Report, MatrixAssemblyUsesLatestPerRx) {
  ChannelReport old_r;
  old_r.rx_id = 0;
  old_r.gains = {1e-7, 2e-7};
  ChannelReport new_r;
  new_r.rx_id = 0;
  new_r.gains = {3e-7, 4e-7};
  ChannelReport other;
  other.rx_id = 1;
  other.gains = {5e-7, 6e-7};
  const std::vector<ChannelReport> reports{old_r, other, new_r};
  const auto h = matrix_from_reports(reports, 2, 2);
  EXPECT_NEAR(h.gain(0, 0), 3e-7, kGainLsb);
  EXPECT_NEAR(h.gain(1, 0), 4e-7, kGainLsb);
  EXPECT_NEAR(h.gain(0, 1), 5e-7, kGainLsb);
}

TEST(Report, MatrixIgnoresMalformedReports) {
  ChannelReport wrong_size;
  wrong_size.rx_id = 0;
  wrong_size.gains = {1e-7};  // expects 2 TXs
  ChannelReport bad_rx;
  bad_rx.rx_id = 9;
  bad_rx.gains = {1e-7, 1e-7};
  const std::vector<ChannelReport> reports{wrong_size, bad_rx};
  const auto h = matrix_from_reports(reports, 2, 2);
  for (std::size_t j = 0; j < 2; ++j) {
    for (std::size_t k = 0; k < 2; ++k) {
      EXPECT_DOUBLE_EQ(h.gain(j, k), 0.0);
    }
  }
}

}  // namespace
}  // namespace densevlc::mac
