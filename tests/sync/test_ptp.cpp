// Tests for the message-level PTP simulation.
#include "sync/ptp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.hpp"

namespace densevlc::sync {
namespace {

TEST(Ptp, PerfectLinkRecoversOffsetExactly) {
  PtpLinkConfig link;
  link.jitter_mean_s = 0.0;
  link.asymmetry_s = 0.0;
  link.timestamp_jitter_s = 0.0;
  Rng rng{1};
  for (double offset : {-50e-6, 0.0, 30e-6, 1e-3}) {
    const auto res = ptp_exchange(offset, link, rng);
    EXPECT_NEAR(res.estimated_offset_s, offset, 1e-15);
    EXPECT_NEAR(res.residual_s, 0.0, 1e-15);
  }
}

TEST(Ptp, AsymmetryBiasesByHalf) {
  PtpLinkConfig link;
  link.jitter_mean_s = 0.0;
  link.asymmetry_s = 3e-6;
  link.timestamp_jitter_s = 0.0;
  Rng rng{2};
  const auto res = ptp_exchange(10e-6, link, rng);
  // The extra master->slave delay masquerades as +asymmetry/2 of offset.
  EXPECT_NEAR(res.residual_s, 1.5e-6, 1e-12);
  EXPECT_NEAR(ptp_asymmetry_floor(link), 1.5e-6, 1e-15);
}

TEST(Ptp, JitterAveragesOut) {
  PtpLinkConfig link;
  link.asymmetry_s = 0.0;
  Rng rng{3};
  std::vector<double> one_shot;
  std::vector<double> averaged;
  for (int t = 0; t < 300; ++t) {
    one_shot.push_back(
        std::fabs(ptp_residual_after_sync(20e-6, link, 1, rng)));
    averaged.push_back(
        std::fabs(ptp_residual_after_sync(20e-6, link, 16, rng)));
  }
  EXPECT_LT(stats::mean(averaged), stats::mean(one_shot) / 2.0);
}

TEST(Ptp, AveragingCannotBeatAsymmetry) {
  PtpLinkConfig link;  // default 1.5 us asymmetry
  Rng rng{4};
  std::vector<double> residuals;
  for (int t = 0; t < 200; ++t) {
    residuals.push_back(ptp_residual_after_sync(20e-6, link, 64, rng));
  }
  const double floor = ptp_asymmetry_floor(link);
  // The mean residual converges to the floor plus half the jitter-mean
  // difference (zero here since both directions share the jitter mean
  // in expectation... the exponential means cancel in expectation).
  EXPECT_GT(stats::mean(residuals), floor * 0.5);
}

TEST(Ptp, DefaultLinkMatchesPaperScale) {
  // The paper's NTP/PTP residuals sit at a few microseconds; the default
  // link config must land in that regime.
  PtpLinkConfig link;
  Rng rng{5};
  std::vector<double> residuals;
  for (int t = 0; t < 400; ++t) {
    residuals.push_back(
        std::fabs(ptp_residual_after_sync(50e-6, link, 8, rng)));
  }
  const double median = stats::median(residuals);
  EXPECT_GT(median, 0.5e-6);
  EXPECT_LT(median, 10e-6);
}

TEST(Ptp, ZeroExchangesLeavesOffsetUncorrected) {
  PtpLinkConfig link;
  Rng rng{6};
  EXPECT_DOUBLE_EQ(ptp_residual_after_sync(42e-6, link, 0, rng), 42e-6);
}

}  // namespace
}  // namespace densevlc::sync
