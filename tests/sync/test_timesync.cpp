// Tests for the NTP/PTP and no-sync baselines (paper Fig. 12, Table 4).
#include "sync/timesync.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace densevlc::sync {
namespace {

TEST(TimeSync, NtpPtpBeatsNoSync) {
  // Fig. 12's core claim: NTP/PTP improves the delay by at least ~2x.
  const TimeSyncConfig cfg;
  Rng rng{1};
  const double none =
      measure_sync_delay(SyncMethod::kNone, cfg, 50e3, 500, 400, rng);
  const double ptp =
      measure_sync_delay(SyncMethod::kNtpPtp, cfg, 50e3, 500, 400, rng);
  EXPECT_GT(none, 1.8 * ptp);
}

TEST(TimeSync, MediansMatchTable4Calibration) {
  // Table 4: no sync 10.040 us, NTP/PTP 4.565 us. Allow 25% tolerance on
  // the calibrated model.
  const TimeSyncConfig cfg;
  Rng rng{2};
  const double none =
      measure_sync_delay(SyncMethod::kNone, cfg, 100e3, 1000, 200, rng);
  const double ptp =
      measure_sync_delay(SyncMethod::kNtpPtp, cfg, 100e3, 1000, 200, rng);
  EXPECT_NEAR(none, 10.0e-6, 2.5e-6);
  EXPECT_NEAR(ptp, 4.6e-6, 1.2e-6);
}

TEST(TimeSync, DelayRoughlyFlatAcrossSymbolRates) {
  // The residual is clock-driven, not symbol-driven: across 5-60 Ksym/s
  // the measured delay varies by less than 3x (Fig. 12 shows flat curves
  // on a log axis).
  const TimeSyncConfig cfg;
  Rng rng{3};
  double lo = 1e9;
  double hi = 0.0;
  for (double rate : {5e3, 15e3, 30e3, 60e3}) {
    const double d =
        measure_sync_delay(SyncMethod::kNtpPtp, cfg, rate, 500, 80, rng);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_LT(hi / lo, 3.0);
}

TEST(TimeSync, PairStartDrawsHaveDrift) {
  const TimeSyncConfig cfg;
  Rng rng{4};
  bool saw_nonzero_drift = false;
  for (int i = 0; i < 50; ++i) {
    const auto p = draw_pair_start(SyncMethod::kNtpPtp, cfg, rng);
    saw_nonzero_drift = saw_nonzero_drift || p.drift_a_ppm != 0.0;
  }
  EXPECT_TRUE(saw_nonzero_drift);
}

TEST(TimeSync, NoSyncDelaysAreNonNegativeDeliveryTimes) {
  const TimeSyncConfig cfg;
  Rng rng{5};
  for (int i = 0; i < 100; ++i) {
    const auto p = draw_pair_start(SyncMethod::kNone, cfg, rng);
    // Delivery delays are exponential (positive) with small gaussian
    // perturbation — strongly negative values must not occur.
    EXPECT_GT(p.tx_a_s, -5.0 * cfg.event_jitter_sigma_s);
    EXPECT_GT(p.tx_b_s, -5.0 * cfg.event_jitter_sigma_s);
  }
}

TEST(TimeSync, MaxSymbolRateCriterion) {
  // Paper: with <=10% symbol overlap and the NTP/PTP delay, the max rate
  // is 14.28 Ksymbols/s — i.e. overlap / delay with delay ~7 us.
  EXPECT_NEAR(max_symbol_rate_for_overlap(7e-6, 0.10), 14.28e3, 0.3e3);
  EXPECT_DOUBLE_EQ(max_symbol_rate_for_overlap(0.0, 0.1), 0.0);
}

TEST(TimeSync, DeterministicGivenSeed) {
  const TimeSyncConfig cfg;
  Rng a{42};
  Rng b{42};
  EXPECT_DOUBLE_EQ(
      measure_sync_delay(SyncMethod::kNone, cfg, 50e3, 200, 20, a),
      measure_sync_delay(SyncMethod::kNone, cfg, 50e3, 200, 20, b));
}

}  // namespace
}  // namespace densevlc::sync
