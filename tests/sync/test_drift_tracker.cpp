// Tests for the inter-pilot drift tracker.
#include "sync/drift_tracker.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace densevlc::sync {
namespace {

/// Local clock reading for a given nominal time under (offset, drift).
double local_of(double nominal, double offset, double drift_ppm) {
  return offset + nominal * (1.0 + drift_ppm * 1e-6);
}

TEST(DriftTracker, NoObservationsIsIdentity) {
  const DriftTracker tracker;
  EXPECT_DOUBLE_EQ(tracker.predict_local(5.0), 5.0);
  EXPECT_DOUBLE_EQ(tracker.drift_ppm(), 0.0);
}

TEST(DriftTracker, SingleObservationGivesOffsetOnly) {
  DriftTracker tracker;
  tracker.observe(1.0, local_of(1.0, 2e-6, 30.0));
  // Offset-only prediction ignores the drift it cannot know.
  const double pred = tracker.predict_local(2.0);
  EXPECT_NEAR(pred, local_of(1.0, 2e-6, 30.0) + 1.0, 1e-12);
}

TEST(DriftTracker, RecoversDriftExactlyFromCleanPilots) {
  DriftTracker tracker;
  const double offset = 5e-6;
  const double drift = 42.0;
  for (double t = 0.0; t <= 4.0; t += 1.0) {
    tracker.observe(t, local_of(t, offset, drift));
  }
  EXPECT_NEAR(tracker.drift_ppm(), drift, 1e-6);
  // Prediction 10 s ahead stays exact.
  EXPECT_NEAR(tracker.prediction_error(14.0, drift, offset), 0.0, 1e-12);
}

TEST(DriftTracker, WithoutTrackingErrorGrowsWithInterval) {
  // The point of the tracker: a phase-only follower drifts apart.
  const double drift = 30.0;  // ppm
  DriftTracker phase_only{2};
  phase_only.observe(0.0, local_of(0.0, 0.0, drift));
  // One observation -> offset-only prediction: at t seconds the error is
  // drift * t.
  for (double t : {0.1, 1.0, 10.0}) {
    const double err =
        std::fabs(phase_only.prediction_error(t, drift, 0.0));
    EXPECT_NEAR(err, drift * 1e-6 * t, 1e-9) << "t " << t;
  }
}

TEST(DriftTracker, NoisyPilotsStillEstimateWell) {
  DriftTracker tracker{16};
  Rng rng{7};
  const double drift = -25.0;
  const double offset = 1e-6;
  const double pilot_noise = 0.5e-6;  // NLOS detection quantization
  for (double t = 0.0; t <= 15.0; t += 1.0) {
    tracker.observe(t, local_of(t, offset, drift) +
                           rng.gaussian(0.0, pilot_noise));
  }
  EXPECT_NEAR(tracker.drift_ppm(), drift, 1.0);
  // Prediction error 5 s past the last pilot is far below the untracked
  // drift of 125 us... wait, 25 ppm * 5 s = 125 us; tracked, it should
  // stay within a few microseconds.
  EXPECT_LT(std::fabs(tracker.prediction_error(20.0, drift, offset)),
            5e-6);
}

TEST(DriftTracker, WindowAgesOutOldRate) {
  DriftTracker tracker{4};
  // Old regime: +50 ppm; new regime (after warm-up): -10 ppm.
  for (double t = 0.0; t < 4.0; t += 1.0) {
    tracker.observe(t, local_of(t, 0.0, 50.0));
  }
  const double pivot_local = local_of(3.0, 0.0, 50.0);
  for (double t = 4.0; t < 8.0; t += 1.0) {
    tracker.observe(t, pivot_local + (t - 3.0) * (1.0 - 10.0 * 1e-6));
  }
  EXPECT_EQ(tracker.observations(), 4u);
  EXPECT_NEAR(tracker.drift_ppm(), -10.0, 0.5);
}

TEST(DriftTracker, ExtendsResyncInterval) {
  // Quantify the headline: with 0.5 us pilot accuracy and 30 ppm drift,
  // phase-only sync must re-pilot every ~33 ms to stay under 1 us; the
  // tracker (residual drift < 1 ppm) stretches that 30x+.
  const double drift = 30.0;
  DriftTracker tracker{8};
  Rng rng{9};
  for (double t = 0.0; t <= 7.0; t += 1.0) {
    tracker.observe(t, local_of(t, 0.0, drift) +
                           rng.gaussian(0.0, 0.3e-6));
  }
  const double residual_ppm = std::fabs(tracker.drift_ppm() - drift);
  EXPECT_LT(residual_ppm, 1.0);
}

}  // namespace
}  // namespace densevlc::sync
