// Tests for the local-clock error model.
#include "sync/clock.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.hpp"

namespace densevlc::sync {
namespace {

TEST(Clock, LocalTimeAppliesOffsetAndDrift) {
  const ClockModel c{2e-6, 10.0, 0.0};  // +2 us offset, +10 ppm
  EXPECT_NEAR(c.local_time(0.0), 2e-6, 1e-15);
  EXPECT_NEAR(c.local_time(1.0), 1.0 + 2e-6 + 10e-6, 1e-12);
}

TEST(Clock, TrueTimeInvertsLocalTime) {
  const ClockModel c{-3e-6, 25.0, 0.0};
  for (double t : {0.0, 0.5, 10.0, 1000.0}) {
    const double local = c.local_time(t);
    EXPECT_NEAR(c.true_time_of_local(local), t, 1e-9);
  }
}

TEST(Clock, FireTimeJitters) {
  const ClockModel c{0.0, 0.0, 1e-6};
  Rng rng{5};
  std::vector<double> fires(2000);
  for (double& f : fires) f = c.fire_time(1.0, rng);
  EXPECT_NEAR(stats::mean(fires), 1.0, 1e-7);
  EXPECT_NEAR(stats::stddev(fires), 1e-6, 2e-7);
}

TEST(Clock, DrawMatchesPopulation) {
  ClockPopulation pop;
  pop.offset_stddev_s = 5e-6;
  pop.drift_stddev_ppm = 10.0;
  Rng rng{6};
  std::vector<double> offsets;
  std::vector<double> drifts;
  for (int i = 0; i < 3000; ++i) {
    const auto c = ClockModel::draw(pop, rng);
    offsets.push_back(c.offset());
    drifts.push_back(c.drift_ppm());
  }
  EXPECT_NEAR(stats::stddev(offsets), 5e-6, 5e-7);
  EXPECT_NEAR(stats::stddev(drifts), 10.0, 1.0);
  EXPECT_NEAR(stats::mean(offsets), 0.0, 5e-7);
}

TEST(Clock, CorrectedShrinksOffsetKeepsDrift) {
  ClockPopulation pop;
  pop.offset_stddev_s = 100e-6;
  Rng rng{7};
  std::vector<double> corrected_offsets;
  for (int i = 0; i < 2000; ++i) {
    const auto raw = ClockModel::draw(pop, rng);
    const auto fixed = raw.corrected(1e-6, rng);
    corrected_offsets.push_back(fixed.offset());
    EXPECT_DOUBLE_EQ(fixed.drift_ppm(), raw.drift_ppm());
  }
  EXPECT_NEAR(stats::stddev(corrected_offsets), 1e-6, 1e-7);
}

TEST(Clock, ZeroErrorClockIsIdentity) {
  const ClockModel c{0.0, 0.0, 0.0};
  Rng rng{8};
  EXPECT_DOUBLE_EQ(c.local_time(5.0), 5.0);
  EXPECT_DOUBLE_EQ(c.fire_time(5.0, rng), 5.0);
}

}  // namespace
}  // namespace densevlc::sync
