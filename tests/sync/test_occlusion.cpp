// Tests for NLOS floor occluders (person on the reflection path) and the
// tilted-receiver geometry helper.
#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "optics/nlos.hpp"
#include "core/testbed.hpp"
#include "sync/nlos_sync.hpp"

namespace densevlc {
namespace {

optics::LambertianEmitter paper_emitter() {
  optics::LambertianEmitter e;
  e.half_power_semi_angle_rad = units::deg_to_rad(15.0);
  return e;
}

TEST(FloorOccluder, ReducesNlosGain) {
  const auto e = paper_emitter();
  const optics::Photodiode pd;
  const auto tx = geom::ceiling_pose(1.25, 1.25, 2.8);
  const auto rx = geom::ceiling_pose(1.75, 1.25, 2.8);
  const optics::FloorSurface floor;
  const double clear = optics::nlos_floor_gain(e, pd, tx, rx, floor);
  // A person standing right under the leader blocks the bright spot.
  const std::vector<optics::FloorOccluder> person{{1.25, 1.25, 0.3}};
  const double occluded =
      optics::nlos_floor_gain(e, pd, tx, rx, floor, person);
  EXPECT_LT(occluded, clear);
  EXPECT_GT(occluded, 0.0);  // but the bounce survives (paper's claim)
}

TEST(FloorOccluder, FarAwayOccluderIsHarmless) {
  const auto e = paper_emitter();
  const optics::Photodiode pd;
  const auto tx = geom::ceiling_pose(1.25, 1.25, 2.8);
  const auto rx = geom::ceiling_pose(1.75, 1.25, 2.8);
  const optics::FloorSurface floor;
  const double clear = optics::nlos_floor_gain(e, pd, tx, rx, floor);
  const std::vector<optics::FloorOccluder> corner{{2.9, 2.9, 0.25}};
  const double with_corner =
      optics::nlos_floor_gain(e, pd, tx, rx, floor, corner);
  EXPECT_NEAR(with_corner, clear, clear * 0.02);
}

TEST(FloorOccluder, SyncSurvivesWalkingPerson) {
  // Paper Sec. 9: "even when a person is walking by, the pilot signals
  // are still received". A person offset from the hot spot must leave
  // detection working.
  sync::NlosSyncConfig cfg;
  cfg.occluders = {{1.0, 0.9, 0.3}};  // near, not on, the bright spot
  sync::NlosSynchronizer sync{cfg};
  Rng rng{4};
  std::size_t detected = 0;
  for (int t = 0; t < 10; ++t) {
    detected += sync.simulate_once(rng).detected ? 1 : 0;
  }
  EXPECT_GE(detected, 8u);
}

TEST(TiltedPose, ZeroTiltIsFloorPose) {
  const auto p = geom::tilted_pose(1.0, 2.0, 0.8, 0.0, 0.0);
  EXPECT_NEAR(p.normal.z, 1.0, 1e-12);
  EXPECT_NEAR(p.normal.x, 0.0, 1e-12);
}

TEST(TiltedPose, NormalIsUnitAndDirected) {
  const double tilt = units::deg_to_rad(30.0);
  const double az = units::deg_to_rad(90.0);
  const auto p = geom::tilted_pose(0.5, 0.5, 0.0, tilt, az);
  EXPECT_NEAR(p.normal.norm(), 1.0, 1e-12);
  EXPECT_NEAR(p.normal.y, std::sin(tilt), 1e-12);  // leaning toward +y
  EXPECT_NEAR(p.normal.z, std::cos(tilt), 1e-12);
}

TEST(TiltedPose, TiltTowardTxRaisesGain) {
  // Leaning the receiver toward an off-axis TX increases that link's
  // gain and decreases the opposite one.
  const auto tb = core::make_experimental_testbed();
  const double tilt = units::deg_to_rad(25.0);
  // RX at the room center; TX6 (2.75, 0.25) lies toward +x/-y.
  const auto flat = tb.channel_for_poses({geom::floor_pose(1.5, 1.5, 0.0)});
  const auto toward =
      tb.channel_for_poses({geom::tilted_pose(1.5, 1.5, 0.0, tilt, 0.0)});
  // TX18 (1-based) is at (2.75, 1.25): roughly along +x from the center.
  const std::size_t tx_east = 17;
  const std::size_t tx_west = 12;  // TX13 at (0.25, 1.25)
  EXPECT_GT(toward.gain(tx_east, 0), flat.gain(tx_east, 0));
  EXPECT_LT(toward.gain(tx_west, 0), flat.gain(tx_west, 0));
}

}  // namespace
}  // namespace densevlc
