// Tests for the NLOS-VLC synchronization protocol (paper Sec. 6.2,
// Table 4).
#include "sync/nlos_sync.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"

namespace densevlc::sync {
namespace {

NlosSyncConfig default_config() {
  NlosSyncConfig cfg;
  cfg.emitter.half_power_semi_angle_rad = 15.0 * 3.14159265358979 / 180.0;
  return cfg;
}

TEST(NlosSync, ChannelGainIsPositiveAndWeak) {
  const NlosSynchronizer sync{default_config()};
  EXPECT_GT(sync.channel_gain(), 0.0);
  EXPECT_LT(sync.channel_gain(), 1e-6);
}

TEST(NlosSync, DetectsPilotAndVerifiesId) {
  NlosSynchronizer sync{default_config()};
  Rng rng{1};
  std::size_t detections = 0;
  std::size_t id_ok = 0;
  for (int t = 0; t < 20; ++t) {
    const auto d = sync.simulate_once(rng);
    detections += d.detected ? 1 : 0;
    id_ok += d.id_matches ? 1 : 0;
  }
  EXPECT_GE(detections, 18u);
  EXPECT_GE(id_ok, 18u);
}

TEST(NlosSync, MedianErrorNearHalfSamplePeriod) {
  // Table 4: 0.575 us at frx = 1 Msps. The dominating term is the 1 us
  // sampling grid, so the median absolute error lands near half a sample.
  NlosSynchronizer sync{default_config()};
  Rng rng{2};
  const auto errors = sync.measure_errors(60, rng);
  ASSERT_GE(errors.size(), 50u);
  const double median = stats::median(errors);
  EXPECT_GT(median, 0.1e-6);
  EXPECT_LT(median, 1.2e-6);
}

TEST(NlosSync, OrderOfMagnitudeBetterThanNtpPtp) {
  // The headline Table 4 comparison: 0.575 us vs 4.565 us.
  NlosSynchronizer sync{default_config()};
  Rng rng{3};
  const auto errors = sync.measure_errors(40, rng);
  ASSERT_FALSE(errors.empty());
  EXPECT_LT(stats::median(errors), 4.565e-6 / 3.0);
}

TEST(NlosSync, WrongLeaderIdRejected) {
  // A follower expecting leader 2 must not validate a pilot from
  // leader 9.
  NlosSyncConfig cfg = default_config();
  NlosSynchronizer tx_side{cfg};  // emits ID 2 (default)
  // Build a listener expecting a different ID by re-using the simulation
  // with a changed expectation: simulate with leader_id 9 and check the
  // follower (configured for 9) accepts it, then cross-check mismatch by
  // comparing the decoded byte path: here we assert ID match is specific.
  cfg.leader_id = 9;
  NlosSynchronizer other{cfg};
  Rng rng{4};
  const auto d = other.simulate_once(rng);
  ASSERT_TRUE(d.detected);
  EXPECT_TRUE(d.id_matches);  // consistent config matches
}

TEST(NlosSync, DarkFloorKillsDetection) {
  NlosSyncConfig cfg = default_config();
  cfg.floor.reflectance = 0.0;  // perfectly absorbing floor
  NlosSynchronizer sync{cfg};
  Rng rng{5};
  std::size_t detections = 0;
  for (int t = 0; t < 10; ++t) {
    detections += sync.simulate_once(rng).detected ? 1 : 0;
  }
  EXPECT_EQ(detections, 0u);
}

TEST(NlosSync, FartherFollowerStillSynchronizes) {
  NlosSyncConfig cfg = default_config();
  cfg.follower_pose = geom::ceiling_pose(2.25, 1.25, 2.8);  // 1 m away
  NlosSynchronizer sync{cfg};
  Rng rng{6};
  const auto errors = sync.measure_errors(20, rng);
  EXPECT_GE(errors.size(), 15u);
}

TEST(NlosSync, HigherSamplingRateTightensSync) {
  // The paper: "with advanced devices supporting a higher sampling rate,
  // the granularity can be further improved."
  NlosSyncConfig slow = default_config();
  NlosSyncConfig fast = default_config();
  fast.frontend.adc.sample_rate_hz = 4e6;
  NlosSynchronizer s_slow{slow};
  NlosSynchronizer s_fast{fast};
  Rng rng_a{7};
  Rng rng_b{7};
  const auto err_slow = s_slow.measure_errors(40, rng_a);
  const auto err_fast = s_fast.measure_errors(40, rng_b);
  ASSERT_FALSE(err_slow.empty());
  ASSERT_FALSE(err_fast.empty());
  EXPECT_LT(stats::median(err_fast), stats::median(err_slow));
}

}  // namespace
}  // namespace densevlc::sync
