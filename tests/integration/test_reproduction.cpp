// Golden reproduction tests: pin the headline numbers this repo
// reproduces from the paper, so regressions in any substrate (optics,
// LED model, solver, sync chain) surface as failures here rather than
// as silent drift in the benches. Tolerances are deliberately loose —
// these guard the *shape*, not the third decimal.
#include <gtest/gtest.h>

#include <cmath>

#include "alloc/assignment.hpp"
#include "alloc/baselines.hpp"
#include "alloc/optimal.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "illum/illuminance_map.hpp"
#include "scenario/scenarios.hpp"
#include "sync/nlos_sync.hpp"
#include "sync/timesync.hpp"

namespace densevlc {
namespace {

TEST(Golden, Fig4TaylorErrorAt900mA) {
  // Paper: 0.45%. Ours: 0.445%.
  const optics::LedModel led{optics::LedElectrical{},
                             optics::LedOperatingPoint{0.45, 0.9}};
  EXPECT_NEAR(100.0 * led.comm_power_relative_error(Amperes{0.9}), 0.45, 0.05);
}

TEST(Golden, Fig5IlluminanceAndUniformity) {
  // Paper (simulation): 564 lux / 74%.
  const auto tb = core::make_simulation_testbed();
  // 61 raster points per axis, as the Fig. 5 bench uses (the minimum-
  // finding uniformity metric is resolution-sensitive).
  const illum::IlluminanceMap map{tb.room,     tb.tx_poses(), tb.emitter,
                                  tb.led,      Meters{0.8},   61,
                                  kWhiteLedEfficacy};
  const auto aoi = map.area_of_interest_stats(Meters{2.2});
  EXPECT_NEAR(aoi.average_lux, 564.0, 30.0);
  EXPECT_NEAR(aoi.uniformity, 0.74, 0.04);
}

TEST(Golden, Fig9FirstAssignments) {
  // Paper: TX8 first for RX1, TX10 first for RX2 (1-based).
  const auto tb = core::make_simulation_testbed();
  const auto h = tb.channel_for(scenario::fig7_rx_positions());
  EXPECT_EQ(h.best_tx_for(0), 7u);
  EXPECT_EQ(h.best_tx_for(1), 9u);
}

TEST(Golden, Fig11HeuristicLossNearTwoPercent) {
  // Paper: kappa = 1.3 loses 1.8% on average. Check the Fig. 7 instance
  // stays in single digits and a small instance sample averages low.
  const auto tb = core::make_simulation_testbed();
  const auto instances = scenario::random_instances(10, 0.25, tb.room, 0xF16'8);
  alloc::OptimalSolverConfig ocfg;
  ocfg.max_iterations = 250;
  alloc::AssignmentOptions opts;
  opts.allow_partial_tail = true;
  std::vector<double> losses;
  for (const auto& rx_xy : instances) {
    const auto h = tb.channel_for(rx_xy);
    const auto opt = alloc::solve_optimal(h, Watts{1.2}, tb.budget, ocfg);
    const auto heur =
        alloc::heuristic_allocate(h, 1.3, Watts{1.2}, tb.budget, opts);
    auto sum = [&](const channel::Allocation& a) {
      double s = 0.0;
      for (double t : channel::throughput_bps(h, a, tb.budget)) s += t;
      return s;
    };
    losses.push_back(100.0 *
                     (1.0 - sum(heur.allocation) / sum(opt.allocation)));
  }
  EXPECT_LT(stats::mean(losses), 6.0);
  EXPECT_GT(stats::mean(losses), -3.0);
}

TEST(Golden, Fig8ThroughputVsPowerBudgetPinned) {
  // Paper Fig. 8: optimal-allocation throughput versus the communication
  // power budget. Pin this repo's measured curve on a fixed 8-instance
  // sample (seed 0xF168, the Fig. 6 protocol): absolute system throughput
  // at three budgets with ±5% tolerances, the proportional-fairness
  // per-RX balance, the paper's RX3/RX4 > RX1/RX2 ordering at high
  // budget, and the efficiency knee beyond ~1.2 W.
  const auto tb = core::make_simulation_testbed();
  const auto instances = scenario::random_instances(8, 0.25, tb.room, 0xF16'8);
  alloc::OptimalSolverConfig cfg;
  cfg.max_iterations = 150;

  struct Point {
    double budget_w;
    double expected_mbps;
    double tol_mbps;  // ~5% of the pinned value
  };
  const Point curve[] = {
      {0.5, 6.57, 0.33}, {1.2, 9.92, 0.50}, {2.0, 10.30, 0.52}};

  std::vector<double> mean_sys;
  std::vector<std::vector<double>> rx_at_high(4);
  for (const auto& pt : curve) {
    std::vector<double> sys;
    for (const auto& rx_xy : instances) {
      const auto h = tb.channel_for(rx_xy);
      const auto res =
          alloc::solve_optimal(h, Watts{pt.budget_w}, tb.budget, cfg);
      const auto tput = channel::throughput_bps(h, res.allocation, tb.budget);
      double total = 0.0;
      for (std::size_t k = 0; k < 4; ++k) {
        total += tput[k];
        if (pt.budget_w == 2.0) rx_at_high[k].push_back(tput[k] / 1e6);
      }
      sys.push_back(total / 1e6);
    }
    mean_sys.push_back(stats::mean(sys));
    EXPECT_NEAR(mean_sys.back(), pt.expected_mbps, pt.tol_mbps)
        << "budget " << pt.budget_w << " W";
  }

  // Throughput grows with the budget...
  EXPECT_GT(mean_sys[1], mean_sys[0]);
  EXPECT_GT(mean_sys[2], mean_sys[1]);
  // ...but the marginal Mbit/s per watt collapses past the ~1.2 W knee.
  const double slope_low = (mean_sys[1] - mean_sys[0]) / (1.2 - 0.5);
  const double slope_high = (mean_sys[2] - mean_sys[1]) / (2.0 - 1.2);
  EXPECT_LT(slope_high, 0.25 * slope_low);

  // Proportional fairness: every RX gets a comparable share, and the
  // wall-adjacent RX3/RX4 out-earn the central RX1/RX2 at high budget.
  const double rx_means[] = {
      stats::mean(rx_at_high[0]), stats::mean(rx_at_high[1]),
      stats::mean(rx_at_high[2]), stats::mean(rx_at_high[3])};
  for (double m : rx_means) {
    EXPECT_GT(m, 0.15 * mean_sys[2]);
    EXPECT_LT(m, 0.40 * mean_sys[2]);
  }
  EXPECT_GT(rx_means[2], rx_means[0]);
  EXPECT_GT(rx_means[3], rx_means[1]);
}

TEST(Golden, Fig11HeuristicGapPinned) {
  // Paper Sec. 5 / Fig. 11: the kappa = 1.3 heuristic loses ~1.8% of
  // system throughput versus the optimum. With this repo's solver config
  // the measured mean gap on the 10-instance sample is -0.29% (the
  // iteration-capped optimum occasionally trails the heuristic); pin it
  // with a ±2-point tolerance so the gap magnitude stays in the paper's
  // single-digit regime and silent solver drift is caught.
  const auto tb = core::make_simulation_testbed();
  const auto instances = scenario::random_instances(10, 0.25, tb.room, 0xF16'8);
  alloc::OptimalSolverConfig ocfg;
  ocfg.max_iterations = 250;
  alloc::AssignmentOptions opts;
  opts.allow_partial_tail = true;
  std::vector<double> losses;
  for (const auto& rx_xy : instances) {
    const auto h = tb.channel_for(rx_xy);
    const auto opt = alloc::solve_optimal(h, Watts{1.2}, tb.budget, ocfg);
    const auto heur = alloc::heuristic_allocate(h, 1.3, Watts{1.2}, tb.budget, opts);
    auto sum = [&](const channel::Allocation& a) {
      double s = 0.0;
      for (double t : channel::throughput_bps(h, a, tb.budget)) s += t;
      return s;
    };
    losses.push_back(100.0 *
                     (1.0 - sum(heur.allocation) / sum(opt.allocation)));
  }
  EXPECT_NEAR(stats::mean(losses), -0.29, 2.0);
}

TEST(Golden, Table4SyncOrderingAndMagnitudes) {
  Rng rng{0x601D};
  const sync::TimeSyncConfig ts;
  const double none = sync::measure_sync_delay(sync::SyncMethod::kNone, ts,
                                               100e3, 1000, 120, rng);
  const double ptp = sync::measure_sync_delay(sync::SyncMethod::kNtpPtp,
                                              ts, 100e3, 1000, 120, rng);
  sync::NlosSyncConfig nc;
  nc.leader_pose = geom::ceiling_pose(0.75, 0.25, 2.0);
  nc.follower_pose = geom::ceiling_pose(1.25, 0.25, 2.0);
  sync::NlosSynchronizer nlos{nc};
  const auto errors = nlos.measure_errors(60, rng);
  ASSERT_GE(errors.size(), 50u);
  const double nlos_median = stats::median(errors);

  // Paper: 10.040 / 4.565 / 0.575 us.
  EXPECT_NEAR(none, 10.0e-6, 3.0e-6);
  EXPECT_NEAR(ptp, 4.6e-6, 1.5e-6);
  EXPECT_NEAR(nlos_median, 0.575e-6, 0.35e-6);
  EXPECT_LT(nlos_median, ptp);
  EXPECT_LT(ptp, none);
}

TEST(Golden, Fig21EfficiencyGain) {
  // Paper: 2.3x power efficiency over D-MISO; our model lands >= 1.5x.
  const auto tb = core::make_experimental_testbed();
  const auto h = tb.channel_for(scenario::fig7_rx_positions());
  auto sum = [&](const channel::Allocation& a) {
    double s = 0.0;
    for (double t : channel::throughput_bps(h, a, tb.budget)) s += t;
    return s;
  };
  const auto dmiso = alloc::dmiso_all_tx(h, 9, Amperes{0.9}, tb.budget);
  const double dmiso_tput = sum(dmiso.allocation);
  alloc::AssignmentOptions opts;
  double needed = dmiso.power_used_w;
  for (double b = 0.2; b <= dmiso.power_used_w; b += 0.05) {
    const auto dense = alloc::heuristic_allocate(h, 1.3, Watts{b}, tb.budget, opts);
    if (sum(dense.allocation) >= 0.94 * dmiso_tput) {
      needed = b;
      break;
    }
  }
  EXPECT_GT(dmiso.power_used_w / needed, 1.5);
}

TEST(Golden, FullSwingTxPowerSelfConsistent) {
  // Our r = 0.267 ohm -> 54.1 mW per full-swing TX (see the calibration
  // note in EXPERIMENTS.md; the paper's text says 74.42 mW with the same
  // formula). Pin our value so silent drift is caught.
  const auto tb = core::make_simulation_testbed();
  EXPECT_NEAR(units::to_mW(alloc::full_swing_tx_power(Amperes{0.9}, tb.budget)),
              54.1, 1.0);
}

}  // namespace
}  // namespace densevlc
