// Robustness ("fuzz-lite") tests: every deserializer must survive
// arbitrary bytes without crashing and without hallucinating valid
// structures at a meaningful rate.
#include <gtest/gtest.h>

#include <vector>

#include "common/ini.hpp"
#include "common/rng.hpp"
#include "mac/arq.hpp"
#include "mac/report.hpp"
#include "phy/frame.hpp"

namespace densevlc {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return v;
}

TEST(Fuzz, ParseFrameNeverAcceptsRandomNoise) {
  Rng rng{0xF022};
  int accepted = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(0, 600));
    const auto bytes = random_bytes(size, rng);
    if (phy::parse_frame(bytes)) ++accepted;
  }
  // The SFD gate alone rejects 255/256; RS syndromes kill the rest. A
  // false accept should be essentially impossible.
  EXPECT_EQ(accepted, 0);
}

TEST(Fuzz, ParseFrameSurvivesMutations) {
  // Start from a valid frame and flip random bytes: parse either fails
  // cleanly or returns *some* frame; it must never crash or return a
  // frame longer than the buffer implies.
  Rng rng{0xF023};
  phy::MacFrame f;
  f.payload = random_bytes(300, rng);
  const auto clean = phy::serialize_frame(f);
  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes = clean;
    const auto flips = static_cast<std::size_t>(rng.uniform_int(1, 40));
    for (std::size_t i = 0; i < flips; ++i) {
      const auto at = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(bytes.size()) - 1));
      bytes[at] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    }
    const auto parsed = phy::parse_frame(bytes);
    if (parsed) {
      EXPECT_LE(parsed->frame.payload.size(), phy::kMaxPayload);
    }
  }
}

TEST(Fuzz, ControllerFrameParserTotal) {
  Rng rng{0xF024};
  for (int trial = 0; trial < 2000; ++trial) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(0, 200));
    (void)phy::parse_controller_frame(random_bytes(size, rng));
  }
  SUCCEED();  // no crash is the assertion
}

TEST(Fuzz, ReportDecoderTotal) {
  Rng rng{0xF025};
  int accepted = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(0, 100));
    const auto bytes = random_bytes(size, rng);
    if (const auto r = mac::decode_report(bytes)) {
      ++accepted;
      // Accepted reports must be internally consistent.
      EXPECT_LE(r->gains.size(), 255u);
    }
  }
  // The report format has no checksum; acceptance just means the length
  // field fit. It must still never crash, and consistency holds above.
  EXPECT_GE(accepted, 0);
}

TEST(Fuzz, SegmentDecoderTotal) {
  Rng rng{0xF026};
  for (int trial = 0; trial < 1000; ++trial) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(0, 64));
    const auto bytes = random_bytes(size, rng);
    const auto seg = mac::decode_segment(bytes);
    if (!bytes.empty()) {
      ASSERT_TRUE(seg.has_value());
      EXPECT_EQ(seg->data.size(), bytes.size() - 1);
    } else {
      EXPECT_FALSE(seg.has_value());
    }
  }
}

TEST(Fuzz, IniParserTotalOnGarbage) {
  Rng rng{0xF027};
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const auto size = static_cast<std::size_t>(rng.uniform_int(0, 500));
    for (std::size_t i = 0; i < size; ++i) {
      text.push_back(static_cast<char>(rng.uniform_int(1, 127)));
    }
    const auto cfg = IniConfig::parse(text);
    (void)cfg.size();
  }
  SUCCEED();
}

}  // namespace
}  // namespace densevlc
