// Parameterized property sweeps across the evaluation space: the
// invariants that must hold for *every* receiver placement, PHY rate and
// modem geometry, not just the fixtures the unit tests use.
#include <gtest/gtest.h>

#include <cmath>

#include "alloc/assignment.hpp"
#include "alloc/greedy.hpp"
#include "alloc/optimal.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "phy/ofdm.hpp"
#include "phy/ook.hpp"
#include "scenario/scenarios.hpp"

namespace densevlc {
namespace {

// ---------------------------------------------------------------------
// Allocation invariants across random receiver instances.

class InstanceSweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  core::Testbed tb = core::make_simulation_testbed();
  channel::ChannelMatrix channel_for_instance() {
    const auto instances =
        scenario::random_instances(12, 0.25, tb.room, 0x5EEE);
    return tb.channel_for(instances[GetParam()]);
  }
};

TEST_P(InstanceSweep, HeuristicFeasibleAndFair) {
  const auto h = channel_for_instance();
  alloc::AssignmentOptions opts;
  for (double budget : {0.3, 1.2}) {
    const auto res =
        alloc::heuristic_allocate(h, 1.3, Watts{budget}, tb.budget, opts);
    // Feasibility.
    EXPECT_LE(channel::total_comm_power(res.allocation, tb.budget).value(),
              budget + 1e-9);
    for (std::size_t j = 0; j < 36; ++j) {
      EXPECT_LE(res.allocation.tx_total_swing(j).value(), 0.9 + 1e-12);
    }
    // Proportional fairness keeps every RX served at the full budget.
    if (budget >= 1.2) {
      const auto tput =
          channel::throughput_bps(h, res.allocation, tb.budget);
      for (std::size_t k = 0; k < 4; ++k) {
        EXPECT_GT(tput[k], 0.0) << "RX " << k << " starved";
      }
    }
  }
}

TEST_P(InstanceSweep, OptimalDominatesHeuristicUtility) {
  const auto h = channel_for_instance();
  alloc::OptimalSolverConfig cfg;
  cfg.max_iterations = 120;
  alloc::AssignmentOptions opts;
  opts.allow_partial_tail = true;
  const auto opt = alloc::solve_optimal(h, Watts{0.8}, tb.budget, cfg);
  const auto heur = alloc::heuristic_allocate(h, 1.3, Watts{0.8}, tb.budget, opts);
  EXPECT_GE(opt.utility,
            channel::sum_log_utility(h, heur.allocation, tb.budget) - 1e-9);
}

TEST_P(InstanceSweep, GreedyFeasible) {
  const auto h = channel_for_instance();
  const auto res = alloc::greedy_allocate(h, Watts{0.6}, tb.budget);
  EXPECT_LE(res.power_used_w, 0.6 + 1e-9);
  EXPECT_GT(res.utility, 0.0);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, InstanceSweep,
                         ::testing::Range<std::size_t>(0, 12));

// ---------------------------------------------------------------------
// Allocator invariants under randomized geometries, serial and parallel.
// Parameterized over the global thread count: every invariant must hold
// identically with the pool at 1 thread and at several.

class AllocatorInvariantSweep
    : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override { set_global_threads(GetParam()); }
  void TearDown() override { set_global_threads(0); }
  core::Testbed tb = core::make_simulation_testbed();
};

TEST_P(AllocatorInvariantSweep, SwingAndPowerWithinBounds) {
  constexpr double kMaxSwingA = 0.9;
  const auto instances = scenario::random_instances(5, 0.4, tb.room, 0xA110C);
  alloc::OptimalSolverConfig cfg;
  cfg.max_iterations = 60;
  alloc::AssignmentOptions opts;
  opts.allow_partial_tail = true;
  for (const auto& rx_xy : instances) {
    const auto h = tb.channel_for(rx_xy);
    for (double budget_w : {0.4, 1.0}) {
      const channel::Allocation allocations[] = {
          alloc::heuristic_allocate(h, 1.3, Watts{budget_w}, tb.budget, opts)
              .allocation,
          alloc::greedy_allocate(h, Watts{budget_w}, tb.budget).allocation,
          alloc::solve_optimal(h, Watts{budget_w}, tb.budget, cfg).allocation,
      };
      for (const auto& a : allocations) {
        // Total swing power within the budget (constraint 7).
        EXPECT_LE(channel::total_comm_power(a, tb.budget).value(),
                  budget_w + 1e-9);
        // Per-LED swing within [0, Isw,max] (constraint 6).
        for (std::size_t j = 0; j < a.num_tx(); ++j) {
          double row = 0.0;
          for (std::size_t k = 0; k < a.num_rx(); ++k) {
            EXPECT_GE(a.swing(j, k), 0.0);
            row += a.swing(j, k);
          }
          EXPECT_LE(row, kMaxSwingA + 1e-9);
        }
      }
    }
  }
}

TEST_P(AllocatorInvariantSweep, GreedyUtilityMonotoneInBudget) {
  // Greedy's grant sequence for a smaller budget is a prefix of the
  // sequence for a larger one, and every grant improves the objective —
  // utility must be exactly non-decreasing in the budget.
  const auto instances = scenario::random_instances(4, 0.4, tb.room, 0xB06E7);
  for (const auto& rx_xy : instances) {
    const auto h = tb.channel_for(rx_xy);
    double prev = -1e300;
    for (double budget_w : {0.2, 0.5, 0.9, 1.4}) {
      const auto res = alloc::greedy_allocate(h, Watts{budget_w}, tb.budget);
      EXPECT_GE(res.utility, prev);
      prev = res.utility;
    }
  }
}

TEST_P(AllocatorInvariantSweep, HeuristicSinrImprovesWithBudget) {
  // SINR monotonicity under the ranked-grant heuristic: a larger budget
  // grants a superset of TXs, so system throughput (B log2(1+SINR)
  // summed) must not fall. Small dips can occur when a marginal grant
  // adds more interference than signal; allow 5% slack for those.
  const auto instances = scenario::random_instances(4, 0.4, tb.room, 0x51A2);
  alloc::AssignmentOptions opts;
  for (const auto& rx_xy : instances) {
    const auto h = tb.channel_for(rx_xy);
    double prev_bps = 0.0;
    for (double budget_w : {0.3, 0.6, 1.0, 1.5}) {
      const auto res =
          alloc::heuristic_allocate(h, 1.3, Watts{budget_w}, tb.budget, opts);
      double sum_bps = 0.0;
      for (double t : channel::throughput_bps(h, res.allocation, tb.budget)) {
        sum_bps += t;
      }
      EXPECT_GE(sum_bps, 0.95 * prev_bps) << "budget " << budget_w;
      prev_bps = sum_bps;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, AllocatorInvariantSweep,
                         ::testing::Values(1, 4));

// ---------------------------------------------------------------------
// OOK frame round trips across chip rates and oversampling ratios.

class ChipRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(ChipRateSweep, FrameRoundTripAtRate) {
  phy::OokParams params;
  params.chip_rate_hz = GetParam();
  params.samples_per_chip = 10;
  const phy::OokModulator mod{params};
  const phy::OokDemodulator demod{params.chip_rate_hz,
                                  params.sample_rate_hz()};
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  phy::MacFrame f;
  f.payload.resize(64);
  for (auto& b : f.payload) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  auto wf = mod.modulate_frame(f, false, 0, 8);
  for (double& s : wf.samples) {
    s = s - params.bias_current_a + rng.gaussian(0.0, 0.05);
  }
  const auto res = demod.receive_frame(wf.samples);
  ASSERT_TRUE(res.has_value()) << "rate " << GetParam();
  EXPECT_EQ(res->parsed.frame, f);
}

INSTANTIATE_TEST_SUITE_P(Rates, ChipRateSweep,
                         ::testing::Values(25e3, 50e3, 100e3, 200e3,
                                           500e3));

// ---------------------------------------------------------------------
// OFDM round trips across modem geometries.

struct OfdmCase {
  std::size_t fft;
  std::size_t cp;
  std::size_t bits;
};

class OfdmSweep : public ::testing::TestWithParam<OfdmCase> {};

TEST_P(OfdmSweep, CleanRoundTrip) {
  const auto c = GetParam();
  phy::OfdmConfig cfg;
  cfg.fft_size = c.fft;
  cfg.cyclic_prefix = c.cp;
  cfg.bits_per_symbol = c.bits;
  cfg.swing_scale_a = 0.1;
  const phy::OfdmModem modem{cfg};
  Rng rng{c.fft * 131 + c.bits};
  std::vector<std::uint8_t> bits(700);
  for (auto& b : bits) b = rng.bernoulli(0.5) ? 1 : 0;
  const auto wf = modem.modulate(bits);
  const auto decoded = modem.demodulate(wf, bits.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, bits);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, OfdmSweep,
    ::testing::Values(OfdmCase{16, 2, 2}, OfdmCase{32, 4, 4},
                      OfdmCase{64, 8, 2}, OfdmCase{64, 8, 6},
                      OfdmCase{128, 16, 4}, OfdmCase{256, 16, 6}));

// ---------------------------------------------------------------------
// Polish invariants across budgets.

class PolishSweep : public ::testing::TestWithParam<double> {};

TEST_P(PolishSweep, BinaryAndFeasibleEverywhere) {
  const auto tb = core::make_simulation_testbed();
  const auto h = tb.channel_for(scenario::fig7_rx_positions());
  alloc::OptimalSolverConfig cfg;
  cfg.max_iterations = 100;
  const auto opt =
      alloc::solve_optimal(h, Watts{GetParam()}, tb.budget, cfg);
  const auto polished =
      alloc::polish_binary(h, opt.allocation, Watts{GetParam()}, tb.budget,
                           Amperes{0.9});
  EXPECT_LE(polished.power_used_w, GetParam() + 1e-9);
  for (std::size_t j = 0; j < 36; ++j) {
    const double total = polished.allocation.tx_total_swing(j).value();
    EXPECT_TRUE(total < 1e-9 || std::fabs(total - 0.9) < 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, PolishSweep,
                         ::testing::Values(0.2, 0.5, 0.8, 1.1, 1.4, 2.0));

}  // namespace
}  // namespace densevlc
