// Cross-module integration tests: the paper's headline behaviours.
#include <gtest/gtest.h>

#include <cmath>

#include "alloc/assignment.hpp"
#include "alloc/baselines.hpp"
#include "alloc/optimal.hpp"
#include "common/stats.hpp"
#include "core/beamspot.hpp"
#include "core/prober.hpp"
#include "scenario/scenarios.hpp"
#include "sync/nlos_sync.hpp"
#include "sync/timesync.hpp"

namespace densevlc {
namespace {

TEST(EndToEnd, SyncMethodsOrderAsTable4) {
  // Table 4's punchline: NLOS VLC < NTP/PTP < no synchronization.
  Rng rng{1};
  const sync::TimeSyncConfig ts;
  const double none = sync::measure_sync_delay(sync::SyncMethod::kNone, ts,
                                               100e3, 500, 40, rng);
  const double ptp = sync::measure_sync_delay(sync::SyncMethod::kNtpPtp, ts,
                                              100e3, 500, 40, rng);
  sync::NlosSyncConfig nc;
  sync::NlosSynchronizer nlos{nc};
  const auto errors = nlos.measure_errors(40, rng);
  ASSERT_FALSE(errors.empty());
  const double nlos_median = stats::median(errors);
  EXPECT_LT(nlos_median, ptp);
  EXPECT_LT(ptp, none);
}

TEST(EndToEnd, MeasuredChannelDrivesSameBeamspotsAsTruth) {
  // Probe the channel at waveform level, run the heuristic on the
  // measurement, and confirm the strongest TXs selected match the ones
  // the true channel would select.
  const auto tb = core::make_experimental_testbed();
  const auto truth = tb.channel_for(scenario::fig7_rx_positions());
  core::ChannelProber prober{tb.led, phy::OokParams{},
                             phy::FrontEndConfig{}, 0.9};
  Rng rng{2};
  const auto measured = prober.probe_matrix(truth, rng);

  alloc::AssignmentOptions opts;
  const auto from_truth =
      alloc::heuristic_allocate(truth, 1.3, Watts{0.3}, tb.budget, opts);
  const auto from_measurement =
      alloc::heuristic_allocate(measured, 1.3, Watts{0.3}, tb.budget, opts);
  // The few strongest assignments agree between truth and measurement.
  std::size_t agreements = 0;
  std::size_t assigned = 0;
  for (std::size_t j = 0; j < 36; ++j) {
    for (std::size_t k = 0; k < 4; ++k) {
      if (from_measurement.allocation.swing(j, k) > 0.0) {
        ++assigned;
        if (from_truth.allocation.swing(j, k) > 0.0) ++agreements;
      }
    }
  }
  ASSERT_GT(assigned, 0u);
  EXPECT_GE(agreements * 4, assigned * 3);  // >= 75% agreement
}

TEST(EndToEnd, Fig21CrossoverExists) {
  // DenseVLC's throughput-vs-power curve must pass through SISO's
  // operating point region and reach D-MISO's throughput at far less
  // power (the 2.3x power-efficiency headline).
  const auto tb = core::make_experimental_testbed();
  const auto h = tb.channel_for(scenario::fig7_rx_positions());
  auto sum_tput = [&](const channel::Allocation& a) {
    double s = 0.0;
    for (double t : channel::throughput_bps(h, a, tb.budget)) s += t;
    return s;
  };

  const auto siso = alloc::siso_nearest_tx(h, Amperes{0.9}, tb.budget);
  const auto dmiso = alloc::dmiso_all_tx(h, 9, Amperes{0.9}, tb.budget);
  const double siso_tput = sum_tput(siso.allocation);
  const double dmiso_tput = sum_tput(dmiso.allocation);

  alloc::AssignmentOptions opts;
  // At SISO's power, DenseVLC is at least comparable.
  const auto dense_at_siso = alloc::heuristic_allocate(
      h, 1.3, Watts{siso.power_used_w + 1e-9}, tb.budget, opts);
  EXPECT_GE(sum_tput(dense_at_siso.allocation), siso_tput * 0.9);

  // DenseVLC reaches >= 94% of D-MISO's throughput with significantly
  // less power (the paper measures 2.3x; our model lands near 1.8x).
  double needed_power = dmiso.power_used_w;
  for (double budget = 0.1; budget <= dmiso.power_used_w; budget += 0.05) {
    const auto dense =
        alloc::heuristic_allocate(h, 1.3, Watts{budget}, tb.budget, opts);
    if (sum_tput(dense.allocation) >= 0.94 * dmiso_tput) {
      needed_power = budget;
      break;
    }
  }
  EXPECT_LT(needed_power, dmiso.power_used_w / 1.5);
}

TEST(EndToEnd, OptimalConfirmsBinarySwingInsight) {
  // Insight 2: at the solver's optimum, TXs sit at (near) zero or (near)
  // full swing; intermediate levels are rare.
  const auto tb = core::make_simulation_testbed();
  const auto h = tb.channel_for(scenario::fig7_rx_positions());
  alloc::OptimalSolverConfig cfg;
  cfg.max_iterations = 200;
  const auto res = alloc::solve_optimal(h, Watts{0.8}, tb.budget, cfg);
  std::size_t active = 0;
  std::size_t extreme = 0;
  for (std::size_t j = 0; j < 36; ++j) {
    const double total = res.allocation.tx_total_swing(j).value();
    if (total < 0.02) continue;
    ++active;
    if (total > 0.75 * 0.9) ++extreme;
  }
  ASSERT_GT(active, 0u);
  EXPECT_GE(static_cast<double>(extreme) / static_cast<double>(active),
            0.6);
}

TEST(EndToEnd, NlosSyncedBeamspotDeliversWhereUnsyncedFails) {
  // Table 5 in miniature: one RX under four TXs; aligned transmission
  // succeeds, typical no-sync skew fails.
  const auto tb = core::make_experimental_testbed();
  core::JointTransmission jt{tb.led, phy::OokParams{},
                             phy::FrontEndConfig{}};
  const auto h = tb.channel_for({{1.0, 0.5, 0.0}});  // center of TX2/3/8/9
  phy::MacFrame frame;
  frame.payload.assign(60, 0x5A);

  Rng rng{3};
  // NLOS-synced: sub-microsecond offsets.
  std::vector<core::ServingTx> synced;
  std::vector<core::ServingTx> unsynced;
  std::size_t idx = 0;
  for (std::size_t tx : {1u, 2u, 7u, 8u}) {
    const double gain = h.gain(tx, 0);
    synced.push_back({tx, gain, 0.9, idx < 2 ? 0.0 : 0.6e-6});
    unsynced.push_back({tx, gain, 0.9, idx < 2 ? 0.0 : 40e-6});
    ++idx;
  }
  EXPECT_TRUE(jt.transmit(synced, frame, rng).delivered);
  EXPECT_FALSE(jt.transmit(unsynced, frame, rng).delivered);
}

TEST(EndToEnd, HeuristicKappaSweepMatchesFig11Shape) {
  // kappa = 1.2/1.3 outperform 1.0 (too interference-shy) at moderate
  // budgets on the Fig. 7 instance.
  const auto tb = core::make_simulation_testbed();
  const auto h = tb.channel_for(scenario::fig7_rx_positions());
  alloc::AssignmentOptions opts;
  auto sum_tput = [&](double kappa) {
    const auto res =
        alloc::heuristic_allocate(h, kappa, Watts{1.2}, tb.budget, opts);
    double s = 0.0;
    for (double t : channel::throughput_bps(h, res.allocation, tb.budget)) {
      s += t;
    }
    return s;
  };
  const double t10 = sum_tput(1.0);
  const double t13 = sum_tput(1.3);
  EXPECT_GT(t13, t10);
}

}  // namespace
}  // namespace densevlc
