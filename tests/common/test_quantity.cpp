// Tests for the Quantity<Dim> layer (common/quantity.hpp) and the units::
// conversion helpers: round trips, arithmetic, and the dimension-derivation
// identities the physics core leans on (Eq. 10: P_C = r * (Isw/2)^2).
#include "common/quantity.hpp"

#include <gtest/gtest.h>

#include <type_traits>

#include "common/units.hpp"

namespace densevlc {
namespace {

// ---------------------------------------------------------------------
// units:: conversion helpers round-trip.

TEST(Units, MilliampRoundTrip) {
  EXPECT_DOUBLE_EQ(units::mA(450.0), 0.45);
  EXPECT_DOUBLE_EQ(units::to_mA(units::mA(450.0)), 450.0);
  EXPECT_DOUBLE_EQ(units::to_mA(Amperes{0.036}), 36.0);
}

TEST(Units, MilliwattRoundTrip) {
  EXPECT_DOUBLE_EQ(units::mW(2000.0), 2.0);
  EXPECT_DOUBLE_EQ(units::to_mW(units::mW(123.0)), 123.0);
  EXPECT_DOUBLE_EQ(units::to_mW(Watts{1.5}), 1500.0);
}

TEST(Units, DegreeRadianRoundTrip) {
  EXPECT_DOUBLE_EQ(units::deg_to_rad(180.0), kPi);
  EXPECT_DOUBLE_EQ(units::rad_to_deg(kPi / 2.0), 90.0);
  for (double deg : {-60.0, 0.0, 12.5, 45.0, 120.0}) {
    EXPECT_NEAR(units::rad_to_deg(units::deg_to_rad(deg)), deg, 1e-12);
  }
}

TEST(Units, TimeAndFrequencyHelpers) {
  EXPECT_DOUBLE_EQ(units::us(50.0), 5e-5);
  EXPECT_DOUBLE_EQ(units::to_us(units::us(7.0)), 7.0);
  EXPECT_DOUBLE_EQ(units::to_us(Seconds{1e-3}), 1000.0);
  EXPECT_DOUBLE_EQ(units::MHz(1.0), 1e6);
  EXPECT_DOUBLE_EQ(units::kHz(200.0), 2e5);
  EXPECT_DOUBLE_EQ(units::mm2(1.0), 1e-6);
  EXPECT_DOUBLE_EQ(units::to_Mbps(BitsPerSecond{2.5e6}), 2.5);
}

// ---------------------------------------------------------------------
// Quantity arithmetic within one dimension.

TEST(Quantity, SameDimensionArithmetic) {
  Watts p{1.5};
  p += Watts{0.5};
  EXPECT_DOUBLE_EQ(p.value(), 2.0);
  p -= Watts{1.0};
  EXPECT_DOUBLE_EQ(p.value(), 1.0);
  p *= 4.0;
  EXPECT_DOUBLE_EQ(p.value(), 4.0);
  p /= 2.0;
  EXPECT_DOUBLE_EQ(p.value(), 2.0);
  EXPECT_DOUBLE_EQ((Watts{3.0} - Watts{1.0}).value(), 2.0);
  EXPECT_DOUBLE_EQ((-Watts{3.0}).value(), -3.0);
  EXPECT_DOUBLE_EQ((2.0 * Watts{3.0}).value(), 6.0);
  EXPECT_DOUBLE_EQ((Watts{3.0} / 2.0).value(), 1.5);
}

TEST(Quantity, Comparisons) {
  EXPECT_LT(Amperes{0.1}, Amperes{0.2});
  EXPECT_GE(Amperes{0.2}, Amperes{0.2});
  EXPECT_EQ(Lux{300.0}, Lux{300.0});
  EXPECT_NE(Lux{300.0}, Lux{301.0});
}

// ---------------------------------------------------------------------
// Dimension derivation identities.

TEST(Quantity, CurrentSquaredTimesResistanceIsPower) {
  // Eq. 10: per-TX communication power r * (Isw/2)^2.
  const Amperes half_swing{0.45};
  const Ohms r{0.2188};
  const Watts p = half_swing * half_swing * r;
  EXPECT_NEAR(p.value(), 0.2188 * 0.45 * 0.45, 1e-15);
  static_assert(std::is_same_v<decltype(Amperes{} * Ohms{}), Volts>);
  static_assert(std::is_same_v<decltype(Volts{} * Amperes{}), Watts>);
}

TEST(Quantity, SqrtOfPowerOverResistanceIsCurrent) {
  const Watts p{0.0443};  // 0.45^2 * 0.2188
  const Ohms r{0.2188};
  const Amperes i = sqrt(p / r);
  EXPECT_NEAR(i.value(), 0.45, 1e-3);
  static_assert(
      std::is_same_v<decltype(sqrt(AmpsSquaredPerHertz{} * Hertz{})),
                     Amperes>,
      "front-end noise: sqrt(N0 * B) is a current sigma");
}

TEST(Quantity, PowerTimesTimeIsEnergy) {
  const Joules e = Watts{2.0} * Seconds{3.0};
  EXPECT_DOUBLE_EQ(e.value(), 6.0);
}

TEST(Quantity, PhotometryChain) {
  // W -> lm via efficacy, lm -> lx over an area.
  const Lumens flux = Watts{2.0} * kWhiteLedEfficacy;
  EXPECT_DOUBLE_EQ(flux.value(), 600.0);
  const Lux e = flux / SquareMeters{2.0};
  EXPECT_DOUBLE_EQ(e.value(), 300.0);
  static_assert(std::is_same_v<decltype(Lux{} * SquareMeters{}), Lumens>);
}

TEST(Quantity, FullyCancelledRatioIsDouble) {
  static_assert(std::is_same_v<decltype(Watts{} / Watts{}), double>);
  const double efficiency = Watts{1.0} / Watts{4.0};
  EXPECT_DOUBLE_EQ(efficiency, 0.25);
  const double inv = 2.0 / (Seconds{4.0} * Hertz{0.5});
  EXPECT_DOUBLE_EQ(inv, 1.0);
}

TEST(Quantity, DataAxisKeepsBpsDistinctFromHz) {
  static_assert(
      !std::is_same_v<BitsPerSecond, Hertz>,
      "throughput and bandwidth share s^-1 but differ on the data axis");
  static_assert(
      std::is_same_v<decltype(BitsPerSecond{} / Hertz{}), Bits>,
      "bit/s over Hz is spectral efficiency in bits");
  const Bits eff = BitsPerSecond{2e6} / Hertz{1e6};
  EXPECT_DOUBLE_EQ(eff.value(), 2.0);
}

TEST(Quantity, AbsPreservesDimension) {
  EXPECT_DOUBLE_EQ(abs(Amperes{-0.3}).value(), 0.3);
  static_assert(std::is_same_v<decltype(abs(Meters{})), Meters>);
}

// ---------------------------------------------------------------------
// User-defined literals.

TEST(Quantity, LiteralsProduceBaseUnits) {
  EXPECT_DOUBLE_EQ((36.0_mA).value(), 0.036);
  EXPECT_DOUBLE_EQ((450.0_mA).value(), (0.45_A).value());
  EXPECT_DOUBLE_EQ((2.0_W).value(), 2.0);
  EXPECT_DOUBLE_EQ((250.0_mW).value(), 0.25);
  EXPECT_DOUBLE_EQ((1.0_MHz).value(), 1e6);
  EXPECT_DOUBLE_EQ((200.0_kHz).value(), 2e5);
  EXPECT_DOUBLE_EQ((0.8_m).value(), 0.8);
  EXPECT_DOUBLE_EQ((800.0_mm).value(), 0.8);
  EXPECT_DOUBLE_EQ((5.0_ms).value(), 5e-3);
  EXPECT_DOUBLE_EQ((300.0_lx).value(), 300.0);
  EXPECT_DOUBLE_EQ((1.5_Mbps).value(), 1.5e6);
  EXPECT_DOUBLE_EQ((0.2188_Ohm).value(), 0.2188);
}

TEST(Quantity, LiteralsComposeWithUnitsHelpers) {
  // Literal and helper agree: 450 mA both ways.
  EXPECT_DOUBLE_EQ((450.0_mA).value(), units::mA(450.0));
  EXPECT_DOUBLE_EQ(units::to_mA(450.0_mA), 450.0);
  EXPECT_DOUBLE_EQ(units::to_Mbps(1.5_Mbps), 1.5);
}

// The wrapper adds no storage: a Quantity is exactly one double.
static_assert(sizeof(Watts) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Watts>);

}  // namespace
}  // namespace densevlc
