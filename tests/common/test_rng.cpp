// Tests for the deterministic RNG wrapper.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_pool.hpp"

namespace densevlc {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInRange) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng{8};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.5);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.5);
  }
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng{9};
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const auto v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (int count : seen) EXPECT_GT(count, 800);  // roughly uniform
}

TEST(Rng, GaussianMomentsMatch) {
  Rng rng{11};
  std::vector<double> samples(50000);
  for (double& s : samples) s = rng.gaussian();
  EXPECT_NEAR(stats::mean(samples), 0.0, 0.02);
  EXPECT_NEAR(stats::stddev(samples), 1.0, 0.02);
}

TEST(Rng, GaussianScalesMeanAndSigma) {
  Rng rng{12};
  std::vector<double> samples(50000);
  for (double& s : samples) s = rng.gaussian(5.0, 2.0);
  EXPECT_NEAR(stats::mean(samples), 5.0, 0.05);
  EXPECT_NEAR(stats::stddev(samples), 2.0, 0.05);
}

TEST(Rng, BernoulliProbability) {
  Rng rng{13};
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng{14};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{21};
  Rng child = parent.fork();
  // The child stream must not replay the parent's continuation.
  Rng parent_copy{21};
  (void)parent_copy.fork();
  double max_diff = 0.0;
  for (int i = 0; i < 100; ++i) {
    max_diff = std::max(max_diff,
                        std::fabs(child.uniform() - parent.uniform()));
  }
  EXPECT_GT(max_diff, 0.01);
}

TEST(Rng, SplitIsPureFunctionOfSeedAndStream) {
  Rng a{77};
  // Advancing the parent must not move its split streams: split() keys
  // off the construction seed, not the engine state.
  for (int i = 0; i < 50; ++i) (void)a.uniform();
  Rng fresh{77};
  for (std::uint64_t stream = 0; stream < 8; ++stream) {
    Rng from_advanced = a.split(stream);
    Rng from_fresh = fresh.split(stream);
    for (int i = 0; i < 20; ++i) {
      EXPECT_DOUBLE_EQ(from_advanced.uniform(), from_fresh.uniform());
    }
  }
}

TEST(Rng, SplitStreamsAreDistinct) {
  Rng parent{123};
  Rng s0 = parent.split(0);
  Rng s1 = parent.split(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (s0.uniform() == s1.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
  // And stream 0 is not the parent stream replayed.
  Rng parent_copy{123};
  Rng s0_copy = parent_copy.split(0);
  equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (s0_copy.uniform() == parent_copy.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, SeedStreamConstructorMatchesSplit) {
  Rng parent{0xABCD};
  Rng via_split = parent.split(9);
  Rng via_ctor{0xABCD, 9};
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(via_split.uniform(), via_ctor.uniform());
  }
}

TEST(Rng, SplitStreamsReproduceAcrossThreadCounts) {
  // The parallel-use pattern: item i draws from split(i). The drawn
  // values are a function of (seed, i) alone, so any scheduling of items
  // over threads yields the same per-item sequences.
  const Rng base{0x5EED};
  std::vector<double> serial(64);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    Rng stream = base.split(i);
    serial[i] = stream.gaussian() + stream.uniform();
  }
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    set_global_threads(threads);
    std::vector<double> parallel(serial.size());
    parallel_for(0, parallel.size(), [&](std::size_t i) {
      Rng stream = base.split(i);
      parallel[i] = stream.gaussian() + stream.uniform();
    });
    EXPECT_EQ(parallel, serial) << threads << " threads";
  }
  set_global_threads(0);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng{31};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto shuffled = v;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

}  // namespace
}  // namespace densevlc
