// Tests for the descriptive-statistics helpers.
#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace densevlc::stats {
namespace {

TEST(Stats, MeanOfKnownValues) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stats, EmptyInputsAreZero) {
  const std::vector<double> v;
  EXPECT_DOUBLE_EQ(mean(v), 0.0);
  EXPECT_DOUBLE_EQ(variance(v), 0.0);
  EXPECT_DOUBLE_EQ(median(v), 0.0);
  EXPECT_DOUBLE_EQ(min(v), 0.0);
  EXPECT_DOUBLE_EQ(max(v), 0.0);
}

TEST(Stats, VarianceUnbiased) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Known dataset: population variance 4, sample variance 4 * 8/7.
  EXPECT_NEAR(variance(v), 4.0 * 8.0 / 7.0, 1e-12);
}

TEST(Stats, MedianOddAndEven) {
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 10.0);
}

TEST(Stats, QuantileClampsP) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 2.0), 3.0);
}

TEST(Stats, Ci95KnownFormula) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  const double expected = 1.96 * stddev(v) / std::sqrt(5.0);
  EXPECT_DOUBLE_EQ(ci95_halfwidth(v), expected);
}

TEST(Stats, EmpiricalCdfMonotoneAndEndsAtOne) {
  const std::vector<double> v{3.0, 1.0, 2.0, 2.0, 5.0};
  const auto cdf = empirical_cdf(v);
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].cdf, cdf[i - 1].cdf);
  }
  EXPECT_DOUBLE_EQ(cdf.back().cdf, 1.0);
}

TEST(Stats, EmpiricalCdfCollapsesTies) {
  const std::vector<double> v{2.0, 2.0, 2.0};
  const auto cdf = empirical_cdf(v);
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 2.0);
  EXPECT_DOUBLE_EQ(cdf[0].cdf, 1.0);
}

TEST(Stats, HistogramBinsAndClamps) {
  const std::vector<double> v{-1.0, 0.1, 0.5, 0.9, 2.0};
  const auto h = histogram(v, 0.0, 1.0, 2);
  ASSERT_EQ(h.counts.size(), 2u);
  EXPECT_EQ(h.counts[0], 2u);  // -1.0 clamps in, 0.1
  EXPECT_EQ(h.counts[1], 3u);  // 0.5, 0.9, 2.0 clamps in
  EXPECT_EQ(h.total, 5u);
  EXPECT_DOUBLE_EQ(h.probability(0), 0.4);
}

TEST(Stats, SummaryBundlesAllFields) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  const auto s = summarize(v);
  EXPECT_EQ(s.n, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

}  // namespace
}  // namespace densevlc::stats
