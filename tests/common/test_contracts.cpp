// Death tests for the runtime-contract layer (common/contracts.hpp).
//
// Each test drives a real API into a contract violation and checks that
// the process aborts with the expected message. When contracts are
// compiled out (DENSEVLC_CONTRACTS=OFF) the whole suite is skipped —
// violations are then undefined behavior by design.
#include "common/contracts.hpp"

#include <gtest/gtest.h>

#include "core/trace.hpp"
#include "phy/gf256.hpp"
#include "common/event_queue.hpp"

namespace densevlc {
namespace {

#if defined(DVLC_NO_CONTRACTS)

TEST(Contracts, CompiledOut) {
  GTEST_SKIP() << "contracts disabled (DVLC_NO_CONTRACTS)";
}

#else

using ContractsDeathTest = ::testing::Test;

TEST(ContractsDeathTest, TraceRecorderRejectsOutOfRangeRxInMeanThroughput) {
  core::TraceRecorder trace;
  trace.record_epoch(Seconds{0.0}, {1e6, 2e6}, {}, Watts{0.1});
  EXPECT_DEATH(static_cast<void>(trace.mean_throughput(9)),
               "RX index out of range in mean_throughput");
}

TEST(ContractsDeathTest, TraceRecorderRejectsOutOfRangeRxInLeaderChanges) {
  core::TraceRecorder trace;
  trace.record_epoch(Seconds{0.0}, {1e6}, {}, Watts{0.1});
  EXPECT_DEATH(static_cast<void>(trace.leader_changes(3)),
               "RX index out of range in leader_changes");
}

TEST(ContractsDeathTest, TraceRecorderRejectsRxCountChange) {
  core::TraceRecorder trace;
  trace.record_epoch(Seconds{0.0}, {1e6, 2e6}, {}, Watts{0.1});
  EXPECT_DEATH(trace.record_epoch(Seconds{1.0}, {1e6}, {}, Watts{0.1}),
               "RX count changed between epochs");
}

TEST(ContractsDeathTest, TraceRecorderRejectsOutOfRangeBeamspotRx) {
  core::TraceRecorder trace;
  core::Beamspot spot;
  spot.rx = 5;  // only 2 RXs in this epoch
  EXPECT_DEATH(trace.record_epoch(Seconds{0.0}, {1e6, 2e6}, {spot}, Watts{0.1}),
               "beamspot RX index out of range");
}

TEST(ContractsDeathTest, EventQueueRejectsEmptyCallback) {
  Simulator simulator;
  EXPECT_DEATH(simulator.schedule_in(SimTime::from_ms(1), nullptr),
               "scheduled callback must not be empty");
}

TEST(ContractsDeathTest, Gf256RejectsDivisionByZero) {
  EXPECT_DEATH(static_cast<void>(phy::gf256::div(17, 0)),
               "GF\\(256\\) division by zero");
}

TEST(ContractsDeathTest, Gf256RejectsInverseOfZero) {
  EXPECT_DEATH(static_cast<void>(phy::gf256::inverse(0)),
               "GF\\(256\\) inverse of zero");
}

TEST(ContractsDeathTest, MessageNamesExpressionAndLocation) {
  // The diagnostic must carry enough context to debug without a core dump:
  // macro kind, failing expression, and file:line.
  EXPECT_DEATH(static_cast<void>(phy::gf256::div(1, 0)),
               "DVLC_EXPECT.*b != 0.*gf256\\.cpp");
}

#endif  // DVLC_NO_CONTRACTS

}  // namespace
}  // namespace densevlc
