// Tests for the PGM image writer.
#include "common/pgm.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace densevlc {
namespace {

ScalarField gradient(std::size_t w, std::size_t h) {
  ScalarField f;
  f.width = w;
  f.height = h;
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      f.values.push_back(static_cast<double>(x + y));
    }
  }
  return f;
}

TEST(Pgm, HeaderAndSize) {
  const auto bytes = to_pgm(gradient(4, 3));
  ASSERT_FALSE(bytes.empty());
  const std::string header(bytes.begin(), bytes.begin() + 11);
  EXPECT_EQ(header, "P5\n4 3\n255\n");
  EXPECT_EQ(bytes.size(), 11u + 12u);
}

TEST(Pgm, AutoRangeUsesFullScale) {
  const auto bytes = to_pgm(gradient(4, 3));
  // Min (0) -> 0, max (5) -> 255.
  EXPECT_EQ(bytes[11], 0);
  EXPECT_EQ(bytes.back(), 255);
}

TEST(Pgm, ExplicitRangeClips) {
  ScalarField f;
  f.width = 3;
  f.height = 1;
  f.values = {-1.0, 0.5, 2.0};
  const auto bytes = to_pgm(f, 0.0, 1.0);
  EXPECT_EQ(bytes[bytes.size() - 3], 0);    // clipped low
  EXPECT_EQ(bytes[bytes.size() - 2], 128);  // mid
  EXPECT_EQ(bytes.back(), 255);             // clipped high
}

TEST(Pgm, FlatFieldDoesNotDivideByZero) {
  ScalarField f;
  f.width = 2;
  f.height = 2;
  f.values.assign(4, 7.0);
  const auto bytes = to_pgm(f);
  ASSERT_FALSE(bytes.empty());
}

TEST(Pgm, MalformedFieldRejected) {
  ScalarField bad;
  bad.width = 3;
  bad.height = 3;
  bad.values.assign(5, 0.0);  // wrong size
  EXPECT_TRUE(to_pgm(bad).empty());
  EXPECT_FALSE(write_pgm(bad, "/tmp/densevlc_bad.pgm"));
}

TEST(Pgm, WritesFile) {
  const std::string path = "/tmp/densevlc_pgm_test.pgm";
  EXPECT_TRUE(write_pgm(gradient(8, 8), path));
  std::ifstream in{path, std::ios::binary};
  ASSERT_TRUE(in.good());
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P5");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace densevlc
