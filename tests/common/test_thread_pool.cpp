// Tests for the fixed-size thread pool and its deterministic helpers.
//
// The contract under test: parallel_for / parallel_reduce results are a
// pure function of the input range — never of the thread count — because
// chunk boundaries depend only on the range length and partials combine
// in chunk order. The suite checks the pool mechanics, then the contract
// on the real workloads that use it (gain matrices, illuminance rasters,
// prober sweeps).
#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "channel/model.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/prober.hpp"
#include "illum/illuminance_map.hpp"
#include "scenario/scenarios.hpp"

namespace densevlc {
namespace {

/// Thread counts every determinism assertion sweeps, per the issue:
/// {1, 2, 4, hardware_concurrency} (deduplicated by the loops being
/// idempotent when counts repeat).
std::vector<std::size_t> sweep_thread_counts() {
  return {1, 2, 4, hardware_threads()};
}

/// Restores the default global pool after each test.
class ThreadPoolTest : public ::testing::Test {
 protected:
  ~ThreadPoolTest() override { set_global_threads(0); }
};

TEST_F(ThreadPoolTest, RunsEveryChunkExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    ThreadPool pool{threads};
    std::vector<std::atomic<int>> hits(97);
    pool.run_chunks(hits.size(),
                    [&](std::size_t c) { hits[c].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST_F(ThreadPoolTest, ZeroChunksIsNoop) {
  ThreadPool pool{4};
  pool.run_chunks(0, [](std::size_t) { FAIL() << "chunk ran"; });
}

TEST_F(ThreadPoolTest, PoolIsReusableAcrossBatches) {
  ThreadPool pool{4};
  for (int batch = 0; batch < 50; ++batch) {
    std::atomic<int> count{0};
    pool.run_chunks(8, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 8);
  }
}

TEST_F(ThreadPoolTest, ChunkExceptionPropagatesToCaller) {
  ThreadPool pool{4};
  EXPECT_THROW(pool.run_chunks(16,
                               [](std::size_t c) {
                                 if (c == 7) {
                                   throw std::runtime_error{"chunk 7"};
                                 }
                               }),
               std::runtime_error);
  // The pool must still be serviceable afterwards.
  std::atomic<int> count{0};
  pool.run_chunks(4, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

TEST_F(ThreadPoolTest, ChunkBoundsPartitionTheRange) {
  for (std::size_t n : {1u, 7u, 63u, 64u, 65u, 1000u}) {
    const std::size_t chunks = detail::chunk_count(n);
    std::size_t expected_lo = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const auto [lo, hi] = detail::chunk_bounds(n, chunks, c);
      EXPECT_EQ(lo, expected_lo);
      EXPECT_GT(hi, lo);
      expected_lo = hi;
    }
    EXPECT_EQ(expected_lo, n);
  }
}

TEST_F(ThreadPoolTest, ParallelForCoversRangeDisjointly) {
  for (std::size_t threads : sweep_thread_counts()) {
    set_global_threads(threads);
    std::vector<int> hits(1003, 0);
    parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
              static_cast<int>(hits.size()));
  }
}

TEST_F(ThreadPoolTest, NestedParallelForRunsInline) {
  set_global_threads(4);
  EXPECT_EQ(global_threads(), 4u);
  std::atomic<int> total{0};
  parallel_for(0, 8, [&](std::size_t) {
    // Reentrant use from inside a chunk must not deadlock.
    parallel_for(0, 8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST_F(ThreadPoolTest, RepeatedNestedParallelForPerChunkDoesNotDeadlock) {
  // Regression: a chunk body that makes TWO sequential nested parallel
  // calls. The first nested call's inline scope must not mark the thread
  // idle on exit — if it does, the second call enqueues on the pool as a
  // top-level batch and deadlocks against its own outer batch. Trip
  // condition needs more items than kMaxChunks so chunks hold several
  // indices (this is how the Monte-Carlo campaign runner found it).
  set_global_threads(4);
  const std::size_t n = detail::kMaxChunks * 2 + 5;
  std::vector<int> sums(n, 0);
  parallel_for(0, n, [&](std::size_t i) {
    int local = 0;
    // Nested calls run inline on the calling thread, so each ++local is
    // single-threaded by design.
    // DVLC_LINT_WAIVE(par-shared-write): nested parallel_for runs inline
    parallel_for(0, 4, [&](std::size_t) { ++local; });
    // DVLC_LINT_WAIVE(par-shared-write): nested parallel_for runs inline
    parallel_for(0, 4, [&](std::size_t) { ++local; });
    sums[i] = local;
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(sums[i], 8);
}

TEST_F(ThreadPoolTest, ReduceIsBitIdenticalAcrossThreadCounts) {
  // A floating-point sum whose result depends on association order:
  // magnitudes spread over 12 decades, so any re-grouping would move the
  // low bits around.
  Rng rng{0xC0FFEE};
  std::vector<double> values(5000);
  for (double& v : values) v = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(-6.0, 6.0));

  std::vector<double> sums;
  for (std::size_t threads : sweep_thread_counts()) {
    set_global_threads(threads);
    sums.push_back(parallel_reduce(
        0, values.size(), 0.0, [&](std::size_t i) { return values[i]; },
        [](double a, double b) { return a + b; }));
  }
  for (std::size_t i = 1; i < sums.size(); ++i) {
    EXPECT_EQ(sums[0], sums[i]) << "thread count index " << i;
  }
}

TEST_F(ThreadPoolTest, ReduceCombinesPartialsInChunkOrder) {
  // A non-commutative combine (string concatenation) exposes any
  // out-of-order merging immediately.
  std::string expected;
  for (int i = 0; i < 300; ++i) expected += std::to_string(i) + ",";
  for (std::size_t threads : sweep_thread_counts()) {
    set_global_threads(threads);
    const std::string joined = parallel_reduce(
        0, 300, std::string{},
        [](std::size_t i) { return std::to_string(i) + ","; },
        [](std::string a, const std::string& b) {
          a += b;
          return a;
        });
    EXPECT_EQ(joined, expected) << threads << " threads";
  }
}

// ---------------------------------------------------------------------
// Determinism of the real parallel workloads across thread counts.

TEST_F(ThreadPoolTest, ChannelMatrixBitIdenticalAcrossThreadCounts) {
  const auto tb = core::make_simulation_testbed();
  const auto instances = scenario::random_instances(3, 0.25, tb.room, 0xDE7);
  for (const auto& rx_xy : instances) {
    std::vector<std::vector<double>> gains;
    for (std::size_t threads : sweep_thread_counts()) {
      set_global_threads(threads);
      const auto h = tb.channel_for(rx_xy);
      std::vector<double> flat;
      for (std::size_t j = 0; j < h.num_tx(); ++j) {
        for (std::size_t k = 0; k < h.num_rx(); ++k) {
          flat.push_back(h.gain(j, k));
        }
      }
      gains.push_back(std::move(flat));
    }
    for (std::size_t i = 1; i < gains.size(); ++i) {
      EXPECT_EQ(gains[0], gains[i]);
    }
  }
}

TEST_F(ThreadPoolTest, IlluminanceMapBitIdenticalAcrossThreadCounts) {
  const auto tb = core::make_simulation_testbed();
  std::vector<std::vector<double>> rasters;
  for (std::size_t threads : sweep_thread_counts()) {
    set_global_threads(threads);
    const illum::IlluminanceMap map{tb.room,     tb.tx_poses(), tb.emitter,
                                    tb.led,      Meters{0.8},   41,
                                    kWhiteLedEfficacy};
    std::vector<double> flat;
    for (std::size_t iy = 0; iy < 41; ++iy) {
      for (std::size_t ix = 0; ix < 41; ++ix) {
        flat.push_back(map.at(ix, iy).value());
      }
    }
    rasters.push_back(std::move(flat));
  }
  for (std::size_t i = 1; i < rasters.size(); ++i) {
    EXPECT_EQ(rasters[0], rasters[i]);
  }
}

TEST_F(ThreadPoolTest, ProbeMatrixBitIdenticalAcrossThreadCounts) {
  const auto tb = core::make_simulation_testbed();
  const auto truth = tb.channel_for(scenario::fig7_rx_positions());
  core::ChannelProber prober{tb.led, phy::OokParams{}, phy::FrontEndConfig{},
                             0.9};
  std::vector<std::vector<double>> sweeps;
  for (std::size_t threads : sweep_thread_counts()) {
    set_global_threads(threads);
    Rng rng{0xBEE5};  // same stream position for every sweep
    const auto measured = prober.probe_matrix(truth, rng);
    std::vector<double> flat;
    for (std::size_t j = 0; j < measured.num_tx(); ++j) {
      for (std::size_t k = 0; k < measured.num_rx(); ++k) {
        flat.push_back(measured.gain(j, k));
      }
    }
    sweeps.push_back(std::move(flat));
  }
  for (std::size_t i = 1; i < sweeps.size(); ++i) {
    EXPECT_EQ(sweeps[0], sweeps[i]);
  }
}

}  // namespace
}  // namespace densevlc
