// Tests for the durable append-only journal: framing round-trips, crash
// recovery over every truncation point, corrupt-tail isolation, and the
// atomic checkpoint writer.
#include "common/journal.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace densevlc::journal {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch path per test (removed up front, not after: a failing
/// test leaves its file behind for inspection).
std::string scratch_path(const std::string& name) {
  const fs::path p = fs::temp_directory_path() / ("dvlc_journal_" + name);
  std::error_code ec;
  fs::remove(p, ec);
  return p.string();
}

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

std::string read_raw(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  return {std::istreambuf_iterator<char>{in},
          std::istreambuf_iterator<char>{}};
}

void write_raw(const std::string& path, const std::string& contents) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  ASSERT_TRUE(out.good());
}

const std::vector<std::vector<std::uint8_t>>& sample_records() {
  static const std::vector<std::vector<std::uint8_t>> records = {
      bytes_of("alpha"), bytes_of(""), bytes_of("a much longer record "
                                               "with some payload text"),
      bytes_of("tail")};
  return records;
}

std::string write_sample_journal(const std::string& name) {
  const std::string path = scratch_path(name);
  auto writer = JournalWriter::open(path);
  EXPECT_TRUE(writer.has_value());
  for (const auto& record : sample_records()) {
    EXPECT_TRUE(writer->append(record));
  }
  writer->close();
  EXPECT_TRUE(writer->ok());
  return path;
}

TEST(Crc32, KnownVector) {
  // The canonical CRC-32 check value over "123456789".
  const auto data = bytes_of("123456789");
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Journal, RoundTrip) {
  const std::string path = write_sample_journal("roundtrip");
  const JournalRecovery recovery = read_journal(path);
  EXPECT_FALSE(recovery.missing);
  EXPECT_EQ(recovery.dropped_bytes, 0u);
  ASSERT_EQ(recovery.records.size(), sample_records().size());
  for (std::size_t i = 0; i < recovery.records.size(); ++i) {
    EXPECT_EQ(recovery.records[i], sample_records()[i]) << "record " << i;
  }
  EXPECT_EQ(recovery.valid_bytes, fs::file_size(path));
}

TEST(Journal, ReopenContinuesSameFile) {
  const std::string path = scratch_path("reopen");
  {
    auto writer = JournalWriter::open(path);
    ASSERT_TRUE(writer.has_value());
    ASSERT_TRUE(writer->append(bytes_of("first")));
  }
  {
    auto writer = JournalWriter::open(path);
    ASSERT_TRUE(writer.has_value());
    ASSERT_TRUE(writer->append(bytes_of("second")));
  }
  const JournalRecovery recovery = read_journal(path);
  ASSERT_EQ(recovery.records.size(), 2u);
  EXPECT_EQ(recovery.records[0], bytes_of("first"));
  EXPECT_EQ(recovery.records[1], bytes_of("second"));
}

TEST(Journal, MissingFile) {
  const JournalRecovery recovery =
      read_journal(scratch_path("never_written"));
  EXPECT_TRUE(recovery.missing);
  EXPECT_TRUE(recovery.records.empty());
  EXPECT_EQ(recovery.valid_bytes, 0u);
}

TEST(Journal, EmptyFile) {
  const std::string path = scratch_path("empty");
  write_raw(path, "");
  const JournalRecovery recovery = read_journal(path);
  EXPECT_FALSE(recovery.missing);
  EXPECT_TRUE(recovery.records.empty());
  EXPECT_EQ(recovery.valid_bytes, 0u);
  EXPECT_EQ(recovery.dropped_bytes, 0u);
}

/// A SIGKILL can cut the file at ANY byte: every prefix must recover
/// exactly the records whose frames fit entirely inside it, and count
/// the torn remainder as dropped.
TEST(Journal, TruncationAtEveryByteRecoversLongestValidPrefix) {
  const std::string full_path = write_sample_journal("trunc_src");
  const std::string full = read_raw(full_path);
  ASSERT_FALSE(full.empty());

  // Frame boundaries of the intact file.
  std::vector<std::size_t> frame_end;  // cumulative end offset per record
  std::size_t at = 0;
  for (const auto& record : sample_records()) {
    at += 8 + record.size();
    frame_end.push_back(at);
  }
  ASSERT_EQ(at, full.size());

  const std::string cut_path = scratch_path("trunc_cut");
  for (std::size_t len = 0; len <= full.size(); ++len) {
    write_raw(cut_path, full.substr(0, len));
    const JournalRecovery recovery = read_journal(cut_path);
    std::size_t expect_records = 0;
    std::size_t expect_valid = 0;
    for (std::size_t e : frame_end) {
      if (e <= len) {
        ++expect_records;
        expect_valid = e;
      }
    }
    EXPECT_EQ(recovery.records.size(), expect_records) << "cut at " << len;
    EXPECT_EQ(recovery.valid_bytes, expect_valid) << "cut at " << len;
    EXPECT_EQ(recovery.dropped_bytes, len - expect_valid)
        << "cut at " << len;
    for (std::size_t i = 0; i < recovery.records.size(); ++i) {
      EXPECT_EQ(recovery.records[i], sample_records()[i]);
    }
  }
}

TEST(Journal, FlippedChecksumByteDropsExactlyTheBadSuffix) {
  const std::string path = write_sample_journal("flip_crc");
  std::string full = read_raw(path);
  // Record 0 is "alpha": frame 0 occupies [0, 13). Flip a CRC byte of
  // frame 1 (its header starts at 13; CRC bytes are offsets 17..20).
  full[18] = static_cast<char>(full[18] ^ 0x01);
  write_raw(path, full);
  const JournalRecovery recovery = read_journal(path);
  ASSERT_EQ(recovery.records.size(), 1u);
  EXPECT_EQ(recovery.records[0], bytes_of("alpha"));
  EXPECT_EQ(recovery.valid_bytes, 13u);
  EXPECT_EQ(recovery.dropped_bytes, full.size() - 13u);
}

TEST(Journal, FlippedPayloadByteDropsExactlyTheBadSuffix) {
  const std::string path = write_sample_journal("flip_payload");
  std::string full = read_raw(path);
  // Flip a payload byte of frame 0 ("alpha" starts at offset 8).
  full[9] = static_cast<char>(full[9] ^ 0x80);
  write_raw(path, full);
  const JournalRecovery recovery = read_journal(path);
  EXPECT_TRUE(recovery.records.empty());
  EXPECT_EQ(recovery.valid_bytes, 0u);
  EXPECT_EQ(recovery.dropped_bytes, full.size());
}

TEST(Journal, GarbageAppendedAfterValidRecords) {
  const std::string path = write_sample_journal("garbage");
  std::string full = read_raw(path);
  const std::size_t valid = full.size();
  // 0xFF length words decode as a ~4 GiB payload: rejected as garbage,
  // never trusted.
  full.append(32, static_cast<char>(0xFF));
  write_raw(path, full);
  const JournalRecovery recovery = read_journal(path);
  ASSERT_EQ(recovery.records.size(), sample_records().size());
  EXPECT_EQ(recovery.valid_bytes, valid);
  EXPECT_EQ(recovery.dropped_bytes, 32u);
}

TEST(Journal, KeepBytesTruncatesTheTail) {
  const std::string path = write_sample_journal("keep_bytes");
  // Keep only frame 0 (13 bytes), then append a replacement tail.
  auto writer = JournalWriter::open(path, 13);
  ASSERT_TRUE(writer.has_value());
  ASSERT_TRUE(writer->append(bytes_of("replacement")));
  writer->close();
  const JournalRecovery recovery = read_journal(path);
  ASSERT_EQ(recovery.records.size(), 2u);
  EXPECT_EQ(recovery.records[0], bytes_of("alpha"));
  EXPECT_EQ(recovery.records[1], bytes_of("replacement"));
}

TEST(Journal, OversizedPayloadRejected) {
  const std::string path = scratch_path("oversized");
  auto writer = JournalWriter::open(path);
  ASSERT_TRUE(writer.has_value());
  const std::vector<std::uint8_t> huge((1u << 26) + 1, 0);
  EXPECT_FALSE(writer->append(huge));
  EXPECT_FALSE(writer->ok());
}

TEST(WriteFileAtomic, CreatesAndReplaces) {
  const std::string path = scratch_path("atomic");
  ASSERT_TRUE(write_file_atomic(path, "first contents\n"));
  EXPECT_EQ(read_raw(path), "first contents\n");
  ASSERT_TRUE(write_file_atomic(path, "second contents\n"));
  EXPECT_EQ(read_raw(path), "second contents\n");
  // No temp file left behind next to the target.
  std::size_t siblings = 0;
  for (const auto& entry :
       fs::directory_iterator(fs::path(path).parent_path())) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("dvlc_journal_atomic", 0) == 0) ++siblings;
  }
  EXPECT_EQ(siblings, 1u);
}

TEST(WriteFileAtomic, FailsOnUnwritableDirectory) {
  EXPECT_FALSE(write_file_atomic(
      "/nonexistent_dir_dvlc/artifact.json", "contents"));
}

}  // namespace
}  // namespace densevlc::journal
