// Tests for the fixed-point simulation time type.
#include "common/simtime.hpp"

#include <gtest/gtest.h>

namespace densevlc {
namespace {

TEST(SimTime, DefaultIsZero) {
  EXPECT_EQ(SimTime{}.ns(), 0);
}

TEST(SimTime, FactoryUnits) {
  EXPECT_EQ(SimTime::from_us(3).ns(), 3000);
  EXPECT_EQ(SimTime::from_ms(2).ns(), 2'000'000);
  EXPECT_EQ(SimTime::from_sec(1).ns(), 1'000'000'000);
}

TEST(SimTime, FromSecondsRoundsToNearest) {
  EXPECT_EQ(SimTime::from_seconds(1e-9).ns(), 1);
  EXPECT_EQ(SimTime::from_seconds(1.4e-9).ns(), 1);
  EXPECT_EQ(SimTime::from_seconds(1.6e-9).ns(), 2);
  EXPECT_EQ(SimTime::from_seconds(-1.6e-9).ns(), -2);
}

TEST(SimTime, ArithmeticIsExact) {
  SimTime t;
  const SimTime step = SimTime::from_ns(7);
  for (int i = 0; i < 1'000'000; ++i) t += step;
  EXPECT_EQ(t.ns(), 7'000'000);
}

TEST(SimTime, ComparisonOperators) {
  const SimTime a = SimTime::from_us(1);
  const SimTime b = SimTime::from_us(2);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, SimTime::from_ns(1000));
  EXPECT_LE(a, a);
}

TEST(SimTime, NegationAndSubtraction) {
  const SimTime a = SimTime::from_us(5);
  const SimTime b = SimTime::from_us(8);
  EXPECT_EQ((a - b).ns(), -3000);
  EXPECT_EQ((-a).ns(), -5000);
}

TEST(SimTime, ScalarMultiply) {
  EXPECT_EQ((SimTime::from_ns(125) * 8).ns(), 1000);
}

TEST(SimTime, SecondsRoundTrip) {
  const SimTime t = SimTime::from_seconds(0.125);
  EXPECT_DOUBLE_EQ(t.seconds(), 0.125);
}

}  // namespace
}  // namespace densevlc
