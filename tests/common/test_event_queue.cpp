// Tests for the discrete-event engine.
#include "common/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace densevlc {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator des;
  std::vector<int> order;
  des.schedule_at(SimTime::from_us(30), [&] { order.push_back(3); });
  des.schedule_at(SimTime::from_us(10), [&] { order.push_back(1); });
  des.schedule_at(SimTime::from_us(20), [&] { order.push_back(2); });
  des.run_until(SimTime::from_ms(1));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TiesAreFifo) {
  Simulator des;
  std::vector<int> order;
  const SimTime t = SimTime::from_us(5);
  des.schedule_at(t, [&] { order.push_back(1); });
  des.schedule_at(t, [&] { order.push_back(2); });
  des.schedule_at(t, [&] { order.push_back(3); });
  des.run_until(SimTime::from_ms(1));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NowAdvancesToEventTime) {
  Simulator des;
  SimTime seen{};
  des.schedule_at(SimTime::from_us(42), [&] { seen = des.now(); });
  des.run_until(SimTime::from_ms(1));
  EXPECT_EQ(seen, SimTime::from_us(42));
  EXPECT_EQ(des.now(), SimTime::from_ms(1));  // clamps to limit
}

TEST(Simulator, RunUntilStopsAtLimit) {
  Simulator des;
  int ran = 0;
  des.schedule_at(SimTime::from_us(10), [&] { ++ran; });
  des.schedule_at(SimTime::from_us(200), [&] { ++ran; });
  const auto executed = des.run_until(SimTime::from_us(100));
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(des.pending(), 1u);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator des;
  std::vector<std::int64_t> times;
  des.schedule_at(SimTime::from_us(10), [&] {
    des.schedule_in(SimTime::from_us(5),
                    [&] { times.push_back(des.now().us()); });
  });
  des.run_until(SimTime::from_ms(1));
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 15);
}

TEST(Simulator, SchedulingInPastClampsToNow) {
  Simulator des;
  bool ran = false;
  des.schedule_at(SimTime::from_us(50), [&] {
    des.schedule_at(SimTime::from_us(1), [&] {
      ran = true;
      EXPECT_GE(des.now(), SimTime::from_us(50));
    });
  });
  des.run_until(SimTime::from_ms(1));
  EXPECT_TRUE(ran);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator des;
  bool ran = false;
  const auto id = des.schedule_at(SimTime::from_us(10), [&] { ran = true; });
  EXPECT_TRUE(des.cancel(id));
  EXPECT_FALSE(des.cancel(id));  // second cancel is a no-op
  des.run_until(SimTime::from_ms(1));
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelUnknownIdIsNoOp) {
  Simulator des;
  EXPECT_FALSE(des.cancel(9999));
}

TEST(Simulator, EventsCanChain) {
  Simulator des;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) {
      des.schedule_in(SimTime::from_us(10), tick);
    }
  };
  des.schedule_at(SimTime{}, tick);
  des.run_until(SimTime::from_ms(1));
  EXPECT_EQ(count, 10);
}

TEST(Simulator, RunAllRespectsEventCap) {
  Simulator des;
  std::function<void()> forever = [&] {
    des.schedule_in(SimTime::from_us(1), forever);
  };
  des.schedule_at(SimTime{}, forever);
  const auto executed = des.run_all(100);
  EXPECT_EQ(executed, 100u);
}

TEST(Simulator, PendingCountsLiveEvents) {
  Simulator des;
  const auto a = des.schedule_at(SimTime::from_us(10), [] {});
  des.schedule_at(SimTime::from_us(20), [] {});
  EXPECT_EQ(des.pending(), 2u);
  des.cancel(a);
  EXPECT_EQ(des.pending(), 1u);
}

}  // namespace
}  // namespace densevlc
