// Tests for the table/CSV printer.
#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace densevlc {
namespace {

TEST(Table, PrintsHeadersAndRows) {
  TablePrinter t{{"a", "bb"}};
  t.add_row({"1", "2"});
  std::ostringstream oss;
  t.print(oss);
  const std::string s = oss.str();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_NE(s.find("| 1"), std::string::npos);
}

TEST(Table, CsvHasTagPrefix) {
  TablePrinter t{{"x", "y"}};
  t.add_numeric_row({1.5, 2.5}, 1);
  std::ostringstream oss;
  t.print_csv(oss, "fig1");
  EXPECT_NE(oss.str().find("csv,fig1,x,y"), std::string::npos);
  EXPECT_NE(oss.str().find("csv,fig1,1.5,2.5"), std::string::npos);
}

TEST(Table, ShortRowsRenderEmptyCells) {
  TablePrinter t{{"a", "b", "c"}};
  t.add_row({"only"});
  std::ostringstream oss;
  t.print(oss);  // must not crash; widths accommodate
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(-1.0, 0), "-1");
}

TEST(Table, FmtSiSuffixes) {
  EXPECT_EQ(fmt_si(1.25e6, 2), "1.25M");
  EXPECT_EQ(fmt_si(2500.0, 1), "2.5k");
  EXPECT_EQ(fmt_si(0.5e-6, 1), "500.0n");
  EXPECT_EQ(fmt_si(0.002, 0), "2m");
  EXPECT_EQ(fmt_si(42.0, 0), "42");
}

}  // namespace
}  // namespace densevlc
