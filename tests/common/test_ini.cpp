// Tests for the INI configuration parser.
#include "common/ini.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace densevlc {
namespace {

TEST(Ini, ParsesSectionsAndKeys) {
  const auto cfg = IniConfig::parse(
      "top = 1\n"
      "[room]\n"
      "width = 3.5\n"
      "depth = 4\n"
      "[system]\n"
      "kappa = 1.3\n");
  EXPECT_EQ(cfg.size(), 4u);
  EXPECT_EQ(cfg.get_string("top", ""), "1");
  EXPECT_DOUBLE_EQ(cfg.get_double("room.width", 0.0), 3.5);
  EXPECT_EQ(cfg.get_int("room.depth", 0), 4);
  EXPECT_DOUBLE_EQ(cfg.get_double("system.kappa", 0.0), 1.3);
}

TEST(Ini, CommentsAndWhitespace) {
  const auto cfg = IniConfig::parse(
      "; full line comment\n"
      "# another\n"
      "  key1 =  spaced value \n"
      "key2 = 7 ; trailing comment\n"
      "\n");
  EXPECT_EQ(cfg.get_string("key1", ""), "spaced value");
  EXPECT_EQ(cfg.get_int("key2", 0), 7);
}

TEST(Ini, MalformedLinesReportedButSkipped) {
  const auto cfg = IniConfig::parse(
      "good = 1\n"
      "this line has no equals\n"
      "[unterminated\n"
      "= empty key\n"
      "still_good = 2\n");
  EXPECT_EQ(cfg.get_int("good", 0), 1);
  EXPECT_EQ(cfg.get_int("still_good", 0), 2);
  EXPECT_FALSE(cfg.errors().empty());
}

TEST(Ini, TypedGettersFallBack) {
  const auto cfg = IniConfig::parse("num = abc\nflag = maybe\n");
  EXPECT_DOUBLE_EQ(cfg.get_double("num", 9.5), 9.5);
  EXPECT_EQ(cfg.get_int("num", 3), 3);
  EXPECT_TRUE(cfg.get_bool("flag", true));
  EXPECT_FALSE(cfg.get_bool("missing", false));
  EXPECT_EQ(cfg.get_string("missing", "dflt"), "dflt");
}

TEST(Ini, BoolSpellings) {
  const auto cfg = IniConfig::parse(
      "a = true\nb = 1\nc = yes\nd = on\ne = false\nf = 0\ng = no\n");
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_TRUE(cfg.get_bool("b", false));
  EXPECT_TRUE(cfg.get_bool("c", false));
  EXPECT_TRUE(cfg.get_bool("d", false));
  EXPECT_FALSE(cfg.get_bool("e", true));
  EXPECT_FALSE(cfg.get_bool("f", true));
  EXPECT_FALSE(cfg.get_bool("g", true));
}

TEST(Ini, HasAndGet) {
  const auto cfg = IniConfig::parse("[s]\nk = v\n");
  EXPECT_TRUE(cfg.has("s.k"));
  EXPECT_FALSE(cfg.has("s.other"));
  ASSERT_TRUE(cfg.get("s.k").has_value());
  EXPECT_EQ(*cfg.get("s.k"), "v");
}

TEST(Ini, LastDuplicateWins) {
  const auto cfg = IniConfig::parse("k = 1\nk = 2\n");
  EXPECT_EQ(cfg.get_int("k", 0), 2);
}

TEST(Ini, LoadsFromFile) {
  const std::string path = "/tmp/densevlc_ini_test.ini";
  {
    std::ofstream out{path};
    out << "[test]\nvalue = 42\n";
  }
  const auto cfg = IniConfig::load(path);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->get_int("test.value", 0), 42);
  std::remove(path.c_str());
  EXPECT_FALSE(IniConfig::load("/nonexistent/nowhere.ini").has_value());
}

}  // namespace
}  // namespace densevlc
