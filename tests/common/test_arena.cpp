// Arena helpers and the AlignedVector alignment guarantee.
//
// The SIMD backends (common/simd.hpp) assume warmed arena buffers start
// on a kArenaAlignment boundary; this suite pins that guarantee across
// element types, growth patterns, and moves, and checks the allocator-
// generic arena helpers on both plain and aligned vectors.
#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

namespace densevlc {
namespace {

template <class T>
bool is_arena_aligned(const AlignedVector<T>& v) {
  return reinterpret_cast<std::uintptr_t>(v.data()) % kArenaAlignment == 0;
}

TEST(Arena, AlignedVectorStorageIsAligned) {
  AlignedVector<std::uint8_t> bytes(1);
  AlignedVector<float> floats(3);
  AlignedVector<double> doubles(5);
  EXPECT_TRUE(is_arena_aligned(bytes));
  EXPECT_TRUE(is_arena_aligned(floats));
  EXPECT_TRUE(is_arena_aligned(doubles));
}

TEST(Arena, AlignmentSurvivesGrowthAndShrink) {
  AlignedVector<double> v;
  // Odd growth steps so the allocator sees many distinct sizes; every
  // reallocation must land back on a kArenaAlignment boundary.
  for (std::size_t n = 1; n < 3000; n = n * 2 + 7) {
    arena_resize(v, n);
    ASSERT_TRUE(is_arena_aligned(v)) << "size " << n;
  }
  v.shrink_to_fit();
  EXPECT_TRUE(is_arena_aligned(v));
}

TEST(Arena, AlignmentSurvivesMoveAndCopy) {
  AlignedVector<std::uint8_t> a(100, 0x5A);
  AlignedVector<std::uint8_t> b = a;            // copy allocates fresh
  AlignedVector<std::uint8_t> c = std::move(a); // move adopts storage
  EXPECT_TRUE(is_arena_aligned(b));
  EXPECT_TRUE(is_arena_aligned(c));
  EXPECT_EQ(c[99], 0x5A);
}

TEST(Arena, ResizeKeepsCapacityAndValues) {
  AlignedVector<int> v;
  arena_resize(v, 64);
  for (int i = 0; i < 64; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto cap = v.capacity();
  const int* data = v.data();
  arena_resize(v, 16);
  arena_resize(v, 64);
  EXPECT_EQ(v.capacity(), cap);   // steady state: no reallocation
  EXPECT_EQ(v.data(), data);
  EXPECT_EQ(v[15], 15);           // surviving prefix untouched in place
}

TEST(Arena, ClearAndWarmTrackCapacity) {
  std::vector<double> plain;      // helpers are allocator-generic
  EXPECT_FALSE(arena_warm(plain, 1));
  arena_resize(plain, 32);
  arena_clear(plain);
  EXPECT_TRUE(plain.empty());
  EXPECT_TRUE(arena_warm(plain, 32));
  EXPECT_FALSE(arena_warm(plain, plain.capacity() + 1));

  AlignedVector<float> aligned;
  arena_resize(aligned, 8);
  arena_clear(aligned);
  EXPECT_TRUE(arena_warm(aligned, 8));
}

}  // namespace
}  // namespace densevlc
