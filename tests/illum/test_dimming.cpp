// Tests for luminaire planning (dimming + multi-LED TXs).
#include "illum/dimming.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/testbed.hpp"

namespace densevlc::illum {
namespace {

struct Fixture {
  core::Testbed tb = core::make_simulation_testbed();
  LuminaireDesign design{};  // 500 lux, 1 LED, defaults
};

TEST(Dimming, MeetsTargetLux) {
  Fixture f;
  const auto plan = plan_luminaires(f.tb.room, f.tb.tx_poses(), f.tb.emitter,
                                    f.tb.led.electrical(), f.design);
  EXPECT_TRUE(plan.target_met);
  EXPECT_NEAR(plan.achieved_lux, 500.0, 15.0);
  EXPECT_GT(plan.bias_a, 0.0);
}

TEST(Dimming, LowerTargetLowersBiasAndSwing) {
  Fixture f;
  LuminaireDesign dim = f.design;
  dim.target_lux = 200.0;
  const auto bright = plan_luminaires(f.tb.room, f.tb.tx_poses(),
                                      f.tb.emitter, f.tb.led.electrical(),
                                      f.design);
  const auto dimmed = plan_luminaires(f.tb.room, f.tb.tx_poses(),
                                      f.tb.emitter, f.tb.led.electrical(),
                                      dim);
  EXPECT_LT(dimmed.bias_a, bright.bias_a);
  EXPECT_LE(dimmed.max_swing_a, bright.max_swing_a);
  EXPECT_LT(dimmed.illumination_power_w, bright.illumination_power_w);
}

TEST(Dimming, SwingCeilingFollowsBias) {
  // Deep dimming: max swing is bound by 2*Ib, not the 0.9 A driver cap.
  Fixture f;
  LuminaireDesign deep = f.design;
  deep.target_lux = 150.0;
  const auto plan = plan_luminaires(f.tb.room, f.tb.tx_poses(), f.tb.emitter,
                                    f.tb.led.electrical(), deep);
  EXPECT_NEAR(plan.max_swing_a, 2.0 * plan.bias_a, 1e-12);
  EXPECT_LT(plan.max_swing_a, 0.9);
}

TEST(Dimming, BrightTargetHitsDriverCap) {
  Fixture f;  // 500 lux needs Ib ~ 0.39 A; the cap binds above Ib=0.45
  LuminaireDesign bright = f.design;
  bright.target_lux = 700.0;
  const auto plan = plan_luminaires(f.tb.room, f.tb.tx_poses(), f.tb.emitter,
                                    f.tb.led.electrical(), bright);
  if (plan.bias_a >= 0.45) {
    EXPECT_DOUBLE_EQ(plan.max_swing_a, 0.9);
  }
}

TEST(Dimming, MultiLedSplitsTheLoad) {
  Fixture f;
  LuminaireDesign quad = f.design;
  quad.leds_per_tx = 4;
  const auto single = plan_luminaires(f.tb.room, f.tb.tx_poses(),
                                      f.tb.emitter, f.tb.led.electrical(),
                                      f.design);
  const auto multi = plan_luminaires(f.tb.room, f.tb.tx_poses(),
                                     f.tb.emitter, f.tb.led.electrical(),
                                     quad);
  EXPECT_TRUE(multi.target_met);
  // Per-LED bias drops sharply with 4 LEDs sharing the load...
  EXPECT_LT(multi.bias_a, single.bias_a / 2.0);
  // ...and running 4 cool LEDs is *more* efficient than 1 hot one only
  // in the diode's nonlinear terms; power should at least not explode.
  EXPECT_LT(multi.illumination_power_w, single.illumination_power_w * 2.0);
}

TEST(Dimming, ImpossibleTargetReported) {
  Fixture f;
  LuminaireDesign impossible = f.design;
  impossible.target_lux = 50000.0;
  const auto plan = plan_luminaires(f.tb.room, f.tb.tx_poses(), f.tb.emitter,
                                    f.tb.led.electrical(), impossible);
  EXPECT_FALSE(plan.target_met);
}

TEST(Dimming, ZeroLedsRejected) {
  Fixture f;
  LuminaireDesign bad = f.design;
  bad.leds_per_tx = 0;
  const auto plan = plan_luminaires(f.tb.room, f.tb.tx_poses(), f.tb.emitter,
                                    f.tb.led.electrical(), bad);
  EXPECT_FALSE(plan.target_met);
  EXPECT_DOUBLE_EQ(plan.bias_a, 0.0);
}

}  // namespace
}  // namespace densevlc::illum
