// Tests for the illuminance map and ISO 8995-1 checks (paper Fig. 5).
#include "illum/illuminance_map.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/testbed.hpp"

namespace densevlc::illum {
namespace {

struct Fixture {
  core::Testbed tb = core::make_simulation_testbed();
  IlluminanceMap map{tb.room,    tb.tx_poses(), tb.emitter, tb.led,
                     Meters{0.8}, 41,           kWhiteLedEfficacy};
};

TEST(Illuminance, PaperGridMeetsIsoInAreaOfInterest) {
  Fixture f;
  const auto stats = f.map.area_of_interest_stats(Meters{2.2});
  // Paper: 564 lux average, 74% uniformity. Allow model tolerance.
  EXPECT_GT(stats.average_lux, 500.0);
  EXPECT_LT(stats.average_lux, 700.0);
  EXPECT_GT(stats.uniformity, 0.70);
  EXPECT_TRUE(f.map.satisfies(IsoRequirement{}, Meters{2.2}));
}

TEST(Illuminance, FullRoomIsLessUniformThanCore) {
  Fixture f;
  const auto core = f.map.area_of_interest_stats(Meters{2.2});
  const auto full = f.map.area_of_interest_stats(Meters{3.0});
  EXPECT_LT(full.uniformity, core.uniformity);
  EXPECT_LT(full.min_lux, core.min_lux);
}

TEST(Illuminance, CenterBrighterThanCorner) {
  Fixture f;
  EXPECT_GT(f.map.evaluate(Meters{1.5}, Meters{1.5}),
            f.map.evaluate(Meters{0.05}, Meters{0.05}));
}

TEST(Illuminance, SymmetricUnderGridSymmetry) {
  Fixture f;
  // The centered 6x6 grid is symmetric about the room center.
  EXPECT_NEAR(f.map.evaluate(Meters{1.0}, Meters{1.2}).value(),
              f.map.evaluate(Meters{2.0}, Meters{1.8}).value(), 1e-6);
  EXPECT_NEAR(f.map.evaluate(Meters{0.7}, Meters{1.5}).value(),
              f.map.evaluate(Meters{2.3}, Meters{1.5}).value(), 1e-6);
}

TEST(Illuminance, MapGridMatchesDirectEvaluation) {
  Fixture f;
  // Raster point (ix=20, iy=20) of a 41-point grid is the room center.
  EXPECT_NEAR(f.map.at(20, 20).value(),
              f.map.evaluate(Meters{1.5}, Meters{1.5}).value(), 1e-9);
}

TEST(Illuminance, ScalesWithBiasDrive) {
  const auto tb = core::make_simulation_testbed();
  const optics::LedModel dim{tb.led.electrical(),
                             optics::LedOperatingPoint{0.2, 0.4}};
  const IlluminanceMap dim_map{tb.room,     tb.tx_poses(), tb.emitter, dim,
                               Meters{0.8}, 21,           kWhiteLedEfficacy};
  const IlluminanceMap bright_map{tb.room,     tb.tx_poses(), tb.emitter,
                                  tb.led,      Meters{0.8},   21,
                                  kWhiteLedEfficacy};
  EXPECT_LT(dim_map.area_of_interest_stats(Meters{2.2}).average_lux,
            bright_map.area_of_interest_stats(Meters{2.2}).average_lux);
}

TEST(Illuminance, EmptyAoiReturnsZeroSamples) {
  Fixture f;
  const auto stats = f.map.area_of_interest_stats(Meters{0.0});
  // A zero-size AoI can still catch the single center raster point.
  EXPECT_LE(stats.samples, 1u);
}

TEST(Illuminance, BiasSizingHitsTarget) {
  const auto tb = core::make_simulation_testbed();
  const Amperes bias = size_bias_for_average_lux(
      tb.room, tb.tx_poses(), tb.emitter, tb.led.electrical(), Meters{0.8},
      Meters{2.2}, Lux{500.0}, kWhiteLedEfficacy);
  EXPECT_GT(bias, Amperes{0.0});
  EXPECT_LT(bias, Amperes{1.5});
  // Verify the sized bias actually reaches the target.
  const optics::LedModel sized{
      tb.led.electrical(),
      optics::LedOperatingPoint{bias.value(), 2.0 * bias.value()}};
  const IlluminanceMap map{tb.room,     tb.tx_poses(), tb.emitter, sized,
                           Meters{0.8}, 31,            kWhiteLedEfficacy};
  EXPECT_NEAR(map.area_of_interest_stats(Meters{2.2}).average_lux, 500.0,
              10.0);
}

TEST(Illuminance, BiasSizingClampsAtMax) {
  const auto tb = core::make_simulation_testbed();
  const Amperes bias = size_bias_for_average_lux(
      tb.room, tb.tx_poses(), tb.emitter, tb.led.electrical(), Meters{0.8},
      Meters{2.2}, Lux{1e9}, kWhiteLedEfficacy, Amperes{1.0});
  EXPECT_DOUBLE_EQ(bias.value(), 1.0);
}

TEST(Illuminance, CommunicationDoesNotChangeBrightness) {
  // Manchester symmetry: average current is Ib in both modes, so the map
  // (driven by Ib) is by construction identical. Assert the invariant the
  // design relies on: average of the high/low currents equals the bias.
  const double ib = 0.45;
  const double isw = 0.9;
  EXPECT_DOUBLE_EQ(((ib + isw / 2) + (ib - isw / 2)) / 2.0, ib);
}

}  // namespace
}  // namespace densevlc::illum
