// Differential suite for the batch-of-frames PHY path.
//
// Every batch entry point (frame_batch codec, OOK modulator/demodulator
// batch calls, front-end quad processing, JointTransmission batch) is
// held bit-for-bit against an equivalent sequence of the scalar per-frame
// calls: same wire bytes, same waveforms, same accept/reject decisions,
// same Rng stream. Like test_fastpath, the whole suite is parameterized
// over the SIMD dispatch so both backends are pinned to the same scalar
// sequence transitively.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "alloc_hook.hpp"
#include "common/arena.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "core/beamspot.hpp"
#include "core/testbed.hpp"
#include "dsp/waveform.hpp"
#include "phy/frame.hpp"
#include "phy/frame_batch.hpp"
#include "phy/frame_codec.hpp"
#include "phy/frontend.hpp"
#include "phy/ook.hpp"

namespace densevlc {
namespace {

/// Param = force-scalar: false runs the native (vector) dispatch, true
/// pins every kernel onto the scalar backend.
class Batch : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { simd::set_force_scalar(GetParam()); }
  void TearDown() override { simd::set_force_scalar(false); }
};

INSTANTIATE_TEST_SUITE_P(
    Backends, Batch, ::testing::Values(false, true),
    [](const ::testing::TestParamInfo<bool>& info) {
      return info.param ? "ForcedScalar" : "NativeSimd";
    });

phy::MacFrame make_frame(std::size_t payload, Rng& rng) {
  phy::MacFrame f;
  f.dst = static_cast<std::uint16_t>(rng.uniform_int(0, 0xFFFF));
  f.src = static_cast<std::uint16_t>(rng.uniform_int(0, 0xFFFF));
  f.payload.resize(payload);
  for (auto& b : f.payload) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return f;
}

// Payload sizes straddling the interesting codec boundaries: empty, one
// RS block, exactly one data block (239), several blocks, and kMaxPayload.
const std::size_t kPayloads[] = {0, 1, 60, 239, 240, 700, 1500};

std::vector<phy::MacFrame> make_frames(Rng& rng) {
  std::vector<phy::MacFrame> frames;
  for (const std::size_t p : kPayloads) frames.push_back(make_frame(p, rng));
  return frames;
}

std::vector<const phy::MacFrame*> frame_ptrs(
    const std::vector<phy::MacFrame>& frames) {
  std::vector<const phy::MacFrame*> ptrs;
  for (const auto& f : frames) ptrs.push_back(&f);
  return ptrs;
}

// --- Batch codec ---------------------------------------------------------

TEST_P(Batch, SerializeFramesMatchesScalar) {
  Rng rng{0xB0};
  const auto frames = make_frames(rng);
  const auto ptrs = frame_ptrs(frames);
  phy::FrameBatch batch;
  phy::serialize_frames_batch(ptrs, batch);
  ASSERT_EQ(batch.lanes.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const auto expect = phy::serialize_frame(frames[i]);
    const auto got = batch.lane_wire(i);
    ASSERT_EQ(got.size(), expect.size()) << "lane " << i;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), expect.begin()))
        << "lane " << i;
  }

  phy::MacFrame overlong;
  overlong.payload.resize(phy::kMaxPayload + 1);
  const phy::MacFrame* bad[] = {&overlong};
  EXPECT_THROW(phy::serialize_frames_batch(bad, batch),
               std::invalid_argument);
}

TEST_P(Batch, EncodeFramesMatchesScalarAcrossDepths) {
  Rng rng{0xB1};
  const auto frames = make_frames(rng);
  const auto ptrs = frame_ptrs(frames);
  for (const std::size_t depth : {std::size_t{0}, std::size_t{4}}) {
    const phy::FrameCodec codec{depth};
    phy::FrameBatch batch;
    phy::encode_frames_batch(codec, ptrs, batch);
    phy::FrameCodec::Scratch cscr;
    std::vector<std::uint8_t> expect;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      codec.encode_into(frames[i], expect, cscr);
      const auto got = batch.lane_wire(i);
      ASSERT_EQ(got.size(), expect.size()) << "depth " << depth << " lane " << i;
      EXPECT_TRUE(std::equal(got.begin(), got.end(), expect.begin()))
          << "depth " << depth << " lane " << i;
    }
  }
}

TEST_P(Batch, DecodeFramesMatchesScalarIncludingCorruptLanes) {
  Rng rng{0xB2};
  const auto frames = make_frames(rng);
  const auto ptrs = frame_ptrs(frames);
  for (const std::size_t depth : {std::size_t{0}, std::size_t{4}}) {
    const phy::FrameCodec codec{depth};
    phy::FrameBatch batch;
    phy::encode_frames_batch(codec, ptrs, batch);

    // Copy the wires out and corrupt a spread of lanes: correctable
    // single-byte hits, an error burst past the RS capacity, and a
    // trashed header. Lanes 0 and 3 stay clean.
    std::vector<std::vector<std::uint8_t>> wires;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      const auto w = batch.lane_wire(i);
      wires.emplace_back(w.begin(), w.end());
    }
    wires[1][wires[1].size() / 2] ^= 0x5A;  // one correctable byte
    for (std::size_t j = 0; j < 40 && j < wires[2].size(); ++j) {
      wires[2][j + wires[2].size() / 3] ^= 0xFF;  // burst: uncorrectable
    }
    wires[4][0] ^= 0xFF;                          // SFD destroyed
    wires[5][5] ^= 0x01;
    wires[5][wires[5].size() - 1] ^= 0x80;        // two scattered hits

    std::vector<std::span<const std::uint8_t>> views;
    for (const auto& w : wires) views.emplace_back(w);
    std::vector<phy::ParsedFrame> out(wires.size());
    std::vector<std::uint8_t> ok(wires.size(), 0xEE);
    const std::size_t decoded =
        phy::decode_frames_batch(codec, views, out, ok, batch);

    phy::FrameCodec::Scratch cscr;
    phy::ParsedFrame expect;
    std::size_t expected_decoded = 0;
    bool saw_ok = false;
    bool saw_fail = false;
    for (std::size_t i = 0; i < wires.size(); ++i) {
      const bool scalar_ok = codec.decode_into(views[i], expect, cscr);
      ASSERT_EQ(ok[i] != 0, scalar_ok) << "depth " << depth << " lane " << i;
      (scalar_ok ? saw_ok : saw_fail) = true;
      if (scalar_ok) {
        ++expected_decoded;
        EXPECT_EQ(out[i].frame, expect.frame) << "lane " << i;
        EXPECT_EQ(out[i].corrected_bytes, expect.corrected_bytes)
            << "lane " << i;
      }
    }
    EXPECT_EQ(decoded, expected_decoded);
    EXPECT_TRUE(saw_ok);    // the fixture must exercise both outcomes
    EXPECT_TRUE(saw_fail);
  }
}

// --- Batch modulator / demodulator ---------------------------------------

TEST_P(Batch, ModulateBatchMatchesModulateFrame) {
  Rng rng{0xB3};
  const auto frames = make_frames(rng);
  const phy::OokParams params{};
  const phy::OokModulator mod{params};

  std::vector<phy::OokModulator::TxJob> jobs;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    jobs.push_back({&frames[i], (i % 2) == 0,
                    static_cast<std::uint8_t>(0xC0 + i), 4 * i});
  }
  std::vector<dsp::Waveform> got(jobs.size());
  std::vector<dsp::Waveform*> out;
  for (auto& wf : got) out.push_back(&wf);
  phy::OokModulator::TxBatchScratch scratch;
  mod.modulate_batch_into(jobs, out, scratch);

  phy::OokModulator::TxScratch txs;
  dsp::Waveform expect;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    mod.modulate_frame_into(*jobs[i].frame, jobs[i].include_pilot,
                            jobs[i].tx_id, jobs[i].guard_chips, expect, txs);
    ASSERT_EQ(got[i].samples.size(), expect.samples.size()) << "lane " << i;
    EXPECT_EQ(got[i].sample_rate_hz, expect.sample_rate_hz);
    EXPECT_EQ(got[i].samples, expect.samples) << "lane " << i;
  }
}

TEST_P(Batch, ReceiveBatchMatchesReceiveFrame) {
  Rng rng{0xB4};
  const phy::OokParams params{};
  const phy::OokModulator mod{params};
  const phy::OokDemodulator demod{params.chip_rate_hz,
                                  params.sample_rate_hz()};

  // Lanes: clean frames of several sizes, one all-noise lane (no
  // preamble), one lane with a corrupted stretch of samples.
  std::vector<phy::MacFrame> frames = {make_frame(40, rng),
                                       make_frame(0, rng),
                                       make_frame(300, rng),
                                       make_frame(40, rng),
                                       make_frame(90, rng)};
  std::vector<std::vector<double>> lanes;
  phy::OokModulator::TxScratch txs;
  dsp::Waveform wf;
  for (const auto& f : frames) {
    mod.modulate_frame_into(f, false, 0, 8, wf, txs);
    for (double& v : wf.samples) v -= params.bias_current_a;
    lanes.emplace_back(wf.samples.begin(), wf.samples.end());
  }
  std::vector<double> noise(4000);
  for (auto& v : noise) v = rng.uniform(-0.02, 0.02);
  lanes.insert(lanes.begin() + 3, noise);
  for (std::size_t s = 900; s < 2600; ++s) lanes[4][s] = -lanes[4][s];

  std::vector<std::span<const double>> signals;
  for (const auto& lane : lanes) signals.emplace_back(lane);
  std::vector<phy::OokDemodulator::RxResult> out(lanes.size());
  std::vector<std::uint8_t> ok(lanes.size(), 0xEE);
  phy::OokDemodulator::BatchRxScratch scratch;
  const std::size_t decoded =
      demod.receive_batch_into(signals, out, ok, scratch);

  phy::OokDemodulator::RxScratch rxs;
  phy::OokDemodulator::RxResult expect;
  std::size_t expected_decoded = 0;
  bool saw_fail = false;
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const bool scalar_ok = demod.receive_frame_into(signals[i], expect, rxs);
    ASSERT_EQ(ok[i] != 0, scalar_ok) << "lane " << i;
    saw_fail = saw_fail || !scalar_ok;
    if (scalar_ok) {
      ++expected_decoded;
      EXPECT_EQ(out[i].parsed.frame, expect.parsed.frame) << "lane " << i;
      EXPECT_EQ(out[i].parsed.corrected_bytes, expect.parsed.corrected_bytes);
      EXPECT_EQ(out[i].preamble_at, expect.preamble_at) << "lane " << i;
      EXPECT_EQ(out[i].correlation, expect.correlation) << "lane " << i;
      EXPECT_EQ(out[i].manchester_violations, expect.manchester_violations);
    }
  }
  EXPECT_EQ(decoded, expected_decoded);
  EXPECT_GE(decoded, 4u);  // the clean lanes must all decode
  EXPECT_TRUE(saw_fail);   // and the noise lane must not
}

// --- Batch front-end -----------------------------------------------------

dsp::Waveform make_optical(std::size_t samples, double rate, Rng& rng) {
  dsp::Waveform wf;
  wf.sample_rate_hz = rate;
  wf.samples.resize(samples);
  for (auto& v : wf.samples) v = 1e-6 * (1.0 + rng.uniform(-0.5, 0.5));
  return wf;
}

TEST_P(Batch, FrontEndBatchMatchesSequential) {
  Rng rng{0xB5};
  const phy::FrontEndConfig cfg{};
  // Two identical Rng streams so the batch and sequential front-ends draw
  // the exact same noise.
  Rng seq_rng{77};
  Rng batch_rng{77};
  // Seven lanes: one full quad of equal lengths, a ragged lane, an empty
  // lane, and one leftover — exercising the quad kernel, the per-lane
  // tails, the empty-lane skip, and the scalar fallback.
  const std::size_t lens[] = {5000, 5000, 5000, 5000, 5003, 0, 2000};
  std::vector<dsp::Waveform> optical;
  for (const std::size_t n : lens) {
    optical.push_back(make_optical(n, 1e6, rng));
  }

  std::vector<phy::ReceiverFrontEnd> seq_fes;
  std::vector<phy::ReceiverFrontEnd> batch_fes;
  for (std::size_t i = 0; i < optical.size(); ++i) {
    seq_fes.emplace_back(cfg, seq_rng.fork());
    batch_fes.emplace_back(cfg, batch_rng.fork());
  }

  // Two rounds over the same front-ends: round two starts from non-zero
  // filter state, pinning the stateful hand-off between batch calls.
  std::vector<dsp::Waveform> expect(optical.size());
  std::vector<dsp::Waveform> got(optical.size());
  phy::ReceiverFrontEnd::BatchScratch scratch;
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < optical.size(); ++i) {
      seq_fes[i].process_into(optical[i], expect[i]);
    }
    std::vector<phy::ReceiverFrontEnd*> fes;
    std::vector<const dsp::Waveform*> in;
    std::vector<dsp::Waveform*> out;
    for (std::size_t i = 0; i < optical.size(); ++i) {
      fes.push_back(&batch_fes[i]);
      in.push_back(&optical[i]);
      out.push_back(&got[i]);
    }
    phy::ReceiverFrontEnd::process_batch_into(fes, in, out, scratch);
    for (std::size_t i = 0; i < optical.size(); ++i) {
      ASSERT_EQ(got[i].samples.size(), expect[i].samples.size())
          << "round " << round << " lane " << i;
      EXPECT_EQ(got[i].samples, expect[i].samples)
          << "round " << round << " lane " << i;
    }
  }
}

// --- Batch joint transmission --------------------------------------------

TEST_P(Batch, TransmitBatchMatchesSequential) {
  core::Testbed tb = core::make_experimental_testbed();
  const phy::OokParams ook{};
  const phy::FrontEndConfig frontend{};
  const core::JointTransmission jt{tb.led, ook, frontend};

  Rng frame_rng{0xB6};
  const auto frame_a = make_frame(60, frame_rng);
  const auto frame_b = make_frame(200, frame_rng);
  const auto frame_c = make_frame(32, frame_rng);

  const std::vector<core::ServingTx> one_tx{{7, 8e-7, 0.9, 0.0}};
  const std::vector<core::ServingTx> two_tx{{7, 6e-7, 0.9, 0.0},
                                            {13, 4e-7, 0.9, 0.3e-6}};
  const std::vector<core::ServingTx> weak_tx{{3, 2e-8, 0.9, 0.0}};
  std::vector<core::InterfererGroup> interferers(1);
  interferers[0].txs = {{21, 1e-7, 0.9, 12e-6}};
  interferers[0].frame = frame_c;

  // Lanes: normal, no servers (early-return, no Rng fork), joint two-TX,
  // interfered + ambient, weak link.
  std::vector<core::JointTransmission::TransmitJob> jobs = {
      {one_tx, &frame_a, {}, 0.0},
      {{}, &frame_a, {}, 0.0},
      {two_tx, &frame_b, {}, 0.0},
      {one_tx, &frame_b, interferers, 1e-6},
      {weak_tx, &frame_a, {}, 0.0},
  };

  Rng seq_rng{91};
  Rng batch_rng{91};
  std::vector<core::TransmissionOutcome> expect;
  for (const auto& job : jobs) {
    expect.push_back(jt.transmit(job.servers, *job.frame, seq_rng,
                                 job.interferers, job.ambient_optical_w));
  }
  std::vector<core::TransmissionOutcome> got(jobs.size());
  core::JointTransmission::TransmitBatchScratch scratch;
  jt.transmit_batch(jobs, batch_rng, got, scratch);

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(got[i].delivered, expect[i].delivered) << "lane " << i;
    EXPECT_EQ(got[i].preamble_found, expect[i].preamble_found) << "lane " << i;
    EXPECT_EQ(got[i].corrected_bytes, expect[i].corrected_bytes)
        << "lane " << i;
    EXPECT_EQ(got[i].correlation, expect[i].correlation) << "lane " << i;
    EXPECT_EQ(got[i].snr_estimate_db, expect[i].snr_estimate_db)
        << "lane " << i;
  }
  EXPECT_TRUE(got[0].delivered);
  EXPECT_FALSE(got[1].delivered);
  // Both Rngs must have consumed the identical number of draws.
  EXPECT_EQ(seq_rng.uniform_int(0, 1 << 30), batch_rng.uniform_int(0, 1 << 30));
}

// --- Zero-allocation steady state ----------------------------------------

TEST_P(Batch, BatchPipelineSteadyStateIsAllocationFree) {
  Rng rng{0xB7};
  const std::vector<phy::MacFrame> frames = {make_frame(120, rng),
                                             make_frame(120, rng),
                                             make_frame(120, rng),
                                             make_frame(120, rng)};
  const phy::OokParams params{};
  const phy::OokModulator mod{params};
  const phy::OokDemodulator demod{params.chip_rate_hz,
                                  params.sample_rate_hz()};

  std::vector<phy::OokModulator::TxJob> jobs;
  for (const auto& f : frames) jobs.push_back({&f, false, 0, 8});
  std::vector<dsp::Waveform> wfs(jobs.size());
  std::vector<dsp::Waveform*> out;
  for (auto& wf : wfs) out.push_back(&wf);
  phy::OokModulator::TxBatchScratch txb;
  phy::OokDemodulator::BatchRxScratch rxb;
  std::vector<std::span<const double>> signals(jobs.size());
  std::vector<phy::OokDemodulator::RxResult> results(jobs.size());
  std::vector<std::uint8_t> ok(jobs.size());

  const auto run_one = [&] {
    mod.modulate_batch_into(jobs, out, txb);
    for (std::size_t i = 0; i < wfs.size(); ++i) {
      for (double& v : wfs[i].samples) v -= params.bias_current_a;
      signals[i] = wfs[i].samples;
    }
    ASSERT_EQ(demod.receive_batch_into(signals, results, ok, rxb),
              jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      ASSERT_EQ(results[i].parsed.frame.payload, frames[i].payload);
    }
  };
  run_one();  // warm-up: all batch scratch reaches steady-state capacity
  const std::uint64_t before = bench::alloc_count();
  for (int i = 0; i < 5; ++i) run_one();
  EXPECT_EQ(bench::alloc_count() - before, 0u);
}

}  // namespace
}  // namespace densevlc
