// Tests for the receiver analog front-end model.
#include "phy/frontend.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"

namespace densevlc::phy {
namespace {

FrontEndConfig quiet_config() {
  FrontEndConfig cfg;
  cfg.noise_psd_a2_per_hz = 0.0;
  return cfg;
}

dsp::Waveform square_optical(double low_w, double high_w, double chip_s,
                             std::size_t chips, double rate) {
  dsp::Waveform wf;
  wf.sample_rate_hz = rate;
  const auto per_chip = static_cast<std::size_t>(chip_s * rate);
  for (std::size_t c = 0; c < chips; ++c) {
    wf.samples.insert(wf.samples.end(), per_chip,
                      c % 2 == 0 ? high_w : low_w);
  }
  return wf;
}

TEST(FrontEnd, OutputAtAdcRate) {
  ReceiverFrontEnd fe{quiet_config(), Rng{1}};
  const auto in = square_optical(0.0, 1e-6, 10e-6, 100, 4e6);
  const auto out = fe.process(in);
  EXPECT_DOUBLE_EQ(out.sample_rate_hz, 1e6);
  EXPECT_NEAR(static_cast<double>(out.samples.size()),
              in.duration() * 1e6, 2.0);
}

TEST(FrontEnd, AcCouplingRemovesConstantLight) {
  ReceiverFrontEnd fe{quiet_config(), Rng{2}};
  dsp::Waveform dc;
  dc.sample_rate_hz = 1e6;
  dc.samples.assign(20000, 5e-6);  // constant ambient light, 20 ms
  const auto out = fe.process(dc);
  // After settling, the output must hover at zero.
  double tail_mean = 0.0;
  for (std::size_t i = out.samples.size() - 1000; i < out.samples.size();
       ++i) {
    tail_mean += out.samples[i];
  }
  tail_mean /= 1000.0;
  EXPECT_NEAR(tail_mean, 0.0, 1e-4);
}

TEST(FrontEnd, GainChainAmplitude) {
  // A +-P optical square wave at mid-band should come out at roughly
  // R * tia * ac_gain * P volts of amplitude. The Butterworth stage
  // overshoots at edges, so compare the *median* absolute level (the
  // flat chip centers), not the peak.
  FrontEndConfig cfg = quiet_config();
  ReceiverFrontEnd fe{cfg, Rng{3}};
  const double p = 1e-6;
  const auto in = square_optical(0.0, 2.0 * p, 10e-6, 400, 4e6);
  const auto out = fe.process(in);
  // Skip the AC-coupling settle; measure steady-state swing.
  std::vector<double> tail(out.samples.end() - 2000, out.samples.end());
  for (double& v : tail) v = std::fabs(v);
  const double level = stats::median(tail);
  const double expected =
      cfg.responsivity_a_per_w * cfg.tia_gain_ohm * cfg.ac_gain * p;
  EXPECT_NEAR(level, expected, expected * 0.25);
}

TEST(FrontEnd, NoiseSigmaFormula) {
  FrontEndConfig cfg;
  cfg.noise_psd_a2_per_hz = 8e-24;
  ReceiverFrontEnd fe{cfg, Rng{4}};
  EXPECT_NEAR(fe.noise_current_sigma(Hertz{1e6}).value(),
              std::sqrt(8e-24 * 5e5), 1e-18);
}

TEST(FrontEnd, NoiseAppearsAtOutput) {
  FrontEndConfig cfg;  // default N0 > 0
  ReceiverFrontEnd fe{cfg, Rng{5}};
  dsp::Waveform dark;
  dark.sample_rate_hz = 1e6;
  dark.samples.assign(20000, 0.0);
  const auto out = fe.process(dark);
  std::vector<double> tail(out.samples.end() - 5000, out.samples.end());
  EXPECT_GT(stats::stddev(tail), 0.0);
}

TEST(FrontEnd, DeterministicGivenSeed) {
  FrontEndConfig cfg;
  ReceiverFrontEnd a{cfg, Rng{77}};
  ReceiverFrontEnd b{cfg, Rng{77}};
  const auto in = square_optical(0.0, 1e-6, 10e-6, 50, 4e6);
  const auto out_a = a.process(in);
  const auto out_b = b.process(in);
  ASSERT_EQ(out_a.samples.size(), out_b.samples.size());
  for (std::size_t i = 0; i < out_a.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(out_a.samples[i], out_b.samples[i]);
  }
}

TEST(FrontEnd, QuantizationVisibleOnTinySignals) {
  // A signal far below one LSB must come out flat (all zeros after the
  // mid-rail trick) — quantization is really modeled.
  FrontEndConfig cfg = quiet_config();
  ReceiverFrontEnd fe{cfg, Rng{6}};
  dsp::Waveform tiny;
  tiny.sample_rate_hz = 1e6;
  tiny.samples.assign(5000, 0.0);
  // LSB at 12 bits over 3.3 V is ~0.8 mV; feed a 1e-12 W blip -> ~40 nV.
  for (std::size_t i = 2000; i < 2500; ++i) tiny.samples[i] = 1e-12;
  const auto out = fe.process(tiny);
  for (double v : out.samples) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(FrontEnd, ResetClearsFilters) {
  ReceiverFrontEnd fe{quiet_config(), Rng{7}};
  const auto in = square_optical(0.0, 1e-5, 10e-6, 100, 4e6);
  const auto first = fe.process(in);
  fe.reset();
  const auto second = fe.process(in);
  ASSERT_EQ(first.samples.size(), second.samples.size());
  for (std::size_t i = 0; i < first.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(first.samples[i], second.samples[i]);
  }
}

}  // namespace
}  // namespace densevlc::phy
