// Tests for the OOK modulator and demodulator.
#include "phy/ook.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace densevlc::phy {
namespace {

OokParams params() {
  OokParams p;
  p.chip_rate_hz = 100e3;
  p.samples_per_chip = 10;
  p.bias_current_a = 0.45;
  p.swing_current_a = 0.9;
  return p;
}

TEST(OokModulator, ThreeCurrentLevels) {
  const OokModulator mod{params()};
  EXPECT_DOUBLE_EQ(mod.chip_current(Chip::kHigh), 0.9);
  EXPECT_DOUBLE_EQ(mod.chip_current(Chip::kLow), 0.0);
  // Idle (illumination) sits at the bias.
  const auto idle = mod.idle(2);
  for (double s : idle.samples) EXPECT_DOUBLE_EQ(s, 0.45);
}

TEST(OokModulator, WaveformShape) {
  const OokModulator mod{params()};
  const std::vector<Chip> chips{Chip::kHigh, Chip::kLow};
  const auto wf = mod.modulate(chips);
  ASSERT_EQ(wf.samples.size(), 20u);
  EXPECT_DOUBLE_EQ(wf.sample_rate_hz, 1e6);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(wf.samples[i], 0.9);
  for (std::size_t i = 10; i < 20; ++i) EXPECT_DOUBLE_EQ(wf.samples[i], 0.0);
}

TEST(OokModulator, AverageCurrentIsBiasForManchesterData) {
  const OokModulator mod{params()};
  Rng rng{5};
  std::vector<std::uint8_t> bits(400);
  for (auto& b : bits) b = rng.bernoulli(0.5) ? 1 : 0;
  const auto wf = mod.modulate(manchester_encode(bits));
  double sum = 0.0;
  for (double s : wf.samples) sum += s;
  EXPECT_NEAR(sum / static_cast<double>(wf.samples.size()), 0.45, 1e-12);
}

TEST(OokModulator, FrameWaveformHasGuards) {
  const OokModulator mod{params()};
  MacFrame f;
  f.payload = {1, 2, 3};
  const auto wf = mod.modulate_frame(f, false, 0, 4);
  // First 4 chips at bias.
  for (std::size_t i = 0; i < 4 * 10; ++i) {
    EXPECT_DOUBLE_EQ(wf.samples[i], 0.45);
  }
}

TEST(OokModulator, PilotExtendsFrame) {
  const OokModulator mod{params()};
  MacFrame f;
  f.payload = {9};
  const auto plain = mod.modulate_frame(f, false, 2, 0);
  const auto with_pilot = mod.modulate_frame(f, true, 2, 0);
  // Pilot adds 32 chips plus 16 Manchester chips of leader ID.
  EXPECT_EQ(with_pilot.samples.size() - plain.samples.size(),
            (kPilotChips + 16) * 10);
}

TEST(OokDemodulator, SlicesCleanChips) {
  const OokDemodulator demod{100e3, 1e6};
  // Build an AC-coupled-looking signal: +-1 V chips at 10 samples/chip.
  std::vector<double> signal;
  const std::vector<Chip> chips{Chip::kHigh, Chip::kLow, Chip::kLow,
                                Chip::kHigh};
  for (Chip c : chips) {
    signal.insert(signal.end(), 10, c == Chip::kHigh ? 1.0 : -1.0);
  }
  const auto sliced = demod.slice_chips(signal, 0.0, chips.size());
  EXPECT_EQ(sliced, chips);
}

TEST(OokDemodulator, TemplateMatchesPreambleLength) {
  const OokDemodulator demod{100e3, 1e6};
  EXPECT_EQ(demod.preamble_template().size(), kPreambleChips * 10);
  EXPECT_DOUBLE_EQ(demod.samples_per_chip(), 10.0);
}

TEST(OokDemodulator, ReceivesCleanFrameEndToEnd) {
  // Modulate a frame, AC-couple it ideally (subtract bias), demodulate.
  const OokModulator mod{params()};
  const OokDemodulator demod{100e3, 1e6};
  Rng rng{11};
  MacFrame f;
  f.dst = 1;
  f.src = 0xC0;
  f.payload.resize(100);
  for (auto& b : f.payload) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  auto wf = mod.modulate_frame(f, false, 0, 8);
  for (double& s : wf.samples) s -= 0.45;  // ideal AC coupling
  const auto res = demod.receive_frame(wf.samples);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->parsed.frame, f);
  EXPECT_EQ(res->manchester_violations, 0u);
  EXPECT_GT(res->correlation, 0.95);
}

TEST(OokDemodulator, SurvivesModerateNoise) {
  const OokModulator mod{params()};
  const OokDemodulator demod{100e3, 1e6};
  Rng rng{12};
  MacFrame f;
  f.payload = {0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4, 5, 6};
  auto wf = mod.modulate_frame(f, false, 0, 8);
  for (double& s : wf.samples) {
    s = s - 0.45 + rng.gaussian(0.0, 0.10);  // SNR ~ 13 dB on +-0.45
  }
  const auto res = demod.receive_frame(wf.samples);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->parsed.frame, f);
}

TEST(OokDemodulator, NoSignalNoFrame) {
  const OokDemodulator demod{100e3, 1e6};
  Rng rng{13};
  std::vector<double> noise(20000);
  for (double& s : noise) s = rng.gaussian(0.0, 0.2);
  EXPECT_FALSE(demod.receive_frame(noise).has_value());
}

TEST(OokDemodulator, FractionalSamplesPerChip) {
  // frx / chip rate that is not an integer must still decode: 1 Msps over
  // 80 kchips/s = 12.5 samples per chip.
  OokParams p = params();
  p.chip_rate_hz = 80e3;
  const OokModulator mod{p};
  const OokDemodulator demod{80e3, 1e6};
  MacFrame f;
  f.payload = {42, 43, 44};
  auto wf = mod.modulate_frame(f, false, 0, 8);
  // Resample the 800 kHz TX waveform to 1 MHz by zero-order hold.
  std::vector<double> rx;
  const double ratio = wf.sample_rate_hz / 1e6;
  for (std::size_t i = 0;; ++i) {
    const auto src = static_cast<std::size_t>(static_cast<double>(i) * ratio);
    if (src >= wf.samples.size()) break;
    rx.push_back(wf.samples[src] - 0.45);
  }
  const auto res = demod.receive_frame(rx);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->parsed.frame, f);
}

}  // namespace
}  // namespace densevlc::phy
