// Tests for GF(2^8) arithmetic.
#include "phy/gf256.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace densevlc::phy::gf256 {
namespace {

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(add(0x53, 0xCA), 0x99);
  EXPECT_EQ(add(0xFF, 0xFF), 0x00);
}

TEST(Gf256, MultiplicationIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const auto v = static_cast<std::uint8_t>(a);
    EXPECT_EQ(mul(v, 1), v);
    EXPECT_EQ(mul(1, v), v);
    EXPECT_EQ(mul(v, 0), 0);
    EXPECT_EQ(mul(0, v), 0);
  }
}

TEST(Gf256, MultiplicationCommutative) {
  for (int a = 1; a < 256; a += 17) {
    for (int b = 1; b < 256; b += 13) {
      EXPECT_EQ(mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                mul(static_cast<std::uint8_t>(b), static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(Gf256, KnownProduct) {
  // 0x02 * 0x80 wraps through the primitive polynomial 0x11D: 0x100 ^
  // 0x11D = 0x1D.
  EXPECT_EQ(mul(0x02, 0x80), 0x1D);
}

TEST(Gf256, MulDivRoundTrip) {
  for (int a = 0; a < 256; a += 7) {
    for (int b = 1; b < 256; b += 11) {
      const auto av = static_cast<std::uint8_t>(a);
      const auto bv = static_cast<std::uint8_t>(b);
      EXPECT_EQ(div(mul(av, bv), bv), av);
    }
  }
}

TEST(Gf256, InverseIsMultiplicativeInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto v = static_cast<std::uint8_t>(a);
    EXPECT_EQ(mul(v, inverse(v)), 1) << "a = " << a;
  }
}

TEST(Gf256, PowAlphaPeriod255) {
  EXPECT_EQ(pow_alpha(0), 1);
  EXPECT_EQ(pow_alpha(1), 2);
  EXPECT_EQ(pow_alpha(255), 1);
  EXPECT_EQ(pow_alpha(256), 2);
  EXPECT_EQ(pow_alpha(-1), pow_alpha(254));
}

TEST(Gf256, AlphaGeneratesWholeField) {
  std::vector<bool> seen(256, false);
  for (int k = 0; k < 255; ++k) seen[pow_alpha(k)] = true;
  int count = 0;
  for (int v = 1; v < 256; ++v) count += seen[static_cast<std::size_t>(v)];
  EXPECT_EQ(count, 255);  // every nonzero element is a power of alpha
}

TEST(Gf256, PolyEvalHorner) {
  // p(x) = x^2 + 1 (coefficients descending): p(2) = 4 ^ 1 = 5 in GF.
  const std::vector<std::uint8_t> p{1, 0, 1};
  EXPECT_EQ(poly_eval(p, 2), add(mul(2, 2), 1));
  EXPECT_EQ(poly_eval(p, 0), 1);
}

TEST(Gf256, PolyMulDegreesAdd) {
  const std::vector<std::uint8_t> a{1, 2};     // x + 2
  const std::vector<std::uint8_t> b{1, 0, 3};  // x^2 + 3
  const auto c = poly_mul(a, b);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c[0], 1);  // x^3 coefficient
}

TEST(Gf256, PolyMulWithEmptyIsEmpty) {
  const std::vector<std::uint8_t> a{1, 2};
  EXPECT_TRUE(poly_mul(a, {}).empty());
  EXPECT_TRUE(poly_mul({}, a).empty());
}

TEST(Gf256, DistributiveLaw) {
  for (int a = 1; a < 256; a += 31) {
    for (int b = 1; b < 256; b += 29) {
      for (int c = 1; c < 256; c += 37) {
        const auto av = static_cast<std::uint8_t>(a);
        const auto bv = static_cast<std::uint8_t>(b);
        const auto cv = static_cast<std::uint8_t>(c);
        EXPECT_EQ(mul(av, add(bv, cv)), add(mul(av, bv), mul(av, cv)));
      }
    }
  }
}

}  // namespace
}  // namespace densevlc::phy::gf256
