// Tests for Manchester coding and bit/byte packing.
#include "phy/manchester.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace densevlc::phy {
namespace {

TEST(Manchester, PaperConvention) {
  // 0 encodes Il -> Ih (LOW then HIGH); 1 encodes Ih -> Il.
  const std::vector<std::uint8_t> bits{0, 1};
  const auto chips = manchester_encode(bits);
  ASSERT_EQ(chips.size(), 4u);
  EXPECT_EQ(chips[0], Chip::kLow);
  EXPECT_EQ(chips[1], Chip::kHigh);
  EXPECT_EQ(chips[2], Chip::kHigh);
  EXPECT_EQ(chips[3], Chip::kLow);
}

TEST(Manchester, RoundTrip) {
  Rng rng{42};
  std::vector<std::uint8_t> bits(1000);
  for (auto& b : bits) b = rng.bernoulli(0.5) ? 1 : 0;
  const auto chips = manchester_encode(bits);
  const auto decoded = manchester_decode(chips);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, bits);
}

TEST(Manchester, DcBalanceExact) {
  // Any bit stream yields exactly 50% HIGH chips — the property that
  // keeps LED brightness constant.
  Rng rng{43};
  std::vector<std::uint8_t> bits(501);
  for (auto& b : bits) b = rng.bernoulli(0.8) ? 1 : 0;  // biased bits!
  const auto chips = manchester_encode(bits);
  std::size_t high = 0;
  for (Chip c : chips) high += c == Chip::kHigh ? 1 : 0;
  EXPECT_EQ(high * 2, chips.size());
}

TEST(Manchester, StrictDecodeRejectsViolation) {
  std::vector<Chip> chips{Chip::kLow, Chip::kLow};  // no transition
  EXPECT_FALSE(manchester_decode(chips).has_value());
  chips = {Chip::kHigh, Chip::kHigh};
  EXPECT_FALSE(manchester_decode(chips).has_value());
}

TEST(Manchester, StrictDecodeRejectsOddLength) {
  const std::vector<Chip> chips{Chip::kLow, Chip::kHigh, Chip::kLow};
  EXPECT_FALSE(manchester_decode(chips).has_value());
}

TEST(Manchester, LenientDecodeCountsViolations) {
  const std::vector<Chip> chips{Chip::kLow,  Chip::kHigh,   // valid 0
                                Chip::kHigh, Chip::kHigh,   // violation
                                Chip::kHigh, Chip::kLow};   // valid 1
  const auto res = manchester_decode_lenient(chips);
  ASSERT_EQ(res.bits.size(), 3u);
  EXPECT_EQ(res.violations, 1u);
  EXPECT_EQ(res.bits[0], 0);
  EXPECT_EQ(res.bits[2], 1);
}

TEST(Manchester, LenientDecodeOddTailCounts) {
  const std::vector<Chip> chips{Chip::kLow, Chip::kHigh, Chip::kLow};
  const auto res = manchester_decode_lenient(chips);
  EXPECT_EQ(res.bits.size(), 1u);
  EXPECT_EQ(res.violations, 1u);
}

TEST(Packing, BytesToBitsMsbFirst) {
  const std::vector<std::uint8_t> bytes{0xA5};
  const auto bits = bytes_to_bits(bytes);
  const std::vector<std::uint8_t> expected{1, 0, 1, 0, 0, 1, 0, 1};
  EXPECT_EQ(bits, expected);
}

TEST(Packing, BitsToBytesRoundTrip) {
  Rng rng{44};
  std::vector<std::uint8_t> bytes(256);
  for (auto& b : bytes) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const auto packed = bits_to_bytes(bytes_to_bits(bytes));
  ASSERT_TRUE(packed.has_value());
  EXPECT_EQ(*packed, bytes);
}

TEST(Packing, RaggedBitsRejected) {
  const std::vector<std::uint8_t> bits(9, 0);
  EXPECT_FALSE(bits_to_bytes(bits).has_value());
}

TEST(Packing, EmptyInputsAreEmpty) {
  EXPECT_TRUE(bytes_to_bits({}).empty());
  const auto packed = bits_to_bytes({});
  ASSERT_TRUE(packed.has_value());
  EXPECT_TRUE(packed->empty());
}

}  // namespace
}  // namespace densevlc::phy
