// Tests for Manchester coding and bit/byte packing.
#include "phy/manchester.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace densevlc::phy {
namespace {

TEST(Manchester, PaperConvention) {
  // 0 encodes Il -> Ih (LOW then HIGH); 1 encodes Ih -> Il.
  const std::vector<std::uint8_t> bits{0, 1};
  const auto chips = manchester_encode(bits);
  ASSERT_EQ(chips.size(), 4u);
  EXPECT_EQ(chips[0], Chip::kLow);
  EXPECT_EQ(chips[1], Chip::kHigh);
  EXPECT_EQ(chips[2], Chip::kHigh);
  EXPECT_EQ(chips[3], Chip::kLow);
}

TEST(Manchester, RoundTrip) {
  Rng rng{42};
  std::vector<std::uint8_t> bits(1000);
  for (auto& b : bits) b = rng.bernoulli(0.5) ? 1 : 0;
  const auto chips = manchester_encode(bits);
  const auto decoded = manchester_decode(chips);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, bits);
}

TEST(Manchester, DcBalanceExact) {
  // Any bit stream yields exactly 50% HIGH chips — the property that
  // keeps LED brightness constant.
  Rng rng{43};
  std::vector<std::uint8_t> bits(501);
  for (auto& b : bits) b = rng.bernoulli(0.8) ? 1 : 0;  // biased bits!
  const auto chips = manchester_encode(bits);
  std::size_t high = 0;
  for (Chip c : chips) high += c == Chip::kHigh ? 1 : 0;
  EXPECT_EQ(high * 2, chips.size());
}

TEST(Manchester, StrictDecodeRejectsViolation) {
  std::vector<Chip> chips{Chip::kLow, Chip::kLow};  // no transition
  EXPECT_FALSE(manchester_decode(chips).has_value());
  chips = {Chip::kHigh, Chip::kHigh};
  EXPECT_FALSE(manchester_decode(chips).has_value());
}

TEST(Manchester, StrictDecodeRejectsOddLength) {
  const std::vector<Chip> chips{Chip::kLow, Chip::kHigh, Chip::kLow};
  EXPECT_FALSE(manchester_decode(chips).has_value());
}

TEST(Manchester, LenientDecodeCountsViolations) {
  const std::vector<Chip> chips{Chip::kLow,  Chip::kHigh,   // valid 0
                                Chip::kHigh, Chip::kHigh,   // violation
                                Chip::kHigh, Chip::kLow};   // valid 1
  const auto res = manchester_decode_lenient(chips);
  ASSERT_EQ(res.bits.size(), 3u);
  EXPECT_EQ(res.violations, 1u);
  EXPECT_EQ(res.bits[0], 0);
  EXPECT_EQ(res.bits[2], 1);
}

TEST(Manchester, LenientDecodeOddTailCounts) {
  const std::vector<Chip> chips{Chip::kLow, Chip::kHigh, Chip::kLow};
  const auto res = manchester_decode_lenient(chips);
  EXPECT_EQ(res.bits.size(), 1u);
  EXPECT_EQ(res.violations, 1u);
}

TEST(Packing, BytesToBitsMsbFirst) {
  const std::vector<std::uint8_t> bytes{0xA5};
  const auto bits = bytes_to_bits(bytes);
  const std::vector<std::uint8_t> expected{1, 0, 1, 0, 0, 1, 0, 1};
  EXPECT_EQ(bits, expected);
}

TEST(Packing, BitsToBytesRoundTrip) {
  Rng rng{44};
  std::vector<std::uint8_t> bytes(256);
  for (auto& b : bytes) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const auto packed = bits_to_bytes(bytes_to_bits(bytes));
  ASSERT_TRUE(packed.has_value());
  EXPECT_EQ(*packed, bytes);
}

TEST(Packing, RaggedBitsRejected) {
  const std::vector<std::uint8_t> bits(9, 0);
  EXPECT_FALSE(bits_to_bytes(bits).has_value());
}

TEST(Packing, EmptyInputsAreEmpty) {
  EXPECT_TRUE(bytes_to_bits({}).empty());
  const auto packed = bits_to_bytes({});
  ASSERT_TRUE(packed.has_value());
  EXPECT_TRUE(packed->empty());
}

// The LUT-driven byte paths (manchester_encode_bytes, the fused lenient
// decode, and the bytes_to_bits/bits_to_bytes pair) must agree with a
// first-principles bit loop on every one of the 256 possible byte
// values. This pins each table row, not just the rows random payloads
// happen to exercise.
TEST(Packing, All256ByteValuesMatchScalarBitLoops) {
  for (int value = 0; value < 256; ++value) {
    const std::vector<std::uint8_t> byte{static_cast<std::uint8_t>(value)};

    // Scalar reference: unpack MSB-first, then one transition per bit.
    std::vector<std::uint8_t> ref_bits(8);
    for (int i = 0; i < 8; ++i) {
      ref_bits[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>((value >> (7 - i)) & 1);
    }
    std::vector<Chip> ref_chips;
    for (const auto bit : ref_bits) {
      ref_chips.push_back(bit ? Chip::kHigh : Chip::kLow);
      ref_chips.push_back(bit ? Chip::kLow : Chip::kHigh);
    }

    EXPECT_EQ(bytes_to_bits(byte), ref_bits) << "value=" << value;
    EXPECT_EQ(manchester_encode(ref_bits), ref_chips) << "value=" << value;

    std::vector<Chip> lut_chips(16);
    manchester_encode_bytes(byte, lut_chips);
    EXPECT_EQ(lut_chips, ref_chips) << "value=" << value;

    std::vector<std::uint8_t> decoded(1);
    EXPECT_EQ(manchester_decode_bytes_lenient(ref_chips, decoded), 0u);
    EXPECT_EQ(decoded, byte) << "value=" << value;

    const auto packed = bits_to_bytes(ref_bits);
    ASSERT_TRUE(packed.has_value());
    EXPECT_EQ(*packed, byte) << "value=" << value;
  }
}

}  // namespace
}  // namespace densevlc::phy
