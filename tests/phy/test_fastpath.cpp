// Differential suite for the zero-allocation PHY fast paths.
//
// Every LUT/arena rework is held bit-for-bit against the frozen scalar
// baselines in bench/phy_reference.{hpp,cpp}: same chips, same decodes,
// same violation and correction counts, including Reed-Solomon error
// bursts up to and beyond the correction capacity. The binary also links
// bench/alloc_hook.cpp, so the steady-state loops can assert a literal
// zero heap allocations on the DVLC_HOT paths.
//
// The whole suite is parameterized over the SIMD dispatch: every test
// runs once with the native vector backend and once forced onto the
// scalar kernels (simd::set_force_scalar). Both legs compare against the
// same frozen reference, so scalar and vector outputs are pinned
// bit-identical to each other transitively.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "alloc_hook.hpp"
#include "common/arena.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "dsp/waveform.hpp"
#include "phy/frame.hpp"
#include "phy/frame_codec.hpp"
#include "phy/frontend.hpp"
#include "phy/interleaver.hpp"
#include "phy/manchester.hpp"
#include "phy/ook.hpp"
#include "phy/reed_solomon.hpp"
#include "phy_reference.hpp"

namespace densevlc {
namespace {

/// Param = force-scalar: false runs the native (vector) dispatch, true
/// pins every kernel onto the scalar backend.
class FastPath : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { simd::set_force_scalar(GetParam()); }
  void TearDown() override { simd::set_force_scalar(false); }
};

INSTANTIATE_TEST_SUITE_P(
    Backends, FastPath, ::testing::Values(false, true),
    [](const ::testing::TestParamInfo<bool>& info) {
      return info.param ? "ForcedScalar" : "NativeSimd";
    });

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return bytes;
}

phy::MacFrame random_frame(std::size_t payload, Rng& rng) {
  phy::MacFrame f;
  f.dst = static_cast<std::uint16_t>(rng.uniform_int(0, 0xFFFF));
  f.src = static_cast<std::uint16_t>(rng.uniform_int(0, 0xFFFF));
  f.payload = random_bytes(payload, rng);
  return f;
}

// --- Manchester ----------------------------------------------------------

TEST_P(FastPath, ManchesterEncodeMatchesScalarReference) {
  Rng rng{0xA1};
  for (std::size_t n : {0, 1, 2, 9, 64, 257, 1125}) {
    const auto bytes = random_bytes(n, rng);
    const auto ref_chips =
        bench::ref::manchester_encode(bench::ref::bytes_to_bits(bytes));
    std::vector<phy::Chip> chips(16 * n);
    phy::manchester_encode_bytes(bytes, chips);
    EXPECT_EQ(chips, ref_chips) << "n=" << n;
  }
}

TEST_P(FastPath, ManchesterLenientDecodeMatchesScalarOnCorruptChips) {
  Rng rng{0xA2};
  for (int trial = 0; trial < 20; ++trial) {
    const auto bytes = random_bytes(200, rng);
    std::vector<phy::Chip> chips(16 * bytes.size());
    phy::manchester_encode_bytes(bytes, chips);
    // Flip a handful of chips: creates coding violations and bit errors.
    for (int e = 0; e < trial; ++e) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(chips.size()) - 1));
      chips[at] = chips[at] == phy::Chip::kHigh ? phy::Chip::kLow
                                                : phy::Chip::kHigh;
    }
    const auto ref_dec = bench::ref::manchester_decode_lenient(chips);
    const auto ref_bytes = bench::ref::bits_to_bytes(ref_dec.bits);
    ASSERT_TRUE(ref_bytes.has_value());
    std::vector<std::uint8_t> fast(bytes.size());
    const std::size_t violations =
        phy::manchester_decode_bytes_lenient(chips, fast);
    EXPECT_EQ(fast, *ref_bytes) << "trial=" << trial;
    EXPECT_EQ(violations, ref_dec.violations) << "trial=" << trial;
  }
}

TEST_P(FastPath, BitHelpersMatchScalarReference) {
  Rng rng{0xA3};
  const auto bytes = random_bytes(513, rng);
  EXPECT_EQ(phy::bytes_to_bits(bytes), bench::ref::bytes_to_bits(bytes));
  const auto bits = bench::ref::bytes_to_bits(bytes);
  const auto packed = phy::bits_to_bytes(bits);
  const auto ref_packed = bench::ref::bits_to_bytes(bits);
  ASSERT_TRUE(packed.has_value());
  ASSERT_TRUE(ref_packed.has_value());
  EXPECT_EQ(*packed, *ref_packed);
}

// --- Interleaver ---------------------------------------------------------

TEST_P(FastPath, InterleaverMatchesScalarReference) {
  Rng rng{0xB1};
  for (std::size_t n : {0, 1, 7, 200, 648, 1000}) {
    const auto data = random_bytes(n, rng);
    for (std::size_t depth : {0, 1, 2, 3, 8}) {
      EXPECT_EQ(phy::interleave(data, depth),
                bench::ref::interleave(data, depth))
          << "n=" << n << " depth=" << depth;
      EXPECT_EQ(phy::deinterleave(data, depth),
                bench::ref::deinterleave(data, depth))
          << "n=" << n << " depth=" << depth;
    }
  }
}

// --- Reed-Solomon --------------------------------------------------------

TEST_P(FastPath, RsEncodeMatchesScalarReference) {
  Rng rng{0xC1};
  const phy::ReedSolomon rs{16};
  const bench::ref::ReedSolomon ref_rs{16};
  for (std::size_t n : {1, 8, 50, 200, 239}) {
    const auto msg = random_bytes(n, rng);
    EXPECT_EQ(rs.encode(msg), ref_rs.encode(msg)) << "n=" << n;
  }
}

TEST_P(FastPath, RsErrorBurstDecodesMatchScalarReference) {
  Rng rng{0xC2};
  const phy::ReedSolomon rs{16};
  const bench::ref::ReedSolomon ref_rs{16};
  const auto msg = random_bytes(200, rng);
  const auto clean = ref_rs.encode(msg);
  phy::RsDecodeResult dec;
  phy::RsScratch scratch;
  // Contiguous bursts of 0..10 errors: 9 and 10 exceed the capacity of 8
  // and must fail identically on both paths.
  for (std::size_t burst = 0; burst <= 10; ++burst) {
    auto cw = clean;
    const std::size_t start = 40 + 3 * burst;
    for (std::size_t e = 0; e < burst; ++e) {
      cw[start + e] = static_cast<std::uint8_t>(cw[start + e] ^ 0xFF);
    }
    const auto ref_dec = ref_rs.decode(cw);
    const bool ok = rs.decode_into(cw, dec, scratch);
    ASSERT_EQ(ok, ref_dec.has_value()) << "burst=" << burst;
    EXPECT_EQ(ok, burst <= rs.correction_capacity()) << "burst=" << burst;
    if (ok) {
      EXPECT_EQ(dec.data, ref_dec->data) << "burst=" << burst;
      EXPECT_EQ(dec.corrected_errors, ref_dec->corrected_errors)
          << "burst=" << burst;
      EXPECT_EQ(dec.data, msg) << "burst=" << burst;
    }
  }
}

TEST_P(FastPath, RsScatteredErrorsMatchScalarReference) {
  Rng rng{0xC3};
  const phy::ReedSolomon rs{16};
  const bench::ref::ReedSolomon ref_rs{16};
  phy::RsDecodeResult dec;
  phy::RsScratch scratch;
  for (int trial = 0; trial < 25; ++trial) {
    const auto msg = random_bytes(
        static_cast<std::size_t>(rng.uniform_int(1, 200)), rng);
    auto cw = ref_rs.encode(msg);
    const auto n_err = static_cast<std::size_t>(rng.uniform_int(0, 10));
    for (std::size_t e = 0; e < n_err; ++e) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cw.size()) - 1));
      cw[at] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    const auto ref_dec = ref_rs.decode(cw);
    const bool ok = rs.decode_into(cw, dec, scratch);
    ASSERT_EQ(ok, ref_dec.has_value()) << "trial=" << trial;
    if (ok) {
      EXPECT_EQ(dec.data, ref_dec->data) << "trial=" << trial;
      EXPECT_EQ(dec.corrected_errors, ref_dec->corrected_errors)
          << "trial=" << trial;
    }
  }
}

// --- Frame + codec -------------------------------------------------------

TEST_P(FastPath, FrameSerializationMatchesScalarReference) {
  Rng rng{0xD1};
  for (std::size_t payload : {0, 1, 199, 200, 201, 600, 1500}) {
    const auto f = random_frame(payload, rng);
    const auto wire = phy::serialize_frame(f);
    EXPECT_EQ(wire, bench::ref::serialize_frame(f)) << "payload=" << payload;
    const auto parsed = phy::parse_frame(wire);
    const auto ref_parsed = bench::ref::parse_frame(wire);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_TRUE(ref_parsed.has_value());
    EXPECT_EQ(parsed->frame, ref_parsed->frame);
    EXPECT_EQ(parsed->corrected_bytes, ref_parsed->corrected_bytes);
  }
}

TEST_P(FastPath, CodecChipPipelineMatchesScalarReference) {
  Rng rng{0xD2};
  phy::FrameCodec::Scratch cscr;
  std::vector<std::uint8_t> wire;
  std::vector<phy::Chip> chips;
  std::vector<std::uint8_t> bytes;
  phy::ParsedFrame parsed;
  for (std::size_t payload : {0, 1, 200, 600}) {
    for (std::size_t depth : {0, 1, 3}) {
      const auto f = random_frame(payload, rng);
      const auto ref_chips = bench::ref::codec_encode_chips(f, depth);
      const phy::FrameCodec codec{depth};
      codec.encode_into(f, wire, cscr);
      arena_resize(chips, wire.size() * 16);
      phy::manchester_encode_bytes(wire, chips);
      EXPECT_EQ(chips, ref_chips) << "payload=" << payload
                                  << " depth=" << depth;

      const auto ref_parsed = bench::ref::codec_decode_chips(chips, depth);
      arena_resize(bytes, chips.size() / 16);
      phy::manchester_decode_bytes_lenient(chips, bytes);
      const bool ok = codec.decode_into(bytes, parsed, cscr);
      ASSERT_TRUE(ok);
      ASSERT_TRUE(ref_parsed.has_value());
      EXPECT_EQ(parsed.frame, ref_parsed->frame);
      EXPECT_EQ(parsed.frame.payload, f.payload);
    }
  }
}

// --- OOK / front end -----------------------------------------------------

TEST_P(FastPath, ReceiveFrameIntoMatchesValueApi) {
  Rng rng{0xE1};
  const phy::OokParams params{};
  const phy::OokModulator mod{params};
  const phy::OokDemodulator demod{params.chip_rate_hz,
                                  params.sample_rate_hz()};
  phy::OokDemodulator::RxScratch rxs;
  phy::OokDemodulator::RxResult rx;
  for (int trial = 0; trial < 5; ++trial) {
    const auto f = random_frame(120, rng);
    const auto wf = mod.modulate_frame(f, false, 0, 8);
    std::vector<double> signal = wf.samples;
    for (double& v : signal) v -= params.bias_current_a;  // ideal AC coupling
    const auto value_rx = demod.receive_frame(signal);
    const bool ok = demod.receive_frame_into(signal, rx, rxs);
    ASSERT_TRUE(value_rx.has_value());
    ASSERT_TRUE(ok);
    EXPECT_EQ(rx.parsed.frame, value_rx->parsed.frame);
    EXPECT_EQ(rx.parsed.corrected_bytes, value_rx->parsed.corrected_bytes);
    EXPECT_EQ(rx.preamble_at, value_rx->preamble_at);
    EXPECT_EQ(rx.correlation, value_rx->correlation);
    EXPECT_EQ(rx.manchester_violations, value_rx->manchester_violations);
    EXPECT_EQ(rx.parsed.frame.payload, f.payload);
  }
}

TEST_P(FastPath, FrontEndProcessIntoMatchesValueApi) {
  phy::FrontEndConfig cfg{};  // default noisy configuration
  phy::ReceiverFrontEnd fe_a{cfg, Rng{99}};
  phy::ReceiverFrontEnd fe_b{cfg, Rng{99}};
  dsp::Waveform optical;
  optical.sample_rate_hz = 1e6;
  optical.samples.assign(20000, 0.0);
  for (std::size_t i = 0; i < optical.samples.size(); ++i) {
    optical.samples[i] = (i / 10) % 2 == 0 ? 2.5e-6 : 0.0;
  }
  dsp::Waveform out_b;
  // Two back-to-back calls: filter and RNG state must stay in lockstep.
  for (int pass = 0; pass < 2; ++pass) {
    const auto out_a = fe_a.process(optical);
    fe_b.process_into(optical, out_b);
    EXPECT_EQ(out_a.samples, out_b.samples) << "pass=" << pass;
    EXPECT_EQ(out_a.sample_rate_hz, out_b.sample_rate_hz);
  }
}

// --- Exhaustive byte-domain sweeps ---------------------------------------

TEST_P(FastPath, ManchesterAllByteValuesMatchScalarReference) {
  // Every possible byte value through encode and decode: the whole LUT /
  // movemask domain, not just random samples.
  std::vector<std::uint8_t> bytes(256);
  std::iota(bytes.begin(), bytes.end(), std::uint8_t{0});
  const auto ref_chips =
      bench::ref::manchester_encode(bench::ref::bytes_to_bits(bytes));
  std::vector<phy::Chip> chips(16 * bytes.size());
  phy::manchester_encode_bytes(bytes, chips);
  EXPECT_EQ(chips, ref_chips);

  std::vector<std::uint8_t> decoded(bytes.size());
  const std::size_t violations =
      phy::manchester_decode_bytes_lenient(chips, decoded);
  EXPECT_EQ(decoded, bytes);
  EXPECT_EQ(violations, 0u);

  // Every possible *chip pair* value: both violation patterns (00, 11)
  // in every pair slot of a byte, against the reference decoder.
  std::vector<phy::Chip> raw(16 * 256);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    // Walks all 4 pair states through all 8 positions over the sweep.
    raw[i] = ((i * 2654435761u) >> 7) % 2 == 0 ? phy::Chip::kLow
                                               : phy::Chip::kHigh;
  }
  const auto ref_dec = bench::ref::manchester_decode_lenient(raw);
  const auto ref_bytes = bench::ref::bits_to_bytes(ref_dec.bits);
  ASSERT_TRUE(ref_bytes.has_value());
  std::vector<std::uint8_t> fast(256);
  const std::size_t raw_violations =
      phy::manchester_decode_bytes_lenient(raw, fast);
  EXPECT_EQ(fast, *ref_bytes);
  EXPECT_EQ(raw_violations, ref_dec.violations);
}

TEST_P(FastPath, RsAllByteValuesMatchScalarReference) {
  const phy::ReedSolomon rs{16};
  const bench::ref::ReedSolomon ref_rs{16};
  // One codeword containing every byte value (GF(256) is exercised over
  // its full domain), plus every single-byte message.
  std::vector<std::uint8_t> all(239);
  std::iota(all.begin(), all.end(), std::uint8_t{0});
  EXPECT_EQ(rs.encode(all), ref_rs.encode(all));
  phy::RsDecodeResult dec;
  phy::RsScratch scratch;
  for (int v = 0; v < 256; ++v) {
    const std::vector<std::uint8_t> one{static_cast<std::uint8_t>(v)};
    const auto cw = ref_rs.encode(one);
    EXPECT_EQ(rs.encode(one), cw) << "v=" << v;
    ASSERT_TRUE(rs.decode_into(cw, dec, scratch)) << "v=" << v;
    EXPECT_EQ(dec.data, one) << "v=" << v;
    EXPECT_EQ(dec.corrected_errors, 0u) << "v=" << v;
  }
}

// --- Zero-allocation assertions ------------------------------------------

TEST_P(FastPath, CodecSteadyStateIsAllocationFree) {
  Rng rng{0xF1};
  const auto f = random_frame(600, rng);
  const phy::FrameCodec codec{phy::FrameCodec::matched_depth(600)};
  phy::FrameCodec::Scratch cscr;
  std::vector<std::uint8_t> wire;
  std::vector<phy::Chip> chips;
  std::vector<std::uint8_t> bytes;
  phy::ParsedFrame parsed;
  const auto run_one = [&] {
    codec.encode_into(f, wire, cscr);
    arena_resize(chips, wire.size() * 16);
    phy::manchester_encode_bytes(wire, chips);
    arena_resize(bytes, chips.size() / 16);
    phy::manchester_decode_bytes_lenient(chips, bytes);
    ASSERT_TRUE(codec.decode_into(bytes, parsed, cscr));
  };
  run_one();  // warm-up: buffers reach steady-state capacity here
  ASSERT_TRUE(arena_warm(chips, wire.size() * 16));
  ASSERT_TRUE(arena_warm(bytes, chips.size() / 16));
  const std::uint64_t before = bench::alloc_count();
  for (int i = 0; i < 10; ++i) run_one();
  EXPECT_EQ(bench::alloc_count() - before, 0u);
}

TEST_P(FastPath, ReceiveChainSteadyStateIsAllocationFree) {
  Rng rng{0xF2};
  const auto f = random_frame(300, rng);
  const phy::OokParams params{};
  const phy::OokModulator mod{params};
  const phy::OokDemodulator demod{params.chip_rate_hz,
                                  params.sample_rate_hz()};
  phy::OokModulator::TxScratch txs;
  phy::OokDemodulator::RxScratch rxs;
  phy::OokDemodulator::RxResult rx;
  dsp::Waveform wf;
  const auto run_one = [&] {
    mod.modulate_frame_into(f, false, 0, 8, wf, txs);
    for (double& v : wf.samples) v -= params.bias_current_a;
    ASSERT_TRUE(demod.receive_frame_into(wf.samples, rx, rxs));
    ASSERT_EQ(rx.parsed.frame.payload, f.payload);
  };
  run_one();  // warm-up
  const std::uint64_t before = bench::alloc_count();
  for (int i = 0; i < 5; ++i) run_one();
  EXPECT_EQ(bench::alloc_count() - before, 0u);
}

}  // namespace
}  // namespace densevlc
