// Tests for the interleaving frame codec.
#include "phy/frame_codec.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace densevlc::phy {
namespace {

MacFrame make_frame(std::size_t len, Rng& rng) {
  MacFrame f;
  f.dst = 1;
  f.src = 0xC0;
  f.payload.resize(len);
  for (auto& b : f.payload) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return f;
}

TEST(FrameCodec, DepthZeroMatchesPaperFormat) {
  Rng rng{1};
  const auto f = make_frame(300, rng);
  const FrameCodec codec{0};
  EXPECT_EQ(codec.encode(f), serialize_frame(f));
}

TEST(FrameCodec, RoundTripAcrossDepths) {
  Rng rng{2};
  for (std::size_t depth : {0u, 1u, 2u, 4u, 8u}) {
    const FrameCodec codec{depth};
    for (std::size_t len : {0u, 50u, 200u, 450u, 801u}) {
      const auto f = make_frame(len, rng);
      const auto decoded = codec.decode(codec.encode(f));
      ASSERT_TRUE(decoded.has_value()) << "depth " << depth << " len "
                                       << len;
      EXPECT_EQ(decoded->frame, f);
    }
  }
}

TEST(FrameCodec, HeaderStaysClear) {
  Rng rng{3};
  const auto f = make_frame(400, rng);
  const FrameCodec codec{4};
  const auto wire = codec.encode(f);
  const auto plain = serialize_frame(f);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(wire[i], plain[i]) << "header byte " << i;
  }
  // ...and the body really is permuted.
  bool differs = false;
  for (std::size_t i = 9; i < wire.size(); ++i) {
    differs = differs || wire[i] != plain[i];
  }
  EXPECT_TRUE(differs);
}

TEST(FrameCodec, MatchedDepthSurvivesBurstPlainFormatDoesNot) {
  Rng rng{4};
  const auto f = make_frame(800, rng);  // 4 RS blocks
  const std::size_t depth = FrameCodec::matched_depth(f.payload.size());
  EXPECT_EQ(depth, 4u);
  const FrameCodec protected_codec{depth};
  const FrameCodec plain_codec{0};

  auto burst = [&](std::vector<std::uint8_t> wire) {
    for (std::size_t i = 300; i < 330; ++i) wire[i] ^= 0x77;
    return wire;
  };

  EXPECT_FALSE(plain_codec.decode(burst(plain_codec.encode(f))).has_value());
  const auto decoded =
      protected_codec.decode(burst(protected_codec.encode(f)));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->frame, f);
  EXPECT_GT(decoded->corrected_bytes, 0u);
}

TEST(FrameCodec, MatchedDepthSingleBlockIsOne) {
  EXPECT_EQ(FrameCodec::matched_depth(0), 1u);
  EXPECT_EQ(FrameCodec::matched_depth(200), 1u);
  EXPECT_EQ(FrameCodec::matched_depth(201), 2u);
  EXPECT_EQ(FrameCodec::matched_depth(1000), 5u);
}

TEST(FrameCodec, WrongDepthFailsToDecode) {
  Rng rng{5};
  const auto f = make_frame(600, rng);
  const FrameCodec enc{3};
  const FrameCodec dec{5};
  // Mismatched interleaving scrambles the RS blocks beyond capacity.
  EXPECT_FALSE(dec.decode(enc.encode(f)).has_value());
}

}  // namespace
}  // namespace densevlc::phy
