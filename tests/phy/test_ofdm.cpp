// Tests for the DCO-OFDM extension PHY.
#include "phy/ofdm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace densevlc::phy {
namespace {

OfdmConfig default_config() {
  OfdmConfig cfg;
  cfg.fft_size = 64;
  cfg.cyclic_prefix = 8;
  cfg.bits_per_symbol = 4;  // 16-QAM
  cfg.swing_scale_a = 0.12;
  return cfg;
}

std::vector<std::uint8_t> random_bits(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = rng.bernoulli(0.5) ? 1 : 0;
  return bits;
}

TEST(Qam, RoundTripAllSymbols) {
  for (std::size_t bits : {2u, 4u, 6u}) {
    const std::uint32_t count = 1u << bits;
    for (std::uint32_t s = 0; s < count; ++s) {
      EXPECT_EQ(qam_demodulate(qam_modulate(s, bits), bits), s)
          << bits << "-bit symbol " << s;
    }
  }
}

TEST(Qam, UnitAveragePower) {
  for (std::size_t bits : {2u, 4u, 6u}) {
    const std::uint32_t count = 1u << bits;
    double power = 0.0;
    for (std::uint32_t s = 0; s < count; ++s) {
      power += std::norm(qam_modulate(s, bits));
    }
    EXPECT_NEAR(power / count, 1.0, 1e-12) << bits << " bits";
  }
}

TEST(Qam, GrayNeighborsDifferByOneBit) {
  // Adjacent I-axis points must differ in exactly one bit (per axis).
  const std::size_t bits = 4;
  // Collect symbols sorted by I for fixed Q.
  std::vector<std::pair<double, std::uint32_t>> by_i;
  for (std::uint32_t s = 0; s < 16; ++s) {
    const auto p = qam_modulate(s, bits);
    if (std::abs(p.imag() - qam_modulate(0, bits).imag()) < 1e-12) {
      by_i.emplace_back(p.real(), s);
    }
  }
  std::sort(by_i.begin(), by_i.end());
  for (std::size_t i = 1; i < by_i.size(); ++i) {
    const std::uint32_t diff = by_i[i].second ^ by_i[i - 1].second;
    EXPECT_EQ(__builtin_popcount(diff), 1);
  }
}

TEST(OfdmModem, RejectsBadConfig) {
  OfdmConfig bad = default_config();
  bad.fft_size = 60;
  EXPECT_THROW(OfdmModem{bad}, std::invalid_argument);
  bad = default_config();
  bad.bits_per_symbol = 3;
  EXPECT_THROW(OfdmModem{bad}, std::invalid_argument);
  bad = default_config();
  bad.cyclic_prefix = 64;
  EXPECT_THROW(OfdmModem{bad}, std::invalid_argument);
}

TEST(OfdmModem, WaveformStaysInLedRange) {
  const OfdmModem modem{default_config()};
  const auto bits = random_bits(1000, 1);
  const auto wf = modem.modulate(bits);
  for (double i : wf.samples) {
    EXPECT_GE(i, 0.0);
    EXPECT_LE(i, 0.9);
  }
}

TEST(OfdmModem, AverageCurrentNearBias) {
  // DCO-OFDM keeps mean intensity at the bias (illumination unchanged).
  const OfdmModem modem{default_config()};
  const auto bits = random_bits(4000, 2);
  const auto wf = modem.modulate(bits);
  double mean = 0.0;
  for (double i : wf.samples) mean += i;
  mean /= static_cast<double>(wf.samples.size());
  EXPECT_NEAR(mean, 0.45, 0.01);
}

TEST(OfdmModem, CleanRoundTrip) {
  for (std::size_t qam_bits : {2u, 4u, 6u}) {
    OfdmConfig cfg = default_config();
    cfg.bits_per_symbol = qam_bits;
    const OfdmModem modem{cfg};
    const auto bits = random_bits(500, 3 + qam_bits);
    const auto wf = modem.modulate(bits);
    const auto decoded = modem.demodulate(wf, bits.size());
    ASSERT_TRUE(decoded.has_value()) << qam_bits;
    EXPECT_EQ(*decoded, bits) << qam_bits << "-QAM";
  }
}

TEST(OfdmModem, RoundTripThroughFlatChannel) {
  // The pilot equalizer must absorb an arbitrary flat gain.
  const OfdmModem modem{default_config()};
  const auto bits = random_bits(600, 7);
  auto wf = modem.modulate(bits);
  for (double& s : wf.samples) s *= 3.7e-7;  // a typical channel gain
  const auto decoded = modem.demodulate(wf, bits.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, bits);
}

TEST(OfdmModem, SurvivesModerateNoise) {
  const OfdmModem modem{default_config()};
  const auto bits = random_bits(800, 8);
  auto wf = modem.modulate(bits);
  Rng rng{9};
  // AC swing RMS is 0.12; 25 dB SNR noise.
  const double sigma = 0.12 / std::pow(10.0, 25.0 / 20.0);
  for (double& s : wf.samples) s += rng.gaussian(0.0, sigma);
  const auto decoded = modem.demodulate(wf, bits.size());
  ASSERT_TRUE(decoded.has_value());
  std::size_t errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    errors += (*decoded)[i] != bits[i] ? 1 : 0;
  }
  EXPECT_LT(errors, bits.size() / 100);
}

TEST(OfdmModem, HeavyNoiseCausesErrors) {
  OfdmConfig cfg = default_config();
  cfg.bits_per_symbol = 6;  // fragile 64-QAM
  const OfdmModem modem{cfg};
  const auto bits = random_bits(900, 10);
  auto wf = modem.modulate(bits);
  Rng rng{11};
  for (double& s : wf.samples) s += rng.gaussian(0.0, 0.06);
  const auto decoded = modem.demodulate(wf, bits.size());
  ASSERT_TRUE(decoded.has_value());
  std::size_t errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    errors += (*decoded)[i] != bits[i] ? 1 : 0;
  }
  EXPECT_GT(errors, 0u);
}

TEST(OfdmModem, TooShortWaveformRejected) {
  const OfdmModem modem{default_config()};
  dsp::Waveform wf;
  wf.sample_rate_hz = 2e6;
  wf.samples.assign(10, 0.45);
  EXPECT_FALSE(modem.demodulate(wf, 100).has_value());
}

TEST(OfdmModem, BitRateScalesWithQamOrder) {
  OfdmConfig cfg = default_config();
  cfg.bits_per_symbol = 2;
  const double r2 = OfdmModem{cfg}.bit_rate_bps();
  cfg.bits_per_symbol = 6;
  const double r6 = OfdmModem{cfg}.bit_rate_bps();
  EXPECT_NEAR(r6 / r2, 3.0, 1e-12);
  EXPECT_GT(r2, 0.0);
}

TEST(OfdmModem, SymbolsForBitsCeils) {
  const OfdmModem modem{default_config()};  // 31 carriers * 4 bits = 124
  EXPECT_EQ(modem.symbols_for_bits(1), 1u);
  EXPECT_EQ(modem.symbols_for_bits(124), 1u);
  EXPECT_EQ(modem.symbols_for_bits(125), 2u);
}

}  // namespace
}  // namespace densevlc::phy
