// Tests for the block interleaver.
#include "phy/interleaver.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "phy/reed_solomon.hpp"

namespace densevlc::phy {
namespace {

TEST(Interleaver, DepthOneIsIdentity) {
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  EXPECT_EQ(interleave(data, 0), data);
  EXPECT_EQ(interleave(data, 1), data);
  EXPECT_EQ(deinterleave(data, 1), data);
}

TEST(Interleaver, KnownSmallCase) {
  // 6 bytes, depth 2: rows [0 1 2 / 3 4 5], column read: 0 3 1 4 2 5.
  const std::vector<std::uint8_t> data{0, 1, 2, 3, 4, 5};
  const auto out = interleave(data, 2);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{0, 3, 1, 4, 2, 5}));
}

TEST(Interleaver, RoundTripExact) {
  Rng rng{1};
  for (std::size_t size : {5u, 16u, 100u, 217u, 1000u}) {
    for (std::size_t depth : {2u, 4u, 8u, 16u}) {
      std::vector<std::uint8_t> data(size);
      for (auto& b : data) {
        b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      }
      const auto rt = deinterleave(interleave(data, depth), depth);
      EXPECT_EQ(rt, data) << "size " << size << " depth " << depth;
    }
  }
}

TEST(Interleaver, OutputIsPermutation) {
  std::vector<std::uint8_t> data(97);
  std::iota(data.begin(), data.end(), 0);
  const auto out = interleave(data, 7);
  auto sorted = out;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, data);
}

TEST(Interleaver, SpreadsBursts) {
  // A contiguous burst of length L lands on positions that, after
  // deinterleaving, are at least `depth` apart.
  std::vector<std::uint8_t> data(200, 0);
  const std::size_t depth = 8;
  auto wire = interleave(data, depth);
  // Corrupt a 16-byte burst on the wire.
  for (std::size_t i = 50; i < 66; ++i) wire[i] = 0xFF;
  const auto restored = deinterleave(wire, depth);
  // Count the longest run of corrupted positions after deinterleaving.
  std::size_t longest = 0;
  std::size_t run = 0;
  for (std::size_t i = 0; i < restored.size(); ++i) {
    if (restored[i] == 0xFF) {
      ++run;
      longest = std::max(longest, run);
    } else {
      run = 0;
    }
  }
  EXPECT_LE(longest, 2u);  // 16-byte burst spread over depth 8
}

TEST(Interleaver, RescuesRsFromBurst) {
  // End-to-end: a 30-byte burst kills a bare RS(216,200) block but is
  // survivable when the interleaver depth equals the codeword count, so
  // every matrix row is exactly one codeword and a wire burst of L
  // spreads to ceil(L / depth) errors per codeword (30/4 -> <= 8).
  ReedSolomon rs{16};
  Rng rng{2};
  const std::size_t depth = 4;  // one row per codeword
  std::vector<std::uint8_t> wire;
  std::vector<std::vector<std::uint8_t>> messages;
  for (std::size_t b = 0; b < depth; ++b) {
    std::vector<std::uint8_t> msg(200);
    for (auto& byte : msg) {
      byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    messages.push_back(msg);
    const auto cw = rs.encode(msg);
    wire.insert(wire.end(), cw.begin(), cw.end());
  }

  auto corrupt = [&](std::vector<std::uint8_t> data) {
    for (std::size_t i = 300; i < 330; ++i) data[i] ^= 0x5A;
    return data;
  };

  // Without interleaving: the burst sits inside codeword 1 and breaks it.
  {
    const auto hit = corrupt(wire);
    const auto cw1 = std::vector<std::uint8_t>(hit.begin() + 216,
                                               hit.begin() + 432);
    EXPECT_FALSE(rs.decode(cw1).has_value());
  }

  // With matched-depth interleaving all four codewords decode.
  {
    const auto hit = deinterleave(corrupt(interleave(wire, depth)), depth);
    for (std::size_t b = 0; b < depth; ++b) {
      const auto cw = std::vector<std::uint8_t>(
          hit.begin() + static_cast<std::ptrdiff_t>(b * 216),
          hit.begin() + static_cast<std::ptrdiff_t>((b + 1) * 216));
      const auto res = rs.decode(cw);
      ASSERT_TRUE(res.has_value()) << "block " << b;
      EXPECT_EQ(res->data, messages[b]);
    }
  }
}

TEST(Interleaver, BurstToleranceFormula) {
  EXPECT_EQ(burst_tolerance(1, 8), 8u);
  EXPECT_EQ(burst_tolerance(8, 8), 64u);
  EXPECT_EQ(burst_tolerance(16, 8), 128u);
}

}  // namespace
}  // namespace densevlc::phy
