// Tests for the Reed-Solomon codec used in the frame format (Table 3).
#include "phy/reed_solomon.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace densevlc::phy {
namespace {

std::vector<std::uint8_t> random_message(std::size_t len, Rng& rng) {
  std::vector<std::uint8_t> msg(len);
  for (auto& b : msg) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return msg;
}

TEST(ReedSolomon, RejectsBadParityCounts) {
  EXPECT_THROW(ReedSolomon{0}, std::invalid_argument);
  EXPECT_THROW(ReedSolomon{3}, std::invalid_argument);
  EXPECT_THROW(ReedSolomon{256}, std::invalid_argument);
  EXPECT_NO_THROW(ReedSolomon{16});
}

TEST(ReedSolomon, EncodeIsSystematic) {
  ReedSolomon rs{16};
  const std::vector<std::uint8_t> msg{1, 2, 3, 4, 5};
  const auto cw = rs.encode(msg);
  ASSERT_EQ(cw.size(), msg.size() + 16);
  for (std::size_t i = 0; i < msg.size(); ++i) EXPECT_EQ(cw[i], msg[i]);
}

TEST(ReedSolomon, RejectsOverlongMessage) {
  ReedSolomon rs{16};
  const std::vector<std::uint8_t> msg(240, 0);
  EXPECT_THROW(rs.encode(msg), std::invalid_argument);
}

TEST(ReedSolomon, CleanCodewordDecodesWithZeroCorrections) {
  ReedSolomon rs{16};
  Rng rng{1};
  const auto msg = random_message(200, rng);
  const auto res = rs.decode(rs.encode(msg));
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->data, msg);
  EXPECT_EQ(res->corrected_errors, 0u);
}

TEST(ReedSolomon, CorrectsUpToCapacity) {
  ReedSolomon rs{16};
  Rng rng{2};
  for (std::size_t nerr = 1; nerr <= 8; ++nerr) {
    const auto msg = random_message(200, rng);
    auto cw = rs.encode(msg);
    // Corrupt nerr distinct positions.
    std::vector<std::size_t> positions;
    while (positions.size() < nerr) {
      const auto p = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cw.size()) - 1));
      bool dup = false;
      for (auto q : positions) dup = dup || q == p;
      if (!dup) positions.push_back(p);
    }
    for (auto p : positions) {
      cw[p] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    }
    const auto res = rs.decode(cw);
    ASSERT_TRUE(res.has_value()) << "errors: " << nerr;
    EXPECT_EQ(res->data, msg);
    EXPECT_EQ(res->corrected_errors, nerr);
  }
}

TEST(ReedSolomon, FailsBeyondCapacity) {
  ReedSolomon rs{16};
  Rng rng{3};
  int failures = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    const auto msg = random_message(100, rng);
    auto cw = rs.encode(msg);
    // 20 errors >> capacity 8: decode must fail (or at least never
    // silently return the wrong message as a success with few errors).
    for (int e = 0; e < 20; ++e) {
      const auto p = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cw.size()) - 1));
      cw[p] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    }
    const auto res = rs.decode(cw);
    if (!res) {
      ++failures;
    } else {
      // Miscorrection to a *valid* codeword is theoretically possible but
      // must never reproduce the original message by luck.
      EXPECT_NE(res->data, msg);
    }
  }
  EXPECT_GT(failures, trials / 2);
}

TEST(ReedSolomon, ParityOnlyErrorsAreCorrected) {
  ReedSolomon rs{16};
  Rng rng{4};
  const auto msg = random_message(50, rng);
  auto cw = rs.encode(msg);
  cw[cw.size() - 1] ^= 0x5A;  // corrupt parity only
  cw[cw.size() - 9] ^= 0xA5;
  const auto res = rs.decode(cw);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->data, msg);
  EXPECT_EQ(res->corrected_errors, 2u);
}

TEST(ReedSolomon, ShortMessagesWork) {
  ReedSolomon rs{16};
  const std::vector<std::uint8_t> one{0x42};
  auto cw = rs.encode(one);
  cw[0] ^= 0xFF;
  const auto res = rs.decode(cw);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->data, one);
}

TEST(ReedSolomon, DecodeRejectsDegenerateInputs) {
  ReedSolomon rs{16};
  EXPECT_FALSE(rs.decode(std::vector<std::uint8_t>(10, 0)).has_value());
  EXPECT_FALSE(rs.decode(std::vector<std::uint8_t>(300, 0)).has_value());
}

TEST(ReedSolomon, SmallerCodesHaveSmallerCapacity) {
  ReedSolomon rs4{4};  // corrects 2
  Rng rng{5};
  const auto msg = random_message(30, rng);
  auto cw = rs4.encode(msg);
  cw[0] ^= 1;
  cw[10] ^= 2;
  auto res = rs4.decode(cw);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->data, msg);
  cw[20] ^= 3;  // third error exceeds capacity
  res = rs4.decode(cw);
  if (res) {
    EXPECT_NE(res->data, msg);
  }
}

// Property sweep: round-trips for every payload length used by the frame
// layer's block splitter.
class RsLengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsLengthSweep, RoundTripWithMaxErrors) {
  ReedSolomon rs{16};
  Rng rng{100 + GetParam()};
  const auto msg = random_message(GetParam(), rng);
  auto cw = rs.encode(msg);
  std::vector<std::size_t> positions;
  while (positions.size() < 8) {
    const auto p = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(cw.size()) - 1));
    bool dup = false;
    for (auto q : positions) dup = dup || q == p;
    if (!dup) positions.push_back(p);
  }
  for (auto p : positions) cw[p] ^= 0x77;
  const auto res = rs.decode(cw);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->data, msg);
}

INSTANTIATE_TEST_SUITE_P(Lengths, RsLengthSweep,
                         ::testing::Values(9u, 16u, 50u, 100u, 150u, 199u,
                                           200u, 239u));

}  // namespace
}  // namespace densevlc::phy
