// Tests for the DenseVLC frame format (paper Table 3).
#include "phy/frame.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace densevlc::phy {
namespace {

MacFrame make_frame(std::size_t payload_len, Rng& rng) {
  MacFrame f;
  f.dst = 3;
  f.src = 0xC0;
  f.protocol = static_cast<std::uint16_t>(Protocol::kData);
  f.payload.resize(payload_len);
  for (auto& b : f.payload) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return f;
}

TEST(Frame, SerializedSizeMatchesTable3) {
  // Header 9 B + payload + ceil(x/200) * 16 B of Reed-Solomon.
  EXPECT_EQ(serialized_frame_bytes(0), 9u);
  EXPECT_EQ(serialized_frame_bytes(1), 9u + 1 + 16);
  EXPECT_EQ(serialized_frame_bytes(200), 9u + 200 + 16);
  EXPECT_EQ(serialized_frame_bytes(201), 9u + 201 + 32);
  EXPECT_EQ(serialized_frame_bytes(1000), 9u + 1000 + 5 * 16);
}

TEST(Frame, RoundTripCleanChannel) {
  Rng rng{1};
  for (std::size_t len : {0u, 1u, 50u, 200u, 201u, 450u, 1500u}) {
    const auto f = make_frame(len, rng);
    const auto bytes = serialize_frame(f);
    const auto parsed = parse_frame(bytes);
    ASSERT_TRUE(parsed.has_value()) << "len " << len;
    EXPECT_EQ(parsed->frame, f);
    EXPECT_EQ(parsed->corrected_bytes, 0u);
  }
}

TEST(Frame, PayloadTooLargeThrows) {
  Rng rng{2};
  auto f = make_frame(kMaxPayload + 1, rng);
  EXPECT_THROW(serialize_frame(f), std::invalid_argument);
}

TEST(Frame, CorrectsPayloadErrors) {
  Rng rng{3};
  const auto f = make_frame(400, rng);  // 2 RS blocks
  auto bytes = serialize_frame(f);
  // Up to 8 byte errors per block: hit both blocks.
  bytes[9 + 10] ^= 0xFF;
  bytes[9 + 150] ^= 0x0F;
  bytes[9 + 250] ^= 0xAA;
  bytes[9 + 399] ^= 0x55;
  const auto parsed = parse_frame(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->frame, f);
  EXPECT_EQ(parsed->corrected_bytes, 4u);
}

TEST(Frame, UncorrectableBlockFails) {
  Rng rng{4};
  const auto f = make_frame(100, rng);
  auto bytes = serialize_frame(f);
  for (std::size_t i = 0; i < 20; ++i) bytes[9 + i] ^= 0x3C;
  EXPECT_FALSE(parse_frame(bytes).has_value());
}

TEST(Frame, BadSfdRejected) {
  Rng rng{5};
  auto bytes = serialize_frame(make_frame(10, rng));
  bytes[0] ^= 0x01;
  EXPECT_FALSE(parse_frame(bytes).has_value());
}

TEST(Frame, ImplausibleLengthRejected) {
  Rng rng{6};
  auto bytes = serialize_frame(make_frame(10, rng));
  bytes[1] = 0xFF;  // length = 65303+
  bytes[2] = 0xFF;
  EXPECT_FALSE(parse_frame(bytes).has_value());
}

TEST(Frame, TruncatedBufferRejected) {
  Rng rng{7};
  const auto bytes = serialize_frame(make_frame(100, rng));
  const std::vector<std::uint8_t> cut(bytes.begin(), bytes.end() - 5);
  EXPECT_FALSE(parse_frame(cut).has_value());
  EXPECT_FALSE(parse_frame(std::vector<std::uint8_t>{}).has_value());
}

TEST(Frame, PatternsAreFixedAndDistinct) {
  const auto pilot = pilot_pattern();
  const auto pre = preamble_pattern();
  EXPECT_EQ(pilot.size(), kPilotChips);
  EXPECT_EQ(pre.size(), kPreambleChips);
  bool differ = false;
  for (std::size_t i = 0; i < pilot.size(); ++i) {
    differ = differ || pilot[i] != pre[i];
  }
  EXPECT_TRUE(differ);
}

TEST(Frame, ChipsIncludePreambleAndManchesterBody) {
  Rng rng{8};
  const auto f = make_frame(20, rng);
  const auto chips = frame_to_chips(f);
  const auto body_bytes = serialize_frame(f).size();
  EXPECT_EQ(chips.size(), kPreambleChips + body_bytes * 8 * 2);
}

TEST(ControllerFrame, RoundTrip) {
  Rng rng{9};
  ControllerFrame cf;
  cf.tx_mask = 0x0000000F00000301ULL;
  cf.leading_tx = 7;
  cf.frame = make_frame(64, rng);
  const auto bytes = serialize_controller_frame(cf);
  const auto parsed = parse_controller_frame(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, cf);
}

TEST(ControllerFrame, SelectsByMask) {
  ControllerFrame cf;
  cf.tx_mask = (1ULL << 0) | (1ULL << 7) | (1ULL << 35);
  EXPECT_TRUE(cf.selects(0));
  EXPECT_TRUE(cf.selects(7));
  EXPECT_TRUE(cf.selects(35));
  EXPECT_FALSE(cf.selects(1));
  EXPECT_FALSE(cf.selects(64));  // out of range
}

TEST(ControllerFrame, TruncatedRejected) {
  EXPECT_FALSE(
      parse_controller_frame(std::vector<std::uint8_t>(10, 0)).has_value());
}

}  // namespace
}  // namespace densevlc::phy
