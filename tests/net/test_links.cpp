// Tests for the control-plane network models.
#include "net/links.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace densevlc::net {
namespace {

TEST(SimLink, DeliversWithLatency) {
  Simulator des;
  SimLink link{des, LinkConfig{100e-6, 0.0, 0.0}, Rng{1}};
  bool delivered = false;
  SimTime at{};
  EXPECT_TRUE(link.send({1, 2, 3}, [&](const std::vector<std::uint8_t>& p) {
    delivered = true;
    at = des.now();
    EXPECT_EQ(p, (std::vector<std::uint8_t>{1, 2, 3}));
  }));
  des.run_until(SimTime::from_ms(10));
  EXPECT_TRUE(delivered);
  EXPECT_GE(at, SimTime::from_us(100));
}

TEST(SimLink, JitterIsNonNegativeAddition) {
  Simulator des;
  SimLink link{des, LinkConfig{50e-6, 20e-6, 0.0}, Rng{2}};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(link.draw_latency(), 50e-6);
  }
}

TEST(SimLink, LossDropsDeliveries) {
  Simulator des;
  SimLink link{des, LinkConfig{10e-6, 0.0, 0.5}, Rng{3}};
  int delivered = 0;
  for (int i = 0; i < 1000; ++i) {
    (void)link.send({0}, [&](const auto&) { ++delivered; });  // loss expected
  }
  des.run_until(SimTime::from_sec(1));
  EXPECT_EQ(link.sent(), 1000u);
  EXPECT_NEAR(static_cast<double>(link.lost()), 500.0, 60.0);
  EXPECT_EQ(static_cast<std::uint64_t>(delivered) + link.lost(), 1000u);
}

TEST(SimLink, NoLossDeliversEverything) {
  Simulator des;
  SimLink link{des, LinkConfig{10e-6, 5e-6, 0.0}, Rng{4}};
  int delivered = 0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(link.send({0}, [&](const auto&) { ++delivered; }));
  }
  des.run_until(SimTime::from_sec(1));
  EXPECT_EQ(delivered, 100);
}

TEST(SimLink, StatsAccountForEveryPacket) {
  Simulator des;
  SimLink link{des, LinkConfig{100e-6, 50e-6, 0.3}, Rng{8}};
  for (int i = 0; i < 500; ++i) {
    (void)link.send({1}, [](const auto&) {});  // loss expected
  }
  const auto& mid = link.stats();
  EXPECT_EQ(mid.sent, 500u);
  EXPECT_EQ(mid.delivered, 0u);  // nothing delivered before the sim runs
  EXPECT_EQ(mid.in_flight(), 500u - mid.lost);

  des.run_until(SimTime::from_sec(10));
  const auto& s = link.stats();
  EXPECT_EQ(s.sent, 500u);
  EXPECT_EQ(s.lost + s.delivered, 500u);  // every packet accounted for
  EXPECT_EQ(s.in_flight(), 0u);
  EXPECT_GT(s.delivered, 0u);
  // Latency tallies: base 100 us, so the mean sits above it and the max
  // bounds the mean.
  EXPECT_GE(s.mean_latency_s(), 100e-6);
  EXPECT_GE(s.max_latency_s, s.mean_latency_s());
  EXPECT_NEAR(s.total_latency_s,
              s.mean_latency_s() * static_cast<double>(s.delivered), 1e-12);
}

TEST(SimLink, LosslessStatsHaveZeroLost) {
  Simulator des;
  SimLink link{des, LinkConfig{10e-6, 0.0, 0.0}, Rng{9}};
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(link.send({0}, [](const auto&) {}));
  }
  des.run_until(SimTime::from_sec(1));
  const auto& s = link.stats();
  EXPECT_EQ(s.lost, 0u);
  EXPECT_EQ(s.delivered, 50u);
  // No jitter: every delivery took the base latency (mean up to the
  // accumulation rounding of the sum).
  EXPECT_NEAR(s.mean_latency_s(), 10e-6, 1e-12);
  EXPECT_DOUBLE_EQ(s.max_latency_s, 10e-6);
}

TEST(SimLink, EmptyStatsAreZero) {
  const LinkStats s;
  EXPECT_EQ(s.in_flight(), 0u);
  EXPECT_DOUBLE_EQ(s.mean_latency_s(), 0.0);
}

TEST(Multicast, FansOutToAllSubscribers) {
  Simulator des;
  EthernetMulticast eth{des, LinkConfig{100e-6, 10e-6, 0.0}, Rng{5}};
  std::vector<int> hits(3, 0);
  for (std::size_t i = 0; i < 3; ++i) {
    eth.subscribe([&hits, i](std::size_t id, const auto&) {
      EXPECT_EQ(id, i);
      ++hits[i];
    });
  }
  EXPECT_EQ(eth.subscriber_count(), 3u);
  eth.send({42});
  des.run_until(SimTime::from_ms(10));
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Multicast, IndependentLatenciesPerSubscriber) {
  Simulator des;
  EthernetMulticast eth{des, LinkConfig{100e-6, 50e-6, 0.0}, Rng{6}};
  std::vector<SimTime> arrivals;
  for (int i = 0; i < 2; ++i) {
    eth.subscribe([&](std::size_t, const auto&) {
      arrivals.push_back(des.now());
    });
  }
  eth.send({1});
  des.run_until(SimTime::from_ms(10));
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NE(arrivals[0], arrivals[1]);  // jitter decorrelates ports
}

TEST(Multicast, StatsAggregateAcrossSubscribers) {
  Simulator des;
  EthernetMulticast eth{des, LinkConfig{100e-6, 10e-6, 0.0}, Rng{10}};
  for (int i = 0; i < 3; ++i) {
    eth.subscribe([](std::size_t, const auto&) {});
  }
  eth.send({1});
  eth.send({2});
  des.run_until(SimTime::from_ms(10));
  const auto& s = eth.stats();
  EXPECT_EQ(s.sent, 6u);  // 2 sends x 3 subscribers
  EXPECT_EQ(s.delivered, 6u);
  EXPECT_EQ(s.lost, 0u);
  EXPECT_GE(s.mean_latency_s(), 100e-6);
}

TEST(Multicast, PayloadIntegrity) {
  Simulator des;
  EthernetMulticast eth{des, LinkConfig{10e-6, 0.0, 0.0}, Rng{7}};
  const std::vector<std::uint8_t> payload{9, 8, 7, 6};
  std::vector<std::uint8_t> received;
  eth.subscribe(
      [&](std::size_t, const std::vector<std::uint8_t>& p) { received = p; });
  eth.send(payload);
  des.run_until(SimTime::from_ms(1));
  EXPECT_EQ(received, payload);
}

}  // namespace
}  // namespace densevlc::net
