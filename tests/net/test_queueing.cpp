// Tests for the uplink queueing analysis.
#include "net/queueing.hpp"

#include <gtest/gtest.h>

namespace densevlc::net {
namespace {

TEST(Fifo, EmptyQueueServesImmediately) {
  FifoQueue q{1e-3, 8};
  EXPECT_TRUE(q.arrive(0.0));
  ASSERT_EQ(q.served(), 1u);
  EXPECT_DOUBLE_EQ(q.sojourn_times()[0], 1e-3);
}

TEST(Fifo, BackToBackArrivalsQueueUp) {
  FifoQueue q{1e-3, 8};
  q.arrive(0.0);
  q.arrive(0.0);
  q.arrive(0.0);
  ASSERT_EQ(q.served(), 3u);
  EXPECT_DOUBLE_EQ(q.sojourn_times()[1], 2e-3);
  EXPECT_DOUBLE_EQ(q.sojourn_times()[2], 3e-3);
}

TEST(Fifo, IdleGapsResetTheServer) {
  FifoQueue q{1e-3, 8};
  q.arrive(0.0);
  q.arrive(10.0);  // long after the first departed
  EXPECT_NEAR(q.sojourn_times()[1], 1e-3, 1e-12);
}

TEST(Fifo, CapacityDrops) {
  FifoQueue q{1.0, 2};
  EXPECT_TRUE(q.arrive(0.0));
  EXPECT_TRUE(q.arrive(0.0));
  EXPECT_FALSE(q.arrive(0.0));  // 2 ahead: full
  EXPECT_EQ(q.dropped(), 1u);
}

TEST(Uplink, PaperLoadIsLight) {
  // 4 RXs, ~45 ACKs/s each plus one report/s: the paper claims the WiFi
  // uplink is not easily congested. Offered load must be a few percent
  // and delays near one airtime.
  const UplinkTraffic traffic{};
  const auto report = analyze_uplink(traffic, 4, 60.0, 1);
  EXPECT_LT(report.offered_load, 0.05);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_LT(report.mean_sojourn_s, 3.0 * traffic.ack_airtime_s);
  EXPECT_GT(report.served, 10000u);  // ~4*46*60
}

TEST(Uplink, OverloadCongests) {
  UplinkTraffic heavy{};
  heavy.ack_rate_hz = 4000.0;  // absurd downlink frame rate
  const auto report = analyze_uplink(heavy, 4, 10.0, 2);
  EXPECT_GT(report.offered_load, 0.5);
  EXPECT_GT(report.p99_sojourn_s, 5.0 * heavy.ack_airtime_s);
}

TEST(Uplink, LoadScalesWithRxCount) {
  const UplinkTraffic traffic{};
  const auto small = analyze_uplink(traffic, 2, 30.0, 3);
  const auto large = analyze_uplink(traffic, 8, 30.0, 3);
  EXPECT_NEAR(large.offered_load / small.offered_load, 4.0, 1.0);
}

TEST(Uplink, Deterministic) {
  const UplinkTraffic traffic{};
  const auto a = analyze_uplink(traffic, 4, 20.0, 42);
  const auto b = analyze_uplink(traffic, 4, 20.0, 42);
  EXPECT_DOUBLE_EQ(a.offered_load, b.offered_load);
  EXPECT_EQ(a.served, b.served);
}

}  // namespace
}  // namespace densevlc::net
