// Self-test suite for tools/dvlc_analyze.
//
// Two layers:
//   - unit tests driving the lexer / waiver parser / baseline machinery
//     directly (the three tokenizer regressions — raw strings, digit
//     separators, line continuations — each pin a dedicated case);
//   - fixture tests: every directory under fixtures/ is analyzed with all
//     passes, and the resulting (file, line, rule) set must equal the
//     `// EXPECT-FINDING: <rule>` annotations inside the fixture sources.
//     Good fixtures carry no annotations and must come back clean.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "analysis.hpp"
#include "baseline.hpp"
#include "cache.hpp"
#include "index.hpp"
#include "output.hpp"
#include "parse.hpp"
#include "source.hpp"

namespace densevlc::analyze {
namespace {

namespace fs = std::filesystem;

fs::path fixture_root() { return fs::path{DVLC_ANALYZER_FIXTURES}; }

// --- lexer ----------------------------------------------------------------

TEST(Tokenize, RawStringIsOneOpaqueToken) {
  const auto toks = tokenize("auto s = R\"(rand(); assert(false))\"; x();");
  std::size_t strings = 0;
  for (const Token& t : toks) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "assert");
    if (t.kind == TokenKind::kString) ++strings;
  }
  EXPECT_EQ(strings, 1u);
}

TEST(Tokenize, RawStringCustomDelimiterAndPrefix) {
  const auto toks =
      tokenize("auto a = R\"xy(inner )\" quote rand())xy\"; auto b = "
               "u8R\"(assert(false))\"; done();");
  for (const Token& t : toks) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "assert");
  }
  // The trailing call survives tokenization — the raw strings closed at
  // the right spot.
  bool saw_done = false;
  for (const Token& t : toks) saw_done = saw_done || t.text == "done";
  EXPECT_TRUE(saw_done);
}

TEST(Tokenize, RawStringLineAttribution) {
  const auto toks = tokenize("int a;\nauto s = R\"(x\ny\nz)\";\nint b;");
  for (const Token& t : toks) {
    if (t.kind == TokenKind::kString) EXPECT_EQ(t.line, 2u);
    if (t.text == "b") EXPECT_EQ(t.line, 5u);  // raw string spanned 3 lines
  }
}

TEST(Tokenize, DigitSeparatorsStayInOneNumber) {
  const auto toks = tokenize("auto n = 1'000'000; auto h = 0xFF'00;");
  std::vector<std::string> numbers;
  for (const Token& t : toks) {
    if (t.kind == TokenKind::kNumber) numbers.push_back(t.text);
  }
  ASSERT_EQ(numbers.size(), 2u);
  EXPECT_EQ(numbers[0], "1'000'000");
  EXPECT_EQ(numbers[1], "0xFF'00");
}

TEST(Tokenize, DigitSeparatorDoesNotOpenCharLiteral) {
  // If 1'000 leaked a stray quote, the following rand() would vanish
  // into a phantom char literal — it must stay a visible identifier.
  const auto toks = tokenize("int x = 1'000; rand();");
  bool saw_rand = false;
  for (const Token& t : toks) saw_rand = saw_rand || t.text == "rand";
  EXPECT_TRUE(saw_rand);
}

TEST(Tokenize, LineContinuationExtendsLineComment) {
  const auto toks = tokenize("// swallowed \\\nrand();\nnext();");
  for (const Token& t : toks) {
    if (t.kind != TokenKind::kComment) EXPECT_NE(t.text, "rand");
  }
  // Line numbers still advance past the continuation.
  for (const Token& t : toks) {
    if (t.text == "next") EXPECT_EQ(t.line, 3u);
  }
}

TEST(Tokenize, LineContinuationSplicesIdentifiers) {
  const auto toks = tokenize("int spli\\\nced = 0;");
  bool saw = false;
  for (const Token& t : toks) saw = saw || t.text == "spliced";
  EXPECT_TRUE(saw);
}

TEST(Tokenize, StringContentsNeverMatchRules) {
  const auto toks = tokenize("auto s = \"rand()\"; auto c = 'r';");
  for (const Token& t : toks) {
    if (t.kind == TokenKind::kIdentifier) {
      EXPECT_NE(t.text, "rand");
    }
  }
}

// --- waivers --------------------------------------------------------------

TEST(Waivers, CanonicalSyntaxWithReason) {
  std::vector<WaiverProblem> problems;
  const auto toks =
      tokenize("// DVLC_LINT_WAIVE(units): documented physics constant\n"
               "double power = 1.0;");
  const WaiverMap w = collect_waivers(toks, problems);
  EXPECT_TRUE(problems.empty());
  ASSERT_EQ(w.count("units"), 1u);
  EXPECT_EQ(w.at("units").count(1), 1u);
}

TEST(Waivers, MissingReasonIsAProblemAndWaivesNothing) {
  std::vector<WaiverProblem> problems;
  const auto toks = tokenize("// DVLC_LINT_WAIVE(banned)\nint x;");
  const WaiverMap w = collect_waivers(toks, problems);
  EXPECT_TRUE(w.empty());
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_EQ(problems[0].line, 1u);
}

TEST(Waivers, LegacySyntaxStillHonoured) {
  std::vector<WaiverProblem> problems;
  const auto toks = tokenize("// dvlc-lint: allow(hot-loop-alloc)\n");
  const WaiverMap w = collect_waivers(toks, problems);
  EXPECT_TRUE(problems.empty());
  EXPECT_EQ(w.count("hot-loop-alloc"), 1u);
}

TEST(Waivers, StringLiteralNeverWaives) {
  std::vector<WaiverProblem> problems;
  const auto toks =
      tokenize("auto s = \"DVLC_LINT_WAIVE(banned): not a comment\";");
  const WaiverMap w = collect_waivers(toks, problems);
  EXPECT_TRUE(w.empty());
  EXPECT_TRUE(problems.empty());
}

// --- baseline -------------------------------------------------------------

TEST(Baseline, SuppressesUpToCountThenFails) {
  Baseline b;
  b.allowed[{"rule", "f.cpp", "sym"}] = 1;
  const std::vector<Finding> findings = {
      {"rule", "f.cpp", 10, "sym", "m"},
      {"rule", "f.cpp", 20, "sym", "m"},
  };
  const BaselineApplication applied = apply_baseline(b, findings);
  EXPECT_EQ(applied.suppressed, 1u);
  ASSERT_EQ(applied.fresh.size(), 1u);
  EXPECT_EQ(applied.fresh[0].line, 20u);
  EXPECT_TRUE(applied.stale.empty());
}

TEST(Baseline, StaleEntriesAreReportedNotFatal) {
  Baseline b;
  b.allowed[{"rule", "gone.cpp", "sym"}] = 2;
  const BaselineApplication applied = apply_baseline(b, {});
  EXPECT_TRUE(applied.fresh.empty());
  ASSERT_EQ(applied.stale.size(), 1u);
}

TEST(Baseline, RenderRoundTrips) {
  const std::vector<Finding> findings = {
      {"r1", "a.cpp", 1, "s1", "m"},
      {"r1", "a.cpp", 2, "s1", "m"},
      {"r2", "b.cpp", 3, "s2", "m"},
  };
  const fs::path tmp =
      fs::temp_directory_path() / "dvlc_analyze_baseline_test.txt";
  {
    std::ofstream out{tmp};
    out << render_baseline(findings);
  }
  const BaselineLoad load = load_baseline(tmp);
  fs::remove(tmp);
  ASSERT_TRUE(load.ok);
  EXPECT_EQ(load.baseline.allowed.at({"r1", "a.cpp", "s1"}), 2u);
  EXPECT_EQ(load.baseline.allowed.at({"r2", "b.cpp", "s2"}), 1u);
  // The round-tripped baseline suppresses exactly those findings.
  const BaselineApplication applied =
      apply_baseline(load.baseline, findings);
  EXPECT_TRUE(applied.fresh.empty());
  EXPECT_EQ(applied.suppressed, 3u);
}

TEST(Baseline, GarbledLineIsAnError) {
  const fs::path tmp =
      fs::temp_directory_path() / "dvlc_analyze_bad_baseline.txt";
  {
    std::ofstream out{tmp};
    out << "rule only-two-fields\n";
  }
  const BaselineLoad load = load_baseline(tmp);
  fs::remove(tmp);
  EXPECT_FALSE(load.ok);
}

// --- SARIF ----------------------------------------------------------------

TEST(Sarif, EscapesAndStructure) {
  const std::vector<Finding> findings = {
      {"banned", "a.cpp", 3, "rand", "say \"no\" to rand()"},
  };
  const std::vector<RuleInfo> rules = {{"banned", "no rand"}};
  const std::string sarif = render_sarif(findings, rules);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\\\"no\\\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 3"), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"banned\""), std::string::npos);
}

// --- fixtures -------------------------------------------------------------

using Expectation = std::tuple<std::string, std::size_t, std::string>;

/// Scans every source file under `dir` for `EXPECT-FINDING: <rule>`
/// annotations; the expectation anchors to the annotation's line.
std::set<Expectation> collect_expectations(const fs::path& dir) {
  std::set<Expectation> out;
  const std::string tag = "EXPECT-FINDING:";
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in{entry.path()};
    std::string line;
    std::size_t lineno = 0;
    const std::string rel =
        fs::proximate(entry.path(), dir).generic_string();
    while (std::getline(in, line)) {
      ++lineno;
      std::size_t at = line.find(tag);
      if (at == std::string::npos) continue;
      at += tag.size();
      while (at < line.size() && line[at] == ' ') ++at;
      std::size_t end = at;
      while (end < line.size() && line[end] != ' ') ++end;
      out.insert({rel, lineno, line.substr(at, end - at)});
    }
  }
  return out;
}

void expect_fixture_matches(const std::string& scenario) {
  const fs::path dir = fixture_root() / scenario;
  ASSERT_TRUE(fs::is_directory(dir)) << dir;
  const AnalysisResult result = analyze_paths({dir}, dir);
  std::set<Expectation> actual;
  for (const Finding& f : result.findings) {
    actual.insert({f.file, f.line, f.rule});
  }
  const std::set<Expectation> expected = collect_expectations(dir);
  for (const auto& e : expected) {
    EXPECT_TRUE(actual.count(e) != 0)
        << scenario << ": expected finding not produced: "
        << std::get<0>(e) << ":" << std::get<1>(e) << " [" << std::get<2>(e)
        << "]";
  }
  for (const auto& a : actual) {
    EXPECT_TRUE(expected.count(a) != 0)
        << scenario << ": unexpected finding: " << std::get<0>(a) << ":"
        << std::get<1>(a) << " [" << std::get<2>(a) << "]";
  }
}

TEST(Fixtures, ConventionsBad) { expect_fixture_matches("conventions_bad"); }
TEST(Fixtures, ConventionsGood) { expect_fixture_matches("conventions_good"); }
TEST(Fixtures, DeterminismBad) { expect_fixture_matches("determinism_bad"); }
TEST(Fixtures, DeterminismGood) { expect_fixture_matches("determinism_good"); }
TEST(Fixtures, LayeringBad) { expect_fixture_matches("layering_bad"); }
TEST(Fixtures, LayeringGood) { expect_fixture_matches("layering_good"); }
TEST(Fixtures, ApiBad) { expect_fixture_matches("api_bad"); }
TEST(Fixtures, ApiGood) { expect_fixture_matches("api_good"); }
TEST(Fixtures, LexerGood) { expect_fixture_matches("lexer_good"); }
TEST(Fixtures, WaiversBad) { expect_fixture_matches("waivers_bad"); }
TEST(Fixtures, NondetBad) { expect_fixture_matches("nondet_bad"); }
TEST(Fixtures, NondetGood) { expect_fixture_matches("nondet_good"); }
TEST(Fixtures, UnitdimBad) { expect_fixture_matches("unitdim_bad"); }
TEST(Fixtures, UnitdimGood) { expect_fixture_matches("unitdim_good"); }
TEST(Fixtures, DeadapiBad) { expect_fixture_matches("deadapi_bad"); }
TEST(Fixtures, DeadapiGood) { expect_fixture_matches("deadapi_good"); }
TEST(Fixtures, UncheckedioBad) { expect_fixture_matches("uncheckedio_bad"); }
TEST(Fixtures, SimdBad) { expect_fixture_matches("simd_bad"); }
TEST(Fixtures, SimdGood) { expect_fixture_matches("simd_good"); }
TEST(Fixtures, UncheckedioGood) {
  expect_fixture_matches("uncheckedio_good");
}

/// Pass filtering: the layering_bad fixture is clean when only the
/// conventions pass runs.
TEST(Fixtures, PassFilterRestrictsRules) {
  const fs::path dir = fixture_root() / "layering_bad";
  const AnalysisResult result = analyze_paths({dir}, dir, {"conventions"});
  EXPECT_TRUE(result.findings.empty());
}

// --- scope tree -----------------------------------------------------------

TEST(ScopeTree, DeclarationShadowsLibcName) {
  const auto toks = tokenize(
      "void f(std::size_t n) {\n"
      "  std::vector<double> time(n);\n"
      "  time[0] = 1.0;\n"
      "}\n");
  const ScopeTree tree = build_scope_tree(toks);
  // Find the second `time` token (the use on line 3).
  std::size_t use = toks.size();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].text == "time" && toks[i].line == 3) use = i;
  }
  ASSERT_LT(use, toks.size());
  const ScopeVar* var = tree.lookup("time", use);
  ASSERT_NE(var, nullptr);
  EXPECT_NE(var->type.find("vector"), std::string::npos);
  EXPECT_FALSE(var->is_param);
  // The parameter resolves too.
  const ScopeVar* param = tree.lookup("n", use);
  ASSERT_NE(param, nullptr);
  EXPECT_TRUE(param->is_param);
}

TEST(ScopeTree, NamespaceClassFunctionNesting) {
  const auto toks = tokenize(
      "namespace densevlc::phy {\n"
      "class Codec {\n"
      " public:\n"
      "  int decode(int x) { return x; }\n"
      "};\n"
      "}  // namespace\n");
  const ScopeTree tree = build_scope_tree(toks);
  bool saw_ns = false, saw_class = false, saw_fn = false;
  for (const ScopeNode& n : tree.nodes) {
    if (n.kind == ScopeKind::kNamespace) saw_ns = true;
    if (n.kind == ScopeKind::kClass && n.name == "Codec") saw_class = true;
    if (n.kind == ScopeKind::kFunction && n.name == "decode") saw_fn = true;
  }
  EXPECT_TRUE(saw_ns);
  EXPECT_TRUE(saw_class);
  EXPECT_TRUE(saw_fn);
}

TEST(ScopeTree, ParallelReduceSecondLambdaIsCombineBody) {
  const auto toks = tokenize(
      "double g(std::size_t n) {\n"
      "  return parallel_reduce(0, n, 0.0,\n"
      "      [&](std::size_t i) { return 1.0; },\n"
      "      [](double a, double b) { return a + b; });\n"
      "}\n");
  const ScopeTree tree = build_scope_tree(toks);
  std::size_t parallel = 0, combine = 0;
  for (const ScopeNode& n : tree.nodes) {
    if (n.kind == ScopeKind::kParallelBody) ++parallel;
    if (n.kind == ScopeKind::kCombineBody) ++combine;
  }
  EXPECT_EQ(parallel, 1u);
  EXPECT_EQ(combine, 1u);
}

TEST(ScopeTree, UnitSuffixParsing) {
  EXPECT_EQ(unit_suffix_of("span_m"), "_m");
  EXPECT_EQ(unit_suffix_of("power_used_w_"), "_w");  // member underscore
  EXPECT_EQ(unit_suffix_of("count"), "");
  EXPECT_EQ(unit_suffix_of("bias_ma"), "_ma");
}

// --- project index --------------------------------------------------------

SourceFile indexed(const std::string& text, const std::string& rel) {
  SourceFile f;
  index_source(text, fs::path{"/r"} / rel, fs::path{"/r"}, f);
  return f;
}

TEST(ProjectIndex, HeaderSymbolsAndIncludeSpelling) {
  const SourceFile f = indexed(
      "#include \"common/rng.hpp\"\n"
      "namespace densevlc::phy {\n"
      "double helper(double x);\n"
      "inline double twice(double x) { return 2.0 * x; }\n"
      "}\n",
      "src/phy/helper.hpp");
  const FileSummary s = summarize(f, build_scope_tree(f.tokens));
  EXPECT_TRUE(s.is_header);
  ASSERT_EQ(s.includes.size(), 1u);
  EXPECT_EQ(s.includes[0].target, "common/rng.hpp");
  bool saw_decl = false, saw_def = false;
  for (const SymbolDecl& d : s.symbols) {
    if (d.name == "helper" && !d.is_definition) saw_decl = true;
    if (d.name == "twice" && d.is_definition) saw_def = true;
  }
  EXPECT_TRUE(saw_decl);
  EXPECT_TRUE(saw_def);
  EXPECT_EQ(ProjectIndex::include_spelling("src/phy/helper.hpp"),
            "phy/helper.hpp");
}

TEST(ProjectIndex, ExternalUsesExcludesOwnPair) {
  ProjectIndex index;
  {
    const SourceFile h = indexed("double helper(double x);\n",
                                 "src/phy/helper.hpp");
    index.files.push_back(summarize(h, build_scope_tree(h.tokens)));
  }
  {
    const SourceFile c = indexed("double helper(double x) { return x; }\n",
                                 "src/phy/helper.cpp");
    index.files.push_back(summarize(c, build_scope_tree(c.tokens)));
  }
  // Declaration + paired definition only: no external uses.
  EXPECT_EQ(index.external_uses("helper", "src/phy/helper.hpp"), 0u);
  {
    const SourceFile u = indexed("void go() { helper(1.0); }\n",
                                 "src/core/use.cpp");
    index.files.push_back(summarize(u, build_scope_tree(u.tokens)));
  }
  EXPECT_GT(index.external_uses("helper", "src/phy/helper.hpp"), 0u);
  EXPECT_TRUE(index.is_called("helper"));
}

// --- incremental cache ----------------------------------------------------

CacheEntry sample_entry() {
  CacheEntry entry;
  entry.summary.rel = "src/a.cpp";
  entry.summary.module = "phy";
  entry.summary.is_header = false;
  entry.summary.includes.push_back({"common/rng.hpp", 3});
  entry.summary.waivers["units"].insert(7);
  entry.summary.symbols.push_back({"helper", 4, 2, false});
  entry.summary.called_names.insert("helper");
  entry.summary.ident_uses["helper"] = 2;
  entry.findings.push_back(
      {"banned", "src/a.cpp", 9, "rand", "message with\ttab and\nnewline"});
  entry.waived = 1;
  return entry;
}

TEST(Cache, EntryRoundTrips) {
  const CacheEntry entry = sample_entry();
  CacheEntry back;
  ASSERT_TRUE(parse_entry(serialize_entry(entry), back));
  EXPECT_EQ(back.summary.rel, entry.summary.rel);
  EXPECT_EQ(back.summary.module, entry.summary.module);
  ASSERT_EQ(back.summary.includes.size(), 1u);
  EXPECT_EQ(back.summary.includes[0].target, "common/rng.hpp");
  EXPECT_EQ(back.summary.waivers.at("units").count(7), 1u);
  ASSERT_EQ(back.summary.symbols.size(), 1u);
  EXPECT_EQ(back.summary.symbols[0].param_count, 2u);
  EXPECT_EQ(back.summary.ident_uses.at("helper"), 2u);
  ASSERT_EQ(back.findings.size(), 1u);
  EXPECT_EQ(back.findings[0].message, entry.findings[0].message);
  EXPECT_EQ(back.waived, 1u);
}

TEST(Cache, GarbledEntryIsAMiss) {
  CacheEntry back;
  EXPECT_FALSE(parse_entry("not a cache entry", back));
  EXPECT_FALSE(parse_entry("dvlca 1\nbogus record\n", back));
}

class CacheDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // One directory per test case: ctest runs cases concurrently, and a
    // shared directory would let one TearDown eat another's entries.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string{"dvlc_analyze_cache_"} + info->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(CacheDirTest, HitOnSameKeyMissOnContentChange) {
  AnalysisCache cache{dir_, "config-a"};
  cache.store("src/a.cpp", "int x;", sample_entry());
  EXPECT_TRUE(cache.probe("src/a.cpp", "int x;").has_value());
  EXPECT_FALSE(cache.probe("src/a.cpp", "int y;").has_value());
}

TEST_F(CacheDirTest, ConfigChangeInvalidates) {
  // The config string folds in the pass version and the enabled pass
  // set; changing either must miss even for identical contents.
  {
    AnalysisCache cache{dir_, "dvlc-analyze-v3|conventions"};
    cache.store("src/a.cpp", "int x;", sample_entry());
  }
  {
    AnalysisCache warm{dir_, "dvlc-analyze-v3|conventions"};
    EXPECT_TRUE(warm.probe("src/a.cpp", "int x;").has_value());
  }
  {
    AnalysisCache flags{dir_, "dvlc-analyze-v3|conventions,api"};
    EXPECT_FALSE(flags.probe("src/a.cpp", "int x;").has_value());
  }
  {
    AnalysisCache version{dir_, "dvlc-analyze-v99|conventions"};
    EXPECT_FALSE(version.probe("src/a.cpp", "int x;").has_value());
  }
}

TEST_F(CacheDirTest, PathParticipatesInKey) {
  // Rules are path-sensitive (physics-core checks, module maps), so the
  // same bytes under another path must not share an entry.
  AnalysisCache cache{dir_, "config-a"};
  cache.store("src/a.cpp", "int x;", sample_entry());
  EXPECT_FALSE(cache.probe("src/b.cpp", "int x;").has_value());
}

TEST_F(CacheDirTest, WarmRunReanalyzesZeroFiles) {
  const fs::path dir = fixture_root() / "conventions_bad";
  AnalyzeOptions options;
  options.cache_dir = dir_;
  const AnalysisResult cold = analyze_paths({dir}, dir, options);
  EXPECT_EQ(cold.files_from_cache, 0u);
  const AnalysisResult warm = analyze_paths({dir}, dir, options);
  EXPECT_EQ(warm.files_from_cache, warm.files_scanned);
  EXPECT_GT(warm.files_scanned, 0u);
  // Cached and fresh analysis agree finding-for-finding.
  ASSERT_EQ(warm.findings.size(), cold.findings.size());
  for (std::size_t i = 0; i < warm.findings.size(); ++i) {
    EXPECT_EQ(warm.findings[i].rule, cold.findings[i].rule);
    EXPECT_EQ(warm.findings[i].file, cold.findings[i].file);
    EXPECT_EQ(warm.findings[i].line, cold.findings[i].line);
  }
  EXPECT_EQ(warm.waived, cold.waived);
}

// --- SARIF diff -----------------------------------------------------------

TEST(SarifDiff, OnlyNewFindingsSurvive) {
  const std::vector<RuleInfo> rules = {{"banned", "no rand"}};
  const std::vector<Finding> old_findings = {
      {"banned", "a.cpp", 3, "rand", "m"},
  };
  const auto old_fps =
      load_sarif_fingerprints(render_sarif(old_findings, rules));
  EXPECT_EQ(old_fps.size(), 1u);
  // Same finding on a DIFFERENT line still matches (fingerprints are
  // line-free); a second occurrence and a new rule are fresh.
  const std::vector<Finding> now = {
      {"banned", "a.cpp", 5, "rand", "m"},
      {"banned", "a.cpp", 9, "rand", "m"},
      {"units", "a.cpp", 2, "power", "m"},
  };
  const std::vector<Finding> fresh = sarif_diff(old_fps, now);
  ASSERT_EQ(fresh.size(), 2u);
  EXPECT_EQ(fresh[0].line, 9u);  // second duplicate exceeds the old count
  EXPECT_EQ(fresh[1].rule, "units");
}

}  // namespace
}  // namespace densevlc::analyze
