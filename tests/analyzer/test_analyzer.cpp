// Self-test suite for tools/dvlc_analyze.
//
// Two layers:
//   - unit tests driving the lexer / waiver parser / baseline machinery
//     directly (the three tokenizer regressions — raw strings, digit
//     separators, line continuations — each pin a dedicated case);
//   - fixture tests: every directory under fixtures/ is analyzed with all
//     passes, and the resulting (file, line, rule) set must equal the
//     `// EXPECT-FINDING: <rule>` annotations inside the fixture sources.
//     Good fixtures carry no annotations and must come back clean.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "analysis.hpp"
#include "baseline.hpp"
#include "output.hpp"
#include "source.hpp"

namespace densevlc::analyze {
namespace {

namespace fs = std::filesystem;

fs::path fixture_root() { return fs::path{DVLC_ANALYZER_FIXTURES}; }

// --- lexer ----------------------------------------------------------------

TEST(Tokenize, RawStringIsOneOpaqueToken) {
  const auto toks = tokenize("auto s = R\"(rand(); assert(false))\"; x();");
  std::size_t strings = 0;
  for (const Token& t : toks) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "assert");
    if (t.kind == TokenKind::kString) ++strings;
  }
  EXPECT_EQ(strings, 1u);
}

TEST(Tokenize, RawStringCustomDelimiterAndPrefix) {
  const auto toks =
      tokenize("auto a = R\"xy(inner )\" quote rand())xy\"; auto b = "
               "u8R\"(assert(false))\"; done();");
  for (const Token& t : toks) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "assert");
  }
  // The trailing call survives tokenization — the raw strings closed at
  // the right spot.
  bool saw_done = false;
  for (const Token& t : toks) saw_done = saw_done || t.text == "done";
  EXPECT_TRUE(saw_done);
}

TEST(Tokenize, RawStringLineAttribution) {
  const auto toks = tokenize("int a;\nauto s = R\"(x\ny\nz)\";\nint b;");
  for (const Token& t : toks) {
    if (t.kind == TokenKind::kString) EXPECT_EQ(t.line, 2u);
    if (t.text == "b") EXPECT_EQ(t.line, 5u);  // raw string spanned 3 lines
  }
}

TEST(Tokenize, DigitSeparatorsStayInOneNumber) {
  const auto toks = tokenize("auto n = 1'000'000; auto h = 0xFF'00;");
  std::vector<std::string> numbers;
  for (const Token& t : toks) {
    if (t.kind == TokenKind::kNumber) numbers.push_back(t.text);
  }
  ASSERT_EQ(numbers.size(), 2u);
  EXPECT_EQ(numbers[0], "1'000'000");
  EXPECT_EQ(numbers[1], "0xFF'00");
}

TEST(Tokenize, DigitSeparatorDoesNotOpenCharLiteral) {
  // If 1'000 leaked a stray quote, the following rand() would vanish
  // into a phantom char literal — it must stay a visible identifier.
  const auto toks = tokenize("int x = 1'000; rand();");
  bool saw_rand = false;
  for (const Token& t : toks) saw_rand = saw_rand || t.text == "rand";
  EXPECT_TRUE(saw_rand);
}

TEST(Tokenize, LineContinuationExtendsLineComment) {
  const auto toks = tokenize("// swallowed \\\nrand();\nnext();");
  for (const Token& t : toks) {
    if (t.kind != TokenKind::kComment) EXPECT_NE(t.text, "rand");
  }
  // Line numbers still advance past the continuation.
  for (const Token& t : toks) {
    if (t.text == "next") EXPECT_EQ(t.line, 3u);
  }
}

TEST(Tokenize, LineContinuationSplicesIdentifiers) {
  const auto toks = tokenize("int spli\\\nced = 0;");
  bool saw = false;
  for (const Token& t : toks) saw = saw || t.text == "spliced";
  EXPECT_TRUE(saw);
}

TEST(Tokenize, StringContentsNeverMatchRules) {
  const auto toks = tokenize("auto s = \"rand()\"; auto c = 'r';");
  for (const Token& t : toks) {
    if (t.kind == TokenKind::kIdentifier) {
      EXPECT_NE(t.text, "rand");
    }
  }
}

// --- waivers --------------------------------------------------------------

TEST(Waivers, CanonicalSyntaxWithReason) {
  std::vector<WaiverProblem> problems;
  const auto toks =
      tokenize("// DVLC_LINT_WAIVE(units): documented physics constant\n"
               "double power = 1.0;");
  const WaiverMap w = collect_waivers(toks, problems);
  EXPECT_TRUE(problems.empty());
  ASSERT_EQ(w.count("units"), 1u);
  EXPECT_EQ(w.at("units").count(1), 1u);
}

TEST(Waivers, MissingReasonIsAProblemAndWaivesNothing) {
  std::vector<WaiverProblem> problems;
  const auto toks = tokenize("// DVLC_LINT_WAIVE(banned)\nint x;");
  const WaiverMap w = collect_waivers(toks, problems);
  EXPECT_TRUE(w.empty());
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_EQ(problems[0].line, 1u);
}

TEST(Waivers, LegacySyntaxStillHonoured) {
  std::vector<WaiverProblem> problems;
  const auto toks = tokenize("// dvlc-lint: allow(hot-loop-alloc)\n");
  const WaiverMap w = collect_waivers(toks, problems);
  EXPECT_TRUE(problems.empty());
  EXPECT_EQ(w.count("hot-loop-alloc"), 1u);
}

TEST(Waivers, StringLiteralNeverWaives) {
  std::vector<WaiverProblem> problems;
  const auto toks =
      tokenize("auto s = \"DVLC_LINT_WAIVE(banned): not a comment\";");
  const WaiverMap w = collect_waivers(toks, problems);
  EXPECT_TRUE(w.empty());
  EXPECT_TRUE(problems.empty());
}

// --- baseline -------------------------------------------------------------

TEST(Baseline, SuppressesUpToCountThenFails) {
  Baseline b;
  b.allowed[{"rule", "f.cpp", "sym"}] = 1;
  const std::vector<Finding> findings = {
      {"rule", "f.cpp", 10, "sym", "m"},
      {"rule", "f.cpp", 20, "sym", "m"},
  };
  const BaselineApplication applied = apply_baseline(b, findings);
  EXPECT_EQ(applied.suppressed, 1u);
  ASSERT_EQ(applied.fresh.size(), 1u);
  EXPECT_EQ(applied.fresh[0].line, 20u);
  EXPECT_TRUE(applied.stale.empty());
}

TEST(Baseline, StaleEntriesAreReportedNotFatal) {
  Baseline b;
  b.allowed[{"rule", "gone.cpp", "sym"}] = 2;
  const BaselineApplication applied = apply_baseline(b, {});
  EXPECT_TRUE(applied.fresh.empty());
  ASSERT_EQ(applied.stale.size(), 1u);
}

TEST(Baseline, RenderRoundTrips) {
  const std::vector<Finding> findings = {
      {"r1", "a.cpp", 1, "s1", "m"},
      {"r1", "a.cpp", 2, "s1", "m"},
      {"r2", "b.cpp", 3, "s2", "m"},
  };
  const fs::path tmp =
      fs::temp_directory_path() / "dvlc_analyze_baseline_test.txt";
  {
    std::ofstream out{tmp};
    out << render_baseline(findings);
  }
  const BaselineLoad load = load_baseline(tmp);
  fs::remove(tmp);
  ASSERT_TRUE(load.ok);
  EXPECT_EQ(load.baseline.allowed.at({"r1", "a.cpp", "s1"}), 2u);
  EXPECT_EQ(load.baseline.allowed.at({"r2", "b.cpp", "s2"}), 1u);
  // The round-tripped baseline suppresses exactly those findings.
  const BaselineApplication applied =
      apply_baseline(load.baseline, findings);
  EXPECT_TRUE(applied.fresh.empty());
  EXPECT_EQ(applied.suppressed, 3u);
}

TEST(Baseline, GarbledLineIsAnError) {
  const fs::path tmp =
      fs::temp_directory_path() / "dvlc_analyze_bad_baseline.txt";
  {
    std::ofstream out{tmp};
    out << "rule only-two-fields\n";
  }
  const BaselineLoad load = load_baseline(tmp);
  fs::remove(tmp);
  EXPECT_FALSE(load.ok);
}

// --- SARIF ----------------------------------------------------------------

TEST(Sarif, EscapesAndStructure) {
  const std::vector<Finding> findings = {
      {"banned", "a.cpp", 3, "rand", "say \"no\" to rand()"},
  };
  const std::vector<RuleInfo> rules = {{"banned", "no rand"}};
  const std::string sarif = render_sarif(findings, rules);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\\\"no\\\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 3"), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"banned\""), std::string::npos);
}

// --- fixtures -------------------------------------------------------------

using Expectation = std::tuple<std::string, std::size_t, std::string>;

/// Scans every source file under `dir` for `EXPECT-FINDING: <rule>`
/// annotations; the expectation anchors to the annotation's line.
std::set<Expectation> collect_expectations(const fs::path& dir) {
  std::set<Expectation> out;
  const std::string tag = "EXPECT-FINDING:";
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in{entry.path()};
    std::string line;
    std::size_t lineno = 0;
    const std::string rel =
        fs::proximate(entry.path(), dir).generic_string();
    while (std::getline(in, line)) {
      ++lineno;
      std::size_t at = line.find(tag);
      if (at == std::string::npos) continue;
      at += tag.size();
      while (at < line.size() && line[at] == ' ') ++at;
      std::size_t end = at;
      while (end < line.size() && line[end] != ' ') ++end;
      out.insert({rel, lineno, line.substr(at, end - at)});
    }
  }
  return out;
}

void expect_fixture_matches(const std::string& scenario) {
  const fs::path dir = fixture_root() / scenario;
  ASSERT_TRUE(fs::is_directory(dir)) << dir;
  const AnalysisResult result = analyze_paths({dir}, dir);
  std::set<Expectation> actual;
  for (const Finding& f : result.findings) {
    actual.insert({f.file, f.line, f.rule});
  }
  const std::set<Expectation> expected = collect_expectations(dir);
  for (const auto& e : expected) {
    EXPECT_TRUE(actual.count(e) != 0)
        << scenario << ": expected finding not produced: "
        << std::get<0>(e) << ":" << std::get<1>(e) << " [" << std::get<2>(e)
        << "]";
  }
  for (const auto& a : actual) {
    EXPECT_TRUE(expected.count(a) != 0)
        << scenario << ": unexpected finding: " << std::get<0>(a) << ":"
        << std::get<1>(a) << " [" << std::get<2>(a) << "]";
  }
}

TEST(Fixtures, ConventionsBad) { expect_fixture_matches("conventions_bad"); }
TEST(Fixtures, ConventionsGood) { expect_fixture_matches("conventions_good"); }
TEST(Fixtures, DeterminismBad) { expect_fixture_matches("determinism_bad"); }
TEST(Fixtures, DeterminismGood) { expect_fixture_matches("determinism_good"); }
TEST(Fixtures, LayeringBad) { expect_fixture_matches("layering_bad"); }
TEST(Fixtures, LayeringGood) { expect_fixture_matches("layering_good"); }
TEST(Fixtures, ApiBad) { expect_fixture_matches("api_bad"); }
TEST(Fixtures, ApiGood) { expect_fixture_matches("api_good"); }
TEST(Fixtures, LexerGood) { expect_fixture_matches("lexer_good"); }
TEST(Fixtures, WaiversBad) { expect_fixture_matches("waivers_bad"); }

/// Pass filtering: the layering_bad fixture is clean when only the
/// conventions pass runs.
TEST(Fixtures, PassFilterRestrictsRules) {
  const fs::path dir = fixture_root() / "layering_bad";
  const AnalysisResult result = analyze_paths({dir}, dir, {"conventions"});
  EXPECT_TRUE(result.findings.empty());
}

}  // namespace
}  // namespace densevlc::analyze
