// Fixture: the sanctioned parallel idioms — disjoint i-indexed writes,
// body-local accumulation, derived per-index Rng streams, and the
// ordered combine of parallel_reduce. Must produce zero findings.
#include <cstddef>
#include <vector>

namespace densevlc {

void indexed_writes(std::vector<double>& out, std::size_t n, std::size_t m) {
  parallel_for(0, n, [&](std::size_t j) {
    for (std::size_t k = 0; k < m; ++k) {
      out[j * m + k] = static_cast<double>(j + k);
    }
  });
}

void body_local_accumulation(std::vector<double>& out, std::size_t n) {
  parallel_for(0, n, [&](std::size_t i) {
    double acc = 0.0;
    std::vector<double> scratch;
    for (std::size_t k = 0; k < 8; ++k) {
      acc += static_cast<double>(k);
      scratch.push_back(acc);
    }
    out[i] = acc + scratch.back();
  });
}

void derived_streams(std::vector<double>& samples, const Rng& rng,
                     std::size_t n) {
  const Rng sweep = rng.fork();
  parallel_for(0, n, [&](std::size_t i) {
    Rng link_rng = sweep.split(i);
    samples[i] = link_rng.uniform();
  });
}

double ordered_reduce(const std::vector<double>& xs) {
  return parallel_reduce(
      0, xs.size(), 0.0, [&](std::size_t i) { return xs[i]; },
      [](double a, double b) { return a + b; });
}

}  // namespace densevlc
