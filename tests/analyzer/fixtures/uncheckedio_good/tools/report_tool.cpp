// Fixture: same discarded-write shape as the bad corpus, but outside
// the src/ + bench/ scope — the unchecked-io rule must not fire here.
#include <fstream>
#include <string>

namespace densevlc {

void tool_write(std::ofstream& sink, const std::string& body) {
  sink.write(body.data(), 4);
}

}  // namespace densevlc
