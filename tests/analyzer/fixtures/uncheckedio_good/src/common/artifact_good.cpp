// Fixture: every durable-I/O result is consumed — directly, through the
// stream's sticky state, or via an explicit void cast on a best-effort
// cleanup path. All clean.
#include <cstdio>
#include <fstream>
#include <string>

namespace densevlc {

bool checked_write(std::ofstream& out, const std::string& body) {
  if (!out.write(body.data(), 4)) return false;
  return true;
}

bool sticky_state_write(std::ofstream& log, const std::string& body) {
  log.write(body.data(), 4);
  // The stream is consulted afterwards: a failed write surfaces here.
  return static_cast<bool>(log);
}

bool checked_flush(std::ofstream& out) {
  return static_cast<bool>(out.flush());
}

bool close_then_check(std::ofstream& file) {
  file.close();
  return file.good();
}

bool checked_rename(const std::string& from, const std::string& to) {
  return std::rename(from.c_str(), to.c_str()) == 0;
}

void best_effort_cleanup(const std::string& tmp) {
  (void)std::remove(tmp.c_str());
}

}  // namespace densevlc
