// Fixture: every way a parallel body can break the reproducibility
// contract of common/thread_pool.hpp.
#include <cstddef>
#include <vector>

namespace densevlc {

void shared_mutation(std::vector<double>& out, std::size_t n) {
  double total = 0.0;
  parallel_for(0, n, [&](std::size_t i) {
    total += static_cast<double>(i);  // EXPECT-FINDING: par-shared-write
    out[i] = total;
  });
}

void shared_counter(std::size_t n) {
  std::size_t hits = 0;
  parallel_for(0, n, [&](std::size_t i) {
    if (i % 2 == 0) {
      ++hits;  // EXPECT-FINDING: par-shared-write
    }
  });
  (void)hits;
}

void unordered_growth(std::vector<double>& found, std::size_t n) {
  parallel_for(0, n, [&](std::size_t i) {
    if (i > 3) {
      found.push_back(static_cast<double>(i));  // EXPECT-FINDING: par-container-growth
    }
  });
}

void shared_rng(std::vector<double>& samples, Rng& rng, std::size_t n) {
  parallel_for(0, n, [&](std::size_t i) {
    samples[i] = rng.uniform();  // EXPECT-FINDING: par-rng-stream
  });
}

}  // namespace densevlc
