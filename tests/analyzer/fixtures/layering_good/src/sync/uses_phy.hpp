// Fixture: sync -> phy is a declared extra edge, not a back-edge.
#pragma once

#include "phy/frontend.hpp"
