// Fixture: physics-core source with a naked magic constant.
namespace densevlc::optics {

void configure() {
  double bias_w = 0.45;  // EXPECT-FINDING: naked-literal
  double zero_w = 0.0;   // zero needs no unit: clean
  (void)bias_w;
  (void)zero_w;
}

}  // namespace densevlc::optics
