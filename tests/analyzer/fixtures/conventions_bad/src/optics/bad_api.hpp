// Fixture: physics-core header passing quantities as bare double.
#pragma once

namespace densevlc::optics {

void set_power(double power_w);       // EXPECT-FINDING: raw-double

double emitted_power_w();             // EXPECT-FINDING: raw-double

void set_angle(double angle_rad);     // dimensionless suffix: clean

}  // namespace densevlc::optics
