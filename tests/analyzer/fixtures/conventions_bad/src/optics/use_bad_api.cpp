// Consumer TU: keeps the bad_api.hpp declarations externally used so
// the dead-api pass stays quiet; the raw-double findings under test
// live in the header.
namespace densevlc::optics {

void exercise_bad_api() {
  set_power(emitted_power_w());
  set_angle(0.0);
}

}  // namespace densevlc::optics
