// Fixture: conventions violations in an ordinary header.
#pragma once

#include <cstdlib>

namespace densevlc {

struct BadConfig {
  double power = 1.0;     // EXPECT-FINDING: units
  double delay = 0.5;     // EXPECT-FINDING: units
  double power_w = 1.0;   // suffixed: clean
  int retries = 3;        // not floating point: clean
};

bool load_state(const BadConfig& cfg);  // EXPECT-FINDING: nodiscard

[[nodiscard]] bool load_state_checked(const BadConfig& cfg);  // clean

inline int noisy_sample() {
  return rand();  // EXPECT-FINDING: banned
}

inline void unreachable_case() {
  assert(false);  // EXPECT-FINDING: banned
}

inline void explained_failure(bool ok) {
  assert(ok && "message present");  // clean: carries a condition
}

}  // namespace densevlc
