// Consumer TU: references every declaration in bad.hpp from another
// file so the dead-api pass sees external uses and the findings stay
// scoped to what this fixture tests.
namespace densevlc {

void exercise_bad(const BadConfig& cfg, bool ok) {
  if (load_state(cfg) && load_state_checked(cfg)) {
    noisy_sample();
  }
  unreachable_case();
  explained_failure(ok);
}

}  // namespace densevlc
