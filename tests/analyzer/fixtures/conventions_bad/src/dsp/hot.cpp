// DVLC_HOT — fixture: container growth inside a hot-path file.
#include <vector>

namespace densevlc::dsp {

void accumulate(std::vector<double>& buf, double x) {
  buf.push_back(x);  // EXPECT-FINDING: hot-loop-alloc
}

}  // namespace densevlc::dsp
