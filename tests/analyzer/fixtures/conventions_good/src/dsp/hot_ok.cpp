// DVLC_HOT — fixture: cold-path growth carries a waiver; the hot path
// stages through arena helpers (free functions never match the rule).
#include <vector>

namespace densevlc::dsp {

template <typename T>
void arena_resize(std::vector<T>& v, unsigned long n) {
  v.resize(n);  // DVLC_LINT_WAIVE(hot-loop-alloc): the arena helper itself
}

void warm_up(std::vector<double>& buf) {
  // DVLC_LINT_WAIVE(hot-loop-alloc): one-time construction, reserved above
  buf.push_back(0.0);
  arena_resize(buf, 16);
}

}  // namespace densevlc::dsp
