// Fixture: the same shapes as conventions_bad, written correctly or
// carrying a canonical waiver. Must produce zero findings.
#pragma once

namespace densevlc {

struct GoodConfig {
  double power_w = 1.0;
  double delay_s = 0.5;
  // DVLC_LINT_WAIVE(units): legacy field kept for config compatibility
  double power = 1.0;
};

[[nodiscard]] bool load_state(const GoodConfig& cfg);

}  // namespace densevlc
