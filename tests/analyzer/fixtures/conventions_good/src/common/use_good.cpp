// Consumer TU: load_state is the fixture's public surface; calling it
// from a second file keeps the dead-api pass quiet, as in the real
// tree where every public declaration has a caller.
namespace densevlc {

bool reload(const GoodConfig& cfg) { return load_state(cfg); }

}  // namespace densevlc
