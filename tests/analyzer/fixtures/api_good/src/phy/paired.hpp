// Fixture: the into/value pair and the scratch convention, followed.
#pragma once

#include <vector>

namespace densevlc::phy {

struct DemodScratch {
  std::vector<double> buffer;
};

void window_into(const std::vector<double>& signal, std::vector<double>& out,
                 DemodScratch& scratch);

std::vector<double> window(const std::vector<double>& signal);

}  // namespace densevlc::phy
