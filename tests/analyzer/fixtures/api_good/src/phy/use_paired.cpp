// Consumer TU: exercises both halves of the into/value pair so the
// dead-api pass sees external uses for each.
#include <vector>

namespace densevlc::phy {

void window_smoke(std::vector<double>& buf, DemodScratch& scratch) {
  window_into(buf, buf, scratch);
  buf = window(buf);
}

}  // namespace densevlc::phy
