// Fixture: the same entry point with its precondition asserted.
namespace densevlc::optics {

Watts radiated_power(Watts input, double efficiency) {
  DVLC_ASSERT(input.value() >= 0.0, "input power must be non-negative");
  const double raw = input.value();
  double scaled = raw * efficiency;
  if (scaled < 0.0) {
    scaled = 0.0;
  }
  const double losses = scaled * 0.01;
  return Watts{scaled - losses};
}

}  // namespace densevlc::optics
