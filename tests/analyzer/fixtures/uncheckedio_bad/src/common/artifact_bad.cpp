// Fixture: discarded I/O results in durable-artifact code. Every case
// drops an error channel on the floor — a crash-safety bug in src/.
#include <cstdio>
#include <fstream>
#include <string>

namespace densevlc {

void drop_write(std::ofstream& sink1, const std::string& body) {
  sink1.write(body.data(), 4);  // EXPECT-FINDING: unchecked-io
}

void drop_flush(std::ofstream& sink2) {
  sink2.flush();  // EXPECT-FINDING: unchecked-io
}

void drop_close(std::ofstream& sink3) {
  sink3.close();  // EXPECT-FINDING: unchecked-io
}

void drop_rename(const std::string& from, const std::string& to) {
  std::rename(from.c_str(), to.c_str());  // EXPECT-FINDING: unchecked-io
}

void drop_remove(const std::string& path) {
  std::remove(path.c_str());  // EXPECT-FINDING: unchecked-io
}

}  // namespace densevlc
