// Fixture: lexer regression material. Every banned-looking construct
// below lives inside a literal or a swallowed continuation line, so this
// file must produce zero findings.
#include <cstdint>
#include <string>

namespace densevlc {

const char* raw_plain() {
  return R"(rand(); assert(false); " unbalanced)";
}

const char* raw_custom_delim() {
  return R"dvlc(a raw string containing )" and rand() too)dvlc";
}

const char* raw_prefixed() {
  return u8R"(assert(false) inside a u8R literal)";
}

std::string ordinary_literals() {
  std::string s = "rand()";
  s += 'r';
  s += "dvlc-lint: allow(banned) inside a string waives nothing";
  return s;
}

// A line comment continued with a backslash swallows its next line: \
   rand(); assert(false);

std::uint64_t digit_separators() {
  const std::uint64_t big = 1'000'000;
  const std::uint64_t hex = 0xFF'FF'FF;
  return big + hex;
}

#define TRICKY_SUM(a, b) \
  ((a) + (b))

int uses_macro() { return TRICKY_SUM(1, 2); }

}  // namespace densevlc
