// Consumer TU: calls every public declaration in alive.hpp.
#include <vector>

namespace densevlc::phy {

double drive(std::vector<double>& buf) {
  window_into(buf, buf);
  buf = window(buf);
  return used_helper(buf.empty() ? 0.0 : buf.front());
}

}  // namespace densevlc::phy
