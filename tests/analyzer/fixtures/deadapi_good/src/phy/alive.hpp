// Fixture: the same shapes, alive and aligned — must be clean. The
// into/value pair differs by exactly one parameter, and every
// declaration has an external caller.
#pragma once

#include <vector>

namespace densevlc::phy {

std::vector<double> window(const std::vector<double>& signal);

void window_into(const std::vector<double>& signal,
                 std::vector<double>& out);

double used_helper(double x);

}  // namespace densevlc::phy
