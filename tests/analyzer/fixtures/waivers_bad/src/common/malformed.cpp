// Fixture: canonical waivers must carry a reason; a bare tag is itself a
// finding — and it waives nothing.
#include <cstdlib>

namespace densevlc {

int sample() {
  // DVLC_LINT_WAIVE(banned)  EXPECT-FINDING: waiver-syntax
  return rand();  // EXPECT-FINDING: banned
}

}  // namespace densevlc
