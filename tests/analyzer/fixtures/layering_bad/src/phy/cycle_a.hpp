#pragma once  // EXPECT-FINDING: layer-cycle
#include "phy/cycle_b.hpp"
