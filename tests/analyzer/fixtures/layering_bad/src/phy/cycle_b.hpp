#pragma once
#include "phy/cycle_a.hpp"
