// Fixture: a low-tier module reaching up the DAG.
#pragma once

#include "core/testbed.hpp"  // EXPECT-FINDING: layer-back-edge
#include "geom/vec3.hpp"
