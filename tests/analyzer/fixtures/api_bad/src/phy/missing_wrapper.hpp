// Fixture: a *_into overload without its value-returning sibling, and
// scratch structs passed against the convention.
#pragma once

#include <vector>

namespace densevlc::phy {

struct DemodScratch {
  std::vector<double> buffer;
};

void window_into(const std::vector<double>& signal,  // EXPECT-FINDING: api-into-wrapper
                 std::vector<double>& out);

void run_const(const DemodScratch& scratch);  // EXPECT-FINDING: api-scratch-ref

void run_by_value(DemodScratch scratch);  // EXPECT-FINDING: api-scratch-ref

void run_ok(DemodScratch& scratch);  // non-const reference: clean

}  // namespace densevlc::phy
