// Consumer TU: references every declaration in missing_wrapper.hpp so
// the dead-api pass sees external uses; the api-into-wrapper and
// api-scratch-ref findings under test live in the header.
#include <vector>

namespace densevlc::phy {

void exercise_missing_wrapper(std::vector<double>& buf,
                              DemodScratch& scratch) {
  window_into(buf, buf);
  run_const(scratch);
  run_by_value(scratch);
  run_ok(scratch);
}

}  // namespace densevlc::phy
