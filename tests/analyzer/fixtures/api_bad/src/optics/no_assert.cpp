// Fixture: physics entry point with typed-quantity inputs and a
// non-trivial body but no precondition checks.
namespace densevlc::optics {

Watts radiated_power(Watts input, double efficiency) {  // EXPECT-FINDING: api-assert-precondition
  const double raw = input.value();
  double scaled = raw * efficiency;
  if (scaled < 0.0) {
    scaled = 0.0;
  }
  const double losses = scaled * 0.01;
  return Watts{scaled - losses};
}

}  // namespace densevlc::optics
