// Fixture: a dead public declaration and an into/value pair whose
// signatures drifted apart.
#pragma once

#include <vector>

namespace densevlc::phy {

std::vector<double> window(const std::vector<double>& signal);

void window_into(const std::vector<double>& signal,  // EXPECT-FINDING: api-pair-drift
                 std::vector<double>& out, std::vector<double>& scratch,
                 int depth);

double unused_helper(double x);  // EXPECT-FINDING: dead-public-api

}  // namespace densevlc::phy
