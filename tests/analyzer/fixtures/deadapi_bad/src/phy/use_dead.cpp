// Consumer TU: keeps the pair itself live so only the drift and the
// genuinely dead helper are reported.
#include <vector>

namespace densevlc::phy {

void drive(std::vector<double>& buf, std::vector<double>& scratch) {
  window_into(buf, buf, scratch, 3);
  buf = window(buf);
}

}  // namespace densevlc::phy
