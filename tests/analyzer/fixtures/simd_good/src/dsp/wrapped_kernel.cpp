// Fixture: kernels reach vectors only through the wrapper's named ops;
// ordinary identifiers starting with 'v' or '_' never match the rule.
#include "common/simd.hpp"

namespace densevlc::dsp {

template <class B>
typename B::u8v load_head(const unsigned char* p) {
  return B::loadu(p);
}

double variance_quotient(double vq_u, double _mean) {
  return vq_u - _mean;  // names near-missing the intrinsic patterns
}

// Unit-literal suffixes spell `_mm` / `_mm2` with no second underscore —
// millimeters, not x86 intrinsics.
constexpr double operator""_mm(long double v) {
  return static_cast<double>(v) * 1e-3;
}
constexpr double operator""_mm2(long double v) {
  return static_cast<double>(v) * 1e-6;
}

double lens_area() { return 2.0_mm * 2.0_mm + 0.5_mm2; }

}  // namespace densevlc::dsp
