// Fixture: the portable wrapper itself may spell raw intrinsics.
#pragma once

namespace densevlc::simd {

struct Avx2Backend {
  using u8v = __m256i;
  static u8v loadu(const unsigned char* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
};

struct NeonBackend {
  using u8v = uint8x16_t;
  static u8v loadu(const unsigned char* p) { return vld1q_u8(p); }
};

}  // namespace densevlc::simd
