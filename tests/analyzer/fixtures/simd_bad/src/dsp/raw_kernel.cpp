// Fixture: raw intrinsics outside the portable wrapper.
namespace densevlc::dsp {

void bad_avx(const unsigned char* in, unsigned char* out) {
  __m256i v = _mm256_loadu_si256(in);  // EXPECT-FINDING: simd-raw-intrinsic
  _mm256_storeu_si256(out, v);         // EXPECT-FINDING: simd-raw-intrinsic
}

void bad_neon(const unsigned char* in, unsigned char* out) {
  uint8x16_t v = vld1q_u8(in);  // EXPECT-FINDING: simd-raw-intrinsic
  vst1q_u8(out, v);             // EXPECT-FINDING: simd-raw-intrinsic
}

}  // namespace densevlc::dsp
