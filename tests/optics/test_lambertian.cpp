// Tests for the Lambertian LOS channel model (paper Eq. 2).
#include "optics/lambertian.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"

namespace densevlc::optics {
namespace {

LambertianEmitter paper_emitter() {
  LambertianEmitter e;
  e.half_power_semi_angle_rad = units::deg_to_rad(15.0);
  return e;
}

TEST(Lambertian, OrderOfFifteenDegreesIsNearTwenty) {
  // m = -ln 2 / ln(cos 15 deg) ~= 19.97 for the paper's lens.
  EXPECT_NEAR(paper_emitter().order(), 19.97, 0.05);
}

TEST(Lambertian, OrderOfSixtyDegreesIsOne) {
  // The classic bare-LED case: 60 deg half-angle -> m = 1.
  LambertianEmitter e;
  e.half_power_semi_angle_rad = units::deg_to_rad(60.0);
  EXPECT_NEAR(e.order(), 1.0, 1e-12);
}

TEST(Lambertian, HalfPowerAtHalfAngle) {
  // By definition the radiant intensity at phi_1/2 is half the on-axis one.
  const auto e = paper_emitter();
  const double on_axis = radiant_intensity_factor(e, 0.0);
  const double at_half =
      radiant_intensity_factor(e, e.half_power_semi_angle_rad);
  EXPECT_NEAR(at_half / on_axis, 0.5, 1e-9);
}

TEST(Lambertian, GainFollowsInverseSquare) {
  const auto e = paper_emitter();
  const Photodiode pd;
  const geom::Pose rx1 = geom::floor_pose(0.0, 0.0, 0.0);
  const geom::Pose tx1 = geom::ceiling_pose(0.0, 0.0, 1.0);
  const geom::Pose tx2 = geom::ceiling_pose(0.0, 0.0, 2.0);
  const double g1 = los_gain(e, pd, tx1, rx1);
  const double g2 = los_gain(e, pd, tx2, rx1);
  EXPECT_NEAR(g1 / g2, 4.0, 1e-9);
}

TEST(Lambertian, OnAxisGainClosedForm) {
  // Directly underneath: H = (m+1) Apd / (2 pi d^2).
  const auto e = paper_emitter();
  const Photodiode pd;
  const double d = 2.0;
  const double expected = (e.order() + 1.0) * pd.collection_area_m2 /
                          (2.0 * kPi * d * d);
  const double g = los_gain(e, pd, geom::ceiling_pose(1.0, 1.0, 2.8),
                            geom::floor_pose(1.0, 1.0, 0.8));
  EXPECT_NEAR(g, expected, expected * 1e-12);
}

TEST(Lambertian, GainDecreasesOffAxis) {
  const auto e = paper_emitter();
  const Photodiode pd;
  const geom::Pose tx = geom::ceiling_pose(1.0, 1.0, 2.8);
  double prev = los_gain(e, pd, tx, geom::floor_pose(1.0, 1.0, 0.8));
  for (double off : {0.2, 0.4, 0.6, 0.8}) {
    const double g = los_gain(e, pd, tx, geom::floor_pose(1.0 + off, 1.0, 0.8));
    EXPECT_LT(g, prev);
    prev = g;
  }
}

TEST(Lambertian, OutsideFieldOfViewIsZero) {
  const auto e = paper_emitter();
  Photodiode pd;
  pd.field_of_view_rad = units::deg_to_rad(20.0);
  // 45 deg incidence: outside a 20 deg FoV.
  const double g = los_gain(e, pd, geom::ceiling_pose(0.0, 0.0, 1.0),
                            geom::floor_pose(1.0, 0.0, 0.0));
  EXPECT_DOUBLE_EQ(g, 0.0);
}

TEST(Lambertian, FacingAwayIsZero) {
  const auto e = paper_emitter();
  const Photodiode pd;
  // Receiver above the emitter: the emitter faces down, so no light.
  const double g = los_gain(e, pd, geom::ceiling_pose(0.0, 0.0, 1.0),
                            geom::floor_pose(0.0, 0.0, 2.0));
  EXPECT_DOUBLE_EQ(g, 0.0);
  // Receiver facing down as well (back side): also dark.
  geom::Pose back = geom::floor_pose(0.0, 0.0, 0.0);
  back.normal = {0.0, 0.0, -1.0};
  EXPECT_DOUBLE_EQ(
      los_gain(e, pd, geom::ceiling_pose(0.0, 0.0, 1.0), back), 0.0);
}

TEST(Lambertian, ZeroDistanceIsZero) {
  const auto e = paper_emitter();
  const Photodiode pd;
  const geom::Pose p = geom::ceiling_pose(1.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(los_gain(e, pd, p, p), 0.0);
}

TEST(Photodiode, BareDiodeGainIsOne) {
  const Photodiode pd;  // n = 1, FoV 90 deg
  EXPECT_NEAR(pd.concentrator_gain(0.0), 1.0, 1e-12);
  EXPECT_NEAR(pd.concentrator_gain(units::deg_to_rad(45.0)), 1.0, 1e-12);
}

TEST(Photodiode, ConcentratorBoostsInsideFovOnly) {
  Photodiode pd;
  pd.concentrator_index = 1.5;
  pd.field_of_view_rad = units::deg_to_rad(60.0);
  const double g_in = pd.concentrator_gain(units::deg_to_rad(30.0));
  EXPECT_NEAR(g_in, 1.5 * 1.5 / std::pow(std::sin(units::deg_to_rad(60.0)), 2),
              1e-12);
  EXPECT_DOUBLE_EQ(pd.concentrator_gain(units::deg_to_rad(70.0)), 0.0);
}

TEST(Geometry, ResolveAnglesOfKnownTriangle) {
  // TX 1 m above, RX offset 1 m horizontally: 45 deg both sides.
  const auto g = resolve_geometry(geom::ceiling_pose(0.0, 0.0, 1.0),
                                  geom::floor_pose(1.0, 0.0, 0.0),
                                  kPi / 2.0);
  EXPECT_NEAR(g.distance_m, std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(g.irradiation_angle_rad, kPi / 4.0, 1e-12);
  EXPECT_NEAR(g.incidence_angle_rad, kPi / 4.0, 1e-12);
  EXPECT_TRUE(g.in_field_of_view);
}

TEST(Illuminance, InverseSquareAndCosine) {
  const auto e = paper_emitter();
  const geom::Pose tx = geom::ceiling_pose(0.0, 0.0, 2.0);
  const Lux e1 = illuminance_lux(e, tx, geom::floor_pose(0.0, 0.0, 0.0),
                                 1.0_W, LumensPerWatt{300.0});
  const Lux e2 = illuminance_lux(e, tx, geom::floor_pose(0.0, 0.0, 1.0),
                                 1.0_W, LumensPerWatt{300.0});
  EXPECT_NEAR(e2 / e1, 4.0, 1e-9);  // half the distance, 4x the lux
  EXPECT_GT(e1, Lux{0.0});
}

// Property sweep: LOS gain is monotonically non-increasing in distance
// along the axis, for a range of half-power angles.
class LambertianAngleSweep : public ::testing::TestWithParam<double> {};

TEST_P(LambertianAngleSweep, AxialGainMonotoneInDistance) {
  LambertianEmitter e;
  e.half_power_semi_angle_rad = units::deg_to_rad(GetParam());
  const Photodiode pd;
  double prev = 1e9;
  for (double d = 0.5; d <= 3.0; d += 0.25) {
    const double g = los_gain(e, pd, geom::ceiling_pose(0.0, 0.0, d),
                              geom::floor_pose(0.0, 0.0, 0.0));
    EXPECT_LT(g, prev);
    EXPECT_GT(g, 0.0);
    prev = g;
  }
}

TEST_P(LambertianAngleSweep, NarrowerBeamsConcentrateOnAxis) {
  LambertianEmitter narrow;
  narrow.half_power_semi_angle_rad = units::deg_to_rad(GetParam());
  LambertianEmitter wider;
  wider.half_power_semi_angle_rad =
      units::deg_to_rad(GetParam() + 10.0);
  EXPECT_GT(radiant_intensity_factor(narrow, 0.0),
            radiant_intensity_factor(wider, 0.0));
}

INSTANTIATE_TEST_SUITE_P(HalfAngles, LambertianAngleSweep,
                         ::testing::Values(10.0, 15.0, 20.0, 30.0, 45.0,
                                           60.0));

}  // namespace
}  // namespace densevlc::optics
