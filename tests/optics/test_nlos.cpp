// Tests for the one-bounce NLOS floor-reflection model.
#include "optics/nlos.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace densevlc::optics {
namespace {

LambertianEmitter paper_emitter() {
  LambertianEmitter e;
  e.half_power_semi_angle_rad = units::deg_to_rad(15.0);
  return e;
}

FloorSurface default_floor() { return FloorSurface{}; }

TEST(Nlos, GainIsPositiveBetweenAdjacentCeilingTxs) {
  const double g = nlos_floor_gain(paper_emitter(), Photodiode{},
                                   geom::ceiling_pose(1.25, 1.25, 2.8),
                                   geom::ceiling_pose(1.75, 1.25, 2.8),
                                   default_floor());
  EXPECT_GT(g, 0.0);
}

TEST(Nlos, MuchWeakerThanLos) {
  // The floor bounce is orders of magnitude below a LOS link at similar
  // range — the reason the paper's RX needs its AC amplification stage.
  const auto e = paper_emitter();
  const Photodiode pd;
  const double nlos = nlos_floor_gain(e, pd,
                                      geom::ceiling_pose(1.25, 1.25, 2.8),
                                      geom::ceiling_pose(1.75, 1.25, 2.8),
                                      default_floor());
  const double los = los_gain(e, pd, geom::ceiling_pose(1.25, 1.25, 2.8),
                              geom::floor_pose(1.25, 1.25, 0.8));
  EXPECT_LT(nlos, los / 10.0);
}

TEST(Nlos, ScalesLinearlyWithReflectance) {
  const auto e = paper_emitter();
  const Photodiode pd;
  FloorSurface dark = default_floor();
  dark.reflectance = 0.2;
  FloorSurface bright = default_floor();
  bright.reflectance = 0.8;
  const auto tx = geom::ceiling_pose(1.25, 1.25, 2.8);
  const auto rx = geom::ceiling_pose(1.75, 1.25, 2.8);
  const double g_dark = nlos_floor_gain(e, pd, tx, rx, dark);
  const double g_bright = nlos_floor_gain(e, pd, tx, rx, bright);
  EXPECT_NEAR(g_bright / g_dark, 4.0, 1e-9);
}

TEST(Nlos, DecreasesWithPeerDistance) {
  const auto e = paper_emitter();
  const Photodiode pd;
  const auto tx = geom::ceiling_pose(1.25, 1.25, 2.8);
  double prev = 1e9;
  for (double dx : {0.5, 1.0, 1.5}) {
    const double g = nlos_floor_gain(
        e, pd, tx, geom::ceiling_pose(1.25 + dx, 1.25, 2.8),
        default_floor());
    EXPECT_LT(g, prev);
    prev = g;
  }
}

TEST(Nlos, ZeroResolutionIsZero) {
  FloorSurface f = default_floor();
  f.patches_per_axis = 0;
  EXPECT_DOUBLE_EQ(
      nlos_floor_gain(paper_emitter(), Photodiode{},
                      geom::ceiling_pose(1.0, 1.0, 2.8),
                      geom::ceiling_pose(1.5, 1.0, 2.8), f),
      0.0);
}

TEST(Nlos, ConvergesWithResolution) {
  const auto e = paper_emitter();
  const Photodiode pd;
  const auto tx = geom::ceiling_pose(1.25, 1.25, 2.8);
  const auto rx = geom::ceiling_pose(1.75, 1.25, 2.8);
  FloorSurface coarse = default_floor();
  coarse.patches_per_axis = 20;
  FloorSurface fine = default_floor();
  fine.patches_per_axis = 80;
  const double g_coarse = nlos_floor_gain(e, pd, tx, rx, coarse);
  const double g_fine = nlos_floor_gain(e, pd, tx, rx, fine);
  EXPECT_NEAR(g_coarse / g_fine, 1.0, 0.05);
}

TEST(Nlos, UpwardFacingReceiverSeesNothingFromFloor) {
  // A PD looking up cannot collect light arriving from below its plane...
  // but a ceiling PD looking *up* sees nothing from the floor bounce.
  geom::Pose rx = geom::ceiling_pose(1.75, 1.25, 2.8);
  rx.normal = {0.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(
      nlos_floor_gain(paper_emitter(), Photodiode{},
                      geom::ceiling_pose(1.25, 1.25, 2.8), rx,
                      default_floor()),
      0.0);
}

TEST(Nlos, RestrictedFovExcludesOffAxisPatches) {
  // Neutralize the concentrator boost (set n = sin(FoV) so g(psi) = 1
  // inside the field of view); then shrinking the FoV can only lose
  // patches and must strictly reduce the collected bounce power.
  const auto e = paper_emitter();
  Photodiode wide;
  wide.concentrator_index = std::sin(wide.field_of_view_rad);
  Photodiode narrow;
  narrow.field_of_view_rad = units::deg_to_rad(30.0);
  narrow.concentrator_index = std::sin(narrow.field_of_view_rad);
  const auto tx = geom::ceiling_pose(1.25, 1.25, 2.8);
  const auto rx = geom::ceiling_pose(1.75, 1.25, 2.8);
  const double g_wide = nlos_floor_gain(e, wide, tx, rx, default_floor());
  const double g_narrow =
      nlos_floor_gain(e, narrow, tx, rx, default_floor());
  EXPECT_LT(g_narrow, g_wide);
  EXPECT_GT(g_narrow, 0.0);  // the spot under the TX is still visible
}

}  // namespace
}  // namespace densevlc::optics
