// Tests for the LED electrical model (paper Eqs. 8-11 and Fig. 4).
#include "optics/led_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace densevlc::optics {
namespace {

LedModel paper_led() {
  return LedModel{LedElectrical{}, LedOperatingPoint{0.45, 0.9}};
}

TEST(LedModel, NoCurrentNoPower) {
  EXPECT_DOUBLE_EQ(paper_led().power_at_current(0.0), 0.0);
  EXPECT_DOUBLE_EQ(paper_led().power_at_current(-0.1), 0.0);
}

TEST(LedModel, PowerIncreasesWithCurrent) {
  const auto led = paper_led();
  double prev = 0.0;
  for (double i = 0.05; i <= 1.0; i += 0.05) {
    const double p = led.power_at_current(i);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(LedModel, ForwardVoltageIsPlausibleForXte) {
  // CREE XT-E runs near 3 V at 450 mA.
  const double v = paper_led().forward_voltage(0.45);
  EXPECT_GT(v, 2.5);
  EXPECT_LT(v, 3.5);
}

TEST(LedModel, PowerEqualsCurrentTimesVoltage) {
  const auto led = paper_led();
  for (double i : {0.1, 0.45, 0.9}) {
    EXPECT_NEAR(led.power_at_current(i), i * led.forward_voltage(i),
                1e-12);
  }
}

TEST(LedModel, DynamicResistanceClosedForm) {
  const auto led = paper_led();
  const double expected =
      2.68 * 0.025852 / (2.0 * 0.45) + 0.19;
  EXPECT_NEAR(led.dynamic_resistance(), expected, 1e-12);
}

TEST(LedModel, CommPowerZeroAtZeroSwing) {
  EXPECT_DOUBLE_EQ(paper_led().comm_power_approx(0.0), 0.0);
  EXPECT_DOUBLE_EQ(paper_led().comm_power_exact(0.0), 0.0);
}

TEST(LedModel, CommPowerQuadraticInSwing) {
  const auto led = paper_led();
  const double p1 = led.comm_power_approx(0.3);
  const double p2 = led.comm_power_approx(0.6);
  EXPECT_NEAR(p2 / p1, 4.0, 1e-12);
}

TEST(LedModel, TaylorErrorSmallAtFullSwing) {
  // Fig. 4: the relative error at Isw = 900 mA stays below ~1.5% and the
  // paper quotes 0.45%. Our Shockley fit lands in the same regime.
  const double err = paper_led().comm_power_relative_error(0.9);
  EXPECT_GT(err, 0.0);
  EXPECT_LT(err, 0.015);
}

TEST(LedModel, TaylorErrorGrowsWithSwing) {
  const auto led = paper_led();
  double prev = 0.0;
  for (double isw : {0.2, 0.4, 0.6, 0.8}) {
    const double err = led.comm_power_relative_error(isw);
    EXPECT_GE(err, prev);
    prev = err;
  }
}

TEST(LedModel, IlluminationPowerMatchesPaperScale) {
  // The paper measures 2.51 W electrical in illumination mode (LED plus
  // driver). The bare-diode Shockley model should land within a factor of
  // ~2 below that (driver losses excluded).
  const double p = paper_led().illumination_power();
  EXPECT_GT(p, 1.0);
  EXPECT_LT(p, 2.51);
}

TEST(LedModel, OpticalPowerScalesWithEfficiency) {
  LedElectrical elec;
  elec.wall_plug_efficiency = 0.4;
  const LedModel led{elec, LedOperatingPoint{0.45, 0.9}};
  EXPECT_NEAR(led.optical_power_illumination(),
              0.4 * led.illumination_power(), 1e-12);
  EXPECT_NEAR(led.optical_signal_power(0.9),
              0.4 * led.comm_power_approx(0.9), 1e-15);
}

TEST(LedModel, MaxFeasibleSwingRespectsBothBounds) {
  // Low bias: the 2*Ib bound binds.
  const LedModel low{LedElectrical{}, LedOperatingPoint{0.3, 0.9}};
  EXPECT_DOUBLE_EQ(low.max_feasible_swing(), 0.6);
  // Paper bias: Isw,max binds exactly (0.9 = 2 * 0.45).
  EXPECT_DOUBLE_EQ(paper_led().max_feasible_swing(), 0.9);
}

TEST(LedModel, ManchesterKeepsAverageOpticalPower) {
  // Average of high and low optical power must exceed bias power only by
  // the communication term; the average *current* is exactly Ib, which is
  // what keeps perceived brightness constant (brightness ~ current).
  const double isw = paper_led().max_feasible_swing();
  const double avg_current = ((0.45 + isw / 2.0) + (0.45 - isw / 2.0)) / 2.0;
  EXPECT_DOUBLE_EQ(avg_current, 0.45);
}

// Property sweep over bias currents: the Taylor expansion must stay within
// 2% of exact for swings up to the feasible maximum.
class BiasSweep : public ::testing::TestWithParam<double> {};

TEST_P(BiasSweep, TaylorApproxTightAcrossBias) {
  const LedModel led{LedElectrical{}, LedOperatingPoint{GetParam(), 0.9}};
  const double max_swing = led.max_feasible_swing();
  for (double f = 0.1; f <= 1.0; f += 0.1) {
    EXPECT_LT(led.comm_power_relative_error(f * max_swing), 0.02)
        << "bias " << GetParam() << " swing " << f * max_swing;
  }
}

INSTANTIATE_TEST_SUITE_P(BiasPoints, BiasSweep,
                         ::testing::Values(0.3, 0.4, 0.45, 0.5, 0.6));

}  // namespace
}  // namespace densevlc::optics
