// Tests for the LED electrical model (paper Eqs. 8-11 and Fig. 4).
#include "optics/led_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace densevlc::optics {
namespace {

LedModel paper_led() {
  return LedModel{LedElectrical{}, LedOperatingPoint{0.45, 0.9}};
}

TEST(LedModel, NoCurrentNoPower) {
  EXPECT_DOUBLE_EQ(paper_led().power_at_current(Amperes{0.0}).value(), 0.0);
  EXPECT_DOUBLE_EQ(paper_led().power_at_current(Amperes{-0.1}).value(), 0.0);
}

TEST(LedModel, PowerIncreasesWithCurrent) {
  const auto led = paper_led();
  Watts prev{0.0};
  for (double i = 0.05; i <= 1.0; i += 0.05) {
    const Watts p = led.power_at_current(Amperes{i});
    EXPECT_GT(p.value(), prev.value());
    prev = p;
  }
}

TEST(LedModel, ForwardVoltageIsPlausibleForXte) {
  // CREE XT-E runs near 3 V at 450 mA.
  const Volts v = paper_led().forward_voltage(450.0_mA);
  EXPECT_GT(v.value(), 2.5);
  EXPECT_LT(v.value(), 3.5);
}

TEST(LedModel, PowerEqualsCurrentTimesVoltage) {
  const auto led = paper_led();
  for (double i : {0.1, 0.45, 0.9}) {
    const Amperes current{i};
    // A * V = W by the quantity algebra.
    EXPECT_NEAR(led.power_at_current(current).value(),
                (current * led.forward_voltage(current)).value(), 1e-12);
  }
}

TEST(LedModel, DynamicResistanceClosedForm) {
  const auto led = paper_led();
  const double expected =
      2.68 * 0.025852 / (2.0 * 0.45) + 0.19;
  EXPECT_NEAR(led.dynamic_resistance().value(), expected, 1e-12);
}

TEST(LedModel, CommPowerZeroAtZeroSwing) {
  EXPECT_DOUBLE_EQ(paper_led().comm_power_approx(Amperes{0.0}).value(), 0.0);
  EXPECT_DOUBLE_EQ(paper_led().comm_power_exact(Amperes{0.0}).value(), 0.0);
}

TEST(LedModel, CommPowerQuadraticInSwing) {
  const auto led = paper_led();
  const Watts p1 = led.comm_power_approx(300.0_mA);
  const Watts p2 = led.comm_power_approx(600.0_mA);
  EXPECT_NEAR(p2 / p1, 4.0, 1e-12);
}

TEST(LedModel, TaylorErrorSmallAtFullSwing) {
  // Fig. 4: the relative error at Isw = 900 mA stays below ~1.5% and the
  // paper quotes 0.45%. Our Shockley fit lands in the same regime.
  const double err = paper_led().comm_power_relative_error(900.0_mA);
  EXPECT_GT(err, 0.0);
  EXPECT_LT(err, 0.015);
}

TEST(LedModel, TaylorErrorGrowsWithSwing) {
  const auto led = paper_led();
  double prev = 0.0;
  for (double isw : {0.2, 0.4, 0.6, 0.8}) {
    const double err = led.comm_power_relative_error(Amperes{isw});
    EXPECT_GE(err, prev);
    prev = err;
  }
}

TEST(LedModel, IlluminationPowerMatchesPaperScale) {
  // The paper measures 2.51 W electrical in illumination mode (LED plus
  // driver). The bare-diode Shockley model should land within a factor of
  // ~2 below that (driver losses excluded).
  const Watts p = paper_led().illumination_power();
  EXPECT_GT(p, 1.0_W);
  EXPECT_LT(p, Watts{2.51});
}

TEST(LedModel, OpticalPowerScalesWithEfficiency) {
  LedElectrical elec;
  elec.wall_plug_efficiency = 0.4;
  const LedModel led{elec, LedOperatingPoint{0.45, 0.9}};
  EXPECT_NEAR(led.optical_power_illumination().value(),
              0.4 * led.illumination_power().value(), 1e-12);
  EXPECT_NEAR(led.optical_signal_power(900.0_mA).value(),
              0.4 * led.comm_power_approx(900.0_mA).value(), 1e-15);
}

TEST(LedModel, MaxFeasibleSwingRespectsBothBounds) {
  // Low bias: the 2*Ib bound binds.
  const LedModel low{LedElectrical{}, LedOperatingPoint{0.3, 0.9}};
  EXPECT_DOUBLE_EQ(low.max_feasible_swing().value(), 0.6);
  // Paper bias: Isw,max binds exactly (0.9 = 2 * 0.45).
  EXPECT_DOUBLE_EQ(paper_led().max_feasible_swing().value(), 0.9);
}

TEST(LedModel, ManchesterKeepsAverageOpticalPower) {
  // Average of high and low optical power must exceed bias power only by
  // the communication term; the average *current* is exactly Ib, which is
  // what keeps perceived brightness constant (brightness ~ current).
  const Amperes isw = paper_led().max_feasible_swing();
  const Amperes bias{0.45};
  const Amperes avg_current =
      ((bias + isw / 2.0) + (bias - isw / 2.0)) / 2.0;
  EXPECT_DOUBLE_EQ(avg_current.value(), 0.45);
}

// Property sweep over bias currents: the Taylor expansion must stay within
// 2% of exact for swings up to the feasible maximum.
class BiasSweep : public ::testing::TestWithParam<double> {};

TEST_P(BiasSweep, TaylorApproxTightAcrossBias) {
  const LedModel led{LedElectrical{}, LedOperatingPoint{GetParam(), 0.9}};
  const Amperes max_swing = led.max_feasible_swing();
  for (double f = 0.1; f <= 1.0; f += 0.1) {
    EXPECT_LT(led.comm_power_relative_error(f * max_swing), 0.02)
        << "bias " << GetParam() << " swing " << (f * max_swing).value();
  }
}

INSTANTIATE_TEST_SUITE_P(BiasPoints, BiasSweep,
                         ::testing::Values(0.3, 0.4, 0.45, 0.5, 0.6));

}  // namespace
}  // namespace densevlc::optics
